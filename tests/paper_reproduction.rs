//! End-to-end reproduction smoke test: every table and figure of the paper
//! regenerates at reduced scale, and the headline *shape* conclusions hold.

use ifttt_core::analysis::tables::HeadlineIot;
use ifttt_core::analysis::tail::top_share;
use ifttt_core::Lab;

fn lab() -> Lab {
    Lab::new(2017).with_scale(0.02)
}

#[test]
fn section3_tables_and_figures_hold() {
    let lab = lab();
    let snap = lab.snapshot();

    // Table 1 + headline: IoT dominance of services, modest usage share.
    let t1 = lab.table1();
    assert!((t1.iot_service_share() - 0.517).abs() < 0.01);
    let h = HeadlineIot::of(&snap);
    assert!((h.service_share - 0.52).abs() < 0.01);
    assert!((h.usage_share - 0.16).abs() < 0.05);

    // Table 2 scale (scaled by 0.02).
    let t2 = lab.table2();
    assert_eq!(t2.measured_channels, 408);
    assert_eq!(t2.measured_snapshots, 25);

    // Table 3: Alexa tops triggers, Hue tops actions.
    let t3 = lab.table3();
    assert_eq!(t3.top_trigger_services[0].name, "amazon_alexa");
    assert_eq!(t3.top_action_services[0].name, "philips_hue");

    // Figure 2: the heat map marginals equal Table 1's columns.
    let fig2 = lab.fig2();
    let rows = fig2.row_shares();
    for (i, r) in t1.rows.iter().enumerate() {
        assert!((rows[i] - r.trigger_ac).abs() < 0.03, "row {i}");
    }

    // Figure 3: the heavy tail. At 2% scale the Table 3 anchor applets are
    // coarse relative to the 1% knee, which inflates the top-1% share a
    // few points (at full scale the calibration is exact — see the
    // heavy_tail_sequence unit test); the shape bound is what matters.
    let adds: Vec<u64> = snap.applets.iter().map(|a| a.add_count).collect();
    let top1 = top_share(&adds, 0.01);
    assert!((0.80..0.92).contains(&top1), "top1 {top1} (paper 0.841)");
    assert!((top_share(&adds, 0.10) - 0.976).abs() < 0.02);

    // Growth headline.
    let g = lab.growth();
    assert!((g.services_growth - 0.11).abs() < 0.03);
    assert!((g.add_count_growth - 0.19).abs() < 0.06);

    // Users.
    let u = lab.users();
    assert!((u.user_made_applets - 0.98).abs() < 0.01);
}

#[test]
fn section4_performance_shape_holds() {
    let lab = Lab::new(99);

    // Figure 4's shape: poll-driven applets are minutes; Alexa is seconds.
    let a2 = lab.fig4_one(ifttt_core::testbed::PaperApplet::A2, 6);
    let a5 = lab.fig4_one(ifttt_core::testbed::PaperApplet::A5, 6);
    assert!(a2.summary().p50 > 30.0, "A2 median {}", a2.summary().p50);
    assert!(a5.summary().p50 < 10.0, "A5 median {}", a5.summary().p50);
    assert!(
        a2.summary().p50 > a5.summary().p50 * 5.0,
        "poll-bound must be much slower than hinted"
    );

    // Figure 5's shape: E1 ≈ E2 slow, E3 fast — the engine is the
    // bottleneck.
    let subs = lab.fig5_substitution(4);
    assert!(subs[0].summary().p50 > 30.0, "E1");
    assert!(subs[1].summary().p50 > 30.0, "E2");
    assert!(subs[2].summary().p50 < 5.0, "E3");

    // Table 5's shape: service learns in <1 s, engine polls much later.
    let t5 = lab.table5();
    let confirm = t5
        .entries
        .iter()
        .find(|(_, d)| d.contains("confirmation"))
        .expect("confirmation entry");
    let poll = t5
        .entries
        .iter()
        .find(|(_, d)| d.contains("polls"))
        .expect("poll entry");
    assert!(confirm.0 < 2.0 && poll.0 > 10.0, "t5: {t5:?}");
}

#[test]
fn figure6_and_7_shapes_hold() {
    let lab = Lab::new(123);
    let seq = lab.fig6_sequential(10);
    assert_eq!(seq.actions.len(), 10);
    assert!(seq.clusters.len() < 10, "actions must cluster");
    let conc = lab.fig7_concurrent(6);
    let s = conc.summary();
    assert!(s.max - s.min > 10.0, "diffs must spread: {s:?}");
}
