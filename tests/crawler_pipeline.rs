//! The §3.1 data-collection pipeline end-to-end: crawl two weekly
//! snapshots of the simulated frontend, archive them as JSON, reload, and
//! run the longitudinal analysis on the result.

use ifttt_core::analysis::GrowthReport;
use ifttt_core::ecosystem::crawler::{Crawler, CrawlerConfig};
use ifttt_core::ecosystem::frontend::IftttFrontend;
use ifttt_core::ecosystem::generator::{Ecosystem, GeneratorConfig};
use ifttt_core::ecosystem::model::week_date_label;
use ifttt_core::ecosystem::Snapshot;
use ifttt_core::simnet::prelude::*;

fn crawl_week(eco: &Ecosystem, week: u32, seed: u64) -> Snapshot {
    let mut sim = Sim::new(seed);
    let frontend = IftttFrontend::new(eco.clone(), week);
    let max_id = frontend.max_applet_id();
    let fe = sim.add_node("ifttt.com", frontend);
    let crawler = sim.add_node(
        "crawler",
        Crawler::new(CrawlerConfig::new(fe, 100_000, max_id + 1)),
    );
    sim.link(crawler, fe, LinkSpec::wan());
    sim.try_run_until_idle(30_000_000).expect("crawl completes");
    assert!(sim.node_ref::<Crawler>(crawler).is_done());
    sim.node_ref::<Crawler>(crawler)
        .snapshot(week, week_date_label(week as usize))
}

#[test]
fn weekly_crawls_support_longitudinal_analysis() {
    let eco = Ecosystem::generate(GeneratorConfig::test_scale(77));
    // Crawl week 0 and week 19 (the paper's growth comparison pair).
    let w0 = crawl_week(&eco, 0, 1);
    let w19 = crawl_week(&eco, 19, 2);

    // Archive + reload round trip (the paper kept ~200 GB of snapshots;
    // we keep JSON).
    let json0 = w0.to_json();
    let json19 = w19.to_json();
    let w0 = Snapshot::from_json(&json0).unwrap();
    let w19 = Snapshot::from_json(&json19).unwrap();

    let g = GrowthReport::of(&[w0.clone(), w19.clone()], 0, 19);
    assert!(
        (g.services_growth - 0.11).abs() < 0.03,
        "services {}",
        g.services_growth
    );
    assert!(
        (g.add_count_growth - 0.19).abs() < 0.06,
        "adds {}",
        g.add_count_growth
    );

    // The crawled snapshots agree with the generator's direct views.
    assert_eq!(w0.applets.len(), eco.snapshot(0).applets.len());
    assert_eq!(w19.applets.len(), eco.snapshot(19).applets.len());
    assert_eq!(w19.total_add_count(), eco.snapshot(19).total_add_count());
}

#[test]
fn crawler_stats_reflect_the_id_space() {
    let eco = Ecosystem::generate(GeneratorConfig::test_scale(78));
    let mut sim = Sim::new(3);
    let frontend = IftttFrontend::new(eco.clone(), 18);
    let max_id = frontend.max_applet_id();
    let fe = sim.add_node("ifttt.com", frontend);
    let crawler = sim.add_node(
        "crawler",
        Crawler::new(CrawlerConfig::new(fe, 100_000, max_id + 1)),
    );
    sim.link(crawler, fe, LinkSpec::wan());
    sim.try_run_until_idle(30_000_000).expect("crawl completes");
    let stats = sim.node_ref::<Crawler>(crawler).stats;
    let expected = eco.snapshot(18).applets.len() as u64;
    assert_eq!(stats.applets_found, expected);
    // The six-digit id space is sparse: many enumerated ids are 404s.
    assert!(stats.not_found > 0);
    assert_eq!(stats.gave_up, 0);
}
