//! Protocol conformance of the engine against a reference partner
//! service: authentication headers, poll semantics, batching, dedup,
//! realtime-hint handling, and error paths.

use ifttt_core::devices::service_core::{Processed, ServiceCore};
use ifttt_core::engine::{
    ActionRef, Applet, AppletId, EngineConfig, PollPolicy, RetryPolicy, TapEngine, TriggerRef,
};
use ifttt_core::simnet::prelude::*;
use ifttt_core::tap_protocol::auth::{ServiceKey, REQUEST_ID_HEADER, SERVICE_KEY_HEADER};
use ifttt_core::tap_protocol::service::ServiceEndpoint;
use ifttt_core::tap_protocol::wire::TriggerEvent;
use ifttt_core::tap_protocol::{FieldMap, ServiceSlug, TriggerSlug, UserId};

/// A reference partner service that records everything the engine sends.
struct RecordingService {
    core: ServiceCore,
    seen_request_ids: Vec<String>,
    action_count: u64,
    /// If set, fail this many polls with 503 before recovering.
    fail_polls: u32,
}

impl RecordingService {
    fn new() -> Self {
        let ep = ServiceEndpoint::new(ServiceSlug::new("ref"), ServiceKey("sk_ref".into()))
            .with_trigger("tick")
            .with_action("tock");
        RecordingService {
            core: ServiceCore::new(ep),
            seen_request_ids: Vec::new(),
            action_count: 0,
            fail_polls: 0,
        }
    }
}

impl Node for RecordingService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        // Every engine request must carry the service key; polls also carry
        // a random request id (observed by the paper).
        assert_eq!(req.header(SERVICE_KEY_HEADER), Some("sk_ref"));
        if let Some(rid) = req.header(REQUEST_ID_HEADER) {
            self.seen_request_ids.push(rid.to_string());
        }
        if self.fail_polls > 0 && req.path.contains("/triggers/") {
            self.fail_polls -= 1;
            return HandlerResult::Reply(Response::unavailable());
        }
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { .. } => {
                self.action_count += 1;
                HandlerResult::Reply(ServiceEndpoint::action_ok(format!(
                    "n{}",
                    self.action_count
                )))
            }
            Processed::Query { fields, .. } => {
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

fn world(polling_secs: f64) -> (Sim, NodeId, NodeId, AppletId) {
    let mut sim = Sim::new(11);
    let svc = sim.add_node("ref_service", RecordingService::new());
    let mut cfg = EngineConfig::fast();
    cfg.polling = PollPolicy::fixed(polling_secs);
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    sim.link(engine, svc, LinkSpec::datacenter());
    let user = UserId::new("u");
    let token = sim.with_node::<RecordingService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    let applet = Applet::new(
        AppletId(1),
        "tick→tock",
        user.clone(),
        TriggerRef {
            service: ServiceSlug::new("ref"),
            trigger: TriggerSlug::new("tick"),
            fields: FieldMap::new(),
        },
        ActionRef {
            service: ServiceSlug::new("ref"),
            action: ifttt_core::tap_protocol::ActionSlug::new("tock"),
            fields: FieldMap::new(),
        },
    );
    let id = sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new("ref"), svc, ServiceKey("sk_ref".into()));
        e.set_token(user, ServiceSlug::new("ref"), token);
        e.install_applet(ctx, applet).expect("install")
    });
    (sim, engine, svc, id)
}

/// Feed `n` events into the service's buffer for the installed applet.
fn feed_events(sim: &mut Sim, svc: NodeId, n: usize, base: u64) {
    sim.with_node::<RecordingService, _>(svc, |s, ctx| {
        for i in 0..n {
            let ev = TriggerEvent::new(format!("ev{}", base + i as u64), base + i as u64);
            s.core.record_event(
                ctx,
                &TriggerSlug::new("tick"),
                &UserId::new("u"),
                ev,
                |_| true,
            );
        }
    });
}

#[test]
fn poll_requests_carry_fresh_request_ids() {
    let (mut sim, _, svc, _) = world(1.0);
    sim.run_until(SimTime::from_secs(20));
    let s = sim.node_ref::<RecordingService>(svc);
    assert!(
        s.seen_request_ids.len() >= 15,
        "polls {}",
        s.seen_request_ids.len()
    );
    let mut dedup = s.seen_request_ids.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(
        dedup.len(),
        s.seen_request_ids.len(),
        "request ids must be unique"
    );
}

#[test]
fn batched_events_dispatch_one_action_each_exactly_once() {
    let (mut sim, engine, svc, _) = world(5.0);
    sim.run_until(SimTime::from_secs(7)); // subscription learned
    feed_events(&mut sim, svc, 7, 100);
    sim.run_until(SimTime::from_secs(60));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert_eq!(stats.events_new, 7);
    assert_eq!(stats.actions_sent, 7);
    assert_eq!(stats.actions_ok, 7);
    // Re-polling the same buffer must not re-dispatch.
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(sim.node_ref::<TapEngine>(engine).stats.actions_sent, 7);
}

#[test]
fn batch_larger_than_limit_is_cut_to_50() {
    let (mut sim, engine, svc, _) = world(10.0);
    sim.run_until(SimTime::from_secs(11));
    // 60 events in one poll window; the poll's limit is 50, and the buffer
    // returns the *newest* 50 — the 10 oldest are never delivered.
    feed_events(&mut sim, svc, 60, 1000);
    sim.run_until(SimTime::from_secs(200));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert_eq!(stats.events_new, 50, "limit caps a single poll's batch");
    assert_eq!(stats.actions_sent, 50);
}

#[test]
fn poll_failures_dont_kill_the_polling_chain() {
    let (mut sim, engine, svc, _) = world(2.0);
    sim.node_mut::<RecordingService>(svc).fail_polls = 5;
    sim.run_until(SimTime::from_secs(30));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert!(stats.polls_failed >= 5);
    // The chain recovered and kept polling.
    assert!(stats.polls_sent > stats.polls_failed + 5);
    // And events still flow afterwards.
    feed_events(&mut sim, svc, 1, 5000);
    sim.run_until(SimTime::from_secs(45));
    assert_eq!(sim.node_ref::<TapEngine>(engine).stats.actions_ok, 1);
}

#[test]
fn hints_from_unlisted_services_are_counted_and_ignored() {
    let (mut sim, engine, svc, _) = world(600.0); // polls effectively never
    sim.run_until(SimTime::from_secs(2));
    // Enable the realtime client on the service; the engine's allowlist
    // does not contain "ref".
    sim.with_node::<RecordingService, _>(svc, |s, _| s.core.enable_realtime(engine));
    sim.run_until(SimTime::from_secs(5));
    feed_events(&mut sim, svc, 1, 1);
    sim.run_until(SimTime::from_secs(120));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert!(stats.hints_received >= 1);
    assert_eq!(stats.hints_ignored, stats.hints_received);
    assert_eq!(
        stats.actions_sent, 0,
        "ignored hint must not trigger a poll"
    );
}

#[test]
fn allowlisted_hints_trigger_prompt_polls() {
    let mut sim = Sim::new(12);
    let svc = sim.add_node("ref_service", RecordingService::new());
    let mut cfg = EngineConfig {
        polling: PollPolicy::fixed(600.0),
        ..EngineConfig::default()
    };
    cfg.realtime_allowlist.insert(ServiceSlug::new("ref"));
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    sim.link(engine, svc, LinkSpec::datacenter());
    let user = UserId::new("u");
    let token = sim.with_node::<RecordingService, _>(svc, |s, ctx| {
        s.core.enable_realtime(engine);
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    let applet = Applet::new(
        AppletId(1),
        "tick→tock",
        user.clone(),
        TriggerRef {
            service: ServiceSlug::new("ref"),
            trigger: TriggerSlug::new("tick"),
            fields: FieldMap::new(),
        },
        ActionRef {
            service: ServiceSlug::new("ref"),
            action: ifttt_core::tap_protocol::ActionSlug::new("tock"),
            fields: FieldMap::new(),
        },
    );
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new("ref"), svc, ServiceKey("sk_ref".into()));
        e.set_token(user, ServiceSlug::new("ref"), token);
        e.install_applet(ctx, applet).expect("install");
    });
    sim.run_until(SimTime::from_secs(10)); // initial poll learns the sub
    let t0 = sim.now();
    feed_events(&mut sim, svc, 1, 1);
    sim.run_until(SimTime::from_secs(30));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert_eq!(stats.hints_honored, 1);
    assert_eq!(
        stats.actions_ok, 1,
        "action executed without waiting for the slow poll"
    );
    // The action happened within seconds of the hint.
    let action = sim
        .trace()
        .events()
        .iter()
        .find(|e| e.kind == "engine.action_ok" && e.at > t0)
        .expect("action traced");
    assert!(action.at.since(t0) < SimDuration::from_secs(10));
}

#[test]
fn action_retries_recover_from_transient_failures() {
    // A service that 503s its action endpoint twice, then recovers; with
    // retries configured, the engine delivers without losing the event.
    struct FlakyActions {
        core: ServiceCore,
        fail_actions: u32,
    }
    impl FlakyActions {
        fn new() -> Self {
            let ep = ServiceEndpoint::new(ServiceSlug::new("ref"), ServiceKey("sk_ref".into()))
                .with_trigger("tick")
                .with_action("tock");
            FlakyActions {
                core: ServiceCore::new(ep),
                fail_actions: 2,
            }
        }
    }
    impl Node for FlakyActions {
        fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
            if req.path.contains("/actions/") && self.fail_actions > 0 {
                self.fail_actions -= 1;
                return HandlerResult::Reply(Response::unavailable());
            }
            match self.core.process(ctx, req) {
                ifttt_core::devices::service_core::Processed::Done(resp) => {
                    HandlerResult::Reply(resp)
                }
                ifttt_core::devices::service_core::Processed::Action { .. } => {
                    HandlerResult::Reply(ServiceEndpoint::action_ok("ok"))
                }
                ifttt_core::devices::service_core::Processed::Query { fields, .. } => {
                    HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
                }
                ifttt_core::devices::service_core::Processed::NoReply => HandlerResult::Deferred,
            }
        }
    }

    let mut sim = Sim::new(21);
    let svc = sim.add_node("flaky", FlakyActions::new());
    let mut cfg = EngineConfig::fast();
    cfg.polling = PollPolicy::fixed(2.0);
    cfg.action_retry = RetryPolicy::retries(3);
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    sim.link(engine, svc, LinkSpec::datacenter());
    let user = UserId::new("u");
    let token = sim.with_node::<FlakyActions, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new("ref"), svc, ServiceKey("sk_ref".into()));
        e.set_token(user.clone(), ServiceSlug::new("ref"), token);
        let applet = Applet::new(
            AppletId(1),
            "tick→tock",
            user,
            TriggerRef {
                service: ServiceSlug::new("ref"),
                trigger: TriggerSlug::new("tick"),
                fields: FieldMap::new(),
            },
            ActionRef {
                service: ServiceSlug::new("ref"),
                action: ifttt_core::tap_protocol::ActionSlug::new("tock"),
                fields: FieldMap::new(),
            },
        );
        e.install_applet(ctx, applet).unwrap();
    });
    sim.run_until(SimTime::from_secs(5));
    sim.with_node::<FlakyActions, _>(svc, |s, ctx| {
        let ev = TriggerEvent::new("e1", 5);
        s.core.record_event(
            ctx,
            &TriggerSlug::new("tick"),
            &UserId::new("u"),
            ev,
            |_| true,
        );
    });
    sim.run_until(SimTime::from_secs(60));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert_eq!(stats.actions_retried, 2, "two failed attempts retried");
    assert_eq!(stats.actions_ok, 1, "the third attempt lands");
    assert_eq!(stats.actions_failed, 0);
    assert_eq!(stats.actions_sent, 3);
}

#[test]
fn without_retries_a_failed_action_is_lost() {
    // Baseline (production-IFTTT-like): no action retries; a 503 means
    // the event's action never happens (the engine's dedup prevents a
    // later poll from redelivering it).
    let (mut sim, engine, svc, _) = world(2.0);
    sim.node_mut::<RecordingService>(svc).fail_polls = 0;
    // Fail the single action by pointing fail at the action path: reuse
    // fail_polls? RecordingService only fails polls; emulate by cutting
    // the link right after the event is picked up is complex — instead
    // verify the accounting path directly with a bogus action slug.
    sim.run_until(SimTime::from_secs(3));
    sim.with_node::<TapEngine, _>(engine, |e, _| {
        assert!(!e.config.action_retry.enabled());
    });
    feed_events(&mut sim, svc, 1, 9000);
    sim.run_until(SimTime::from_secs(20));
    let stats = sim.node_ref::<TapEngine>(engine).stats;
    assert_eq!(stats.actions_ok, 1);
    assert_eq!(stats.actions_retried, 0);
}
