//! Reproducibility: every layer must be bit-for-bit deterministic in the
//! master seed — the property that makes the whole study re-runnable.

use ifttt_core::ecosystem::generator::{Ecosystem, GeneratorConfig};
use ifttt_core::testbed::experiments::{measure_t2a, timeline_experiment, T2aScenario};
use ifttt_core::testbed::PaperApplet;
use ifttt_core::Lab;

#[test]
fn ecosystems_are_deterministic() {
    let a = Ecosystem::generate(GeneratorConfig::test_scale(5));
    let b = Ecosystem::generate(GeneratorConfig::test_scale(5));
    assert_eq!(a.services, b.services);
    assert_eq!(a.applets, b.applets);
}

#[test]
fn t2a_measurements_are_deterministic() {
    let s = T2aScenario::official(PaperApplet::A2, 4, 77);
    let a = measure_t2a(&s);
    let b = measure_t2a(&s);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.latency.snapshot(), b.latency.snapshot());
    // A different seed gives different latencies (the polling phase is
    // random relative to the trigger).
    let c = measure_t2a(&T2aScenario::official(PaperApplet::A2, 4, 78));
    assert_ne!(a.latency, c.latency);
}

#[test]
fn timelines_are_deterministic() {
    assert_eq!(
        timeline_experiment(5).entries,
        timeline_experiment(5).entries
    );
}

#[test]
fn lab_analyses_are_deterministic() {
    let a = Lab::new(31).with_scale(0.02);
    let b = Lab::new(31).with_scale(0.02);
    assert_eq!(a.table1().rows, b.table1().rows);
    assert_eq!(a.fig2().cells, b.fig2().cells);
    assert_eq!(a.growth().weekly, b.growth().weekly);
}
