//! Infinite loops end-to-end across the full testbed (§4 + §6).

use ifttt_core::engine::RuntimeLoopConfig;
use ifttt_core::simnet::time::SimDuration;
use ifttt_core::testbed::experiments::{explicit_loop_experiment, implicit_loop_experiment};

fn detector() -> RuntimeLoopConfig {
    RuntimeLoopConfig {
        max_executions: 5,
        window: SimDuration::from_secs(120),
        auto_disable: true,
    }
}

#[test]
fn unprotected_explicit_loop_wastes_resources() {
    // The paper: "we confirm that despite a simple task, no 'syntax check'
    // is performed by IFTTT" — with no checks, one seed email spins
    // forever.
    let o = explicit_loop_experiment(false, None, SimDuration::from_secs(120), 900);
    assert!(o.actions_executed > 20, "{} actions", o.actions_executed);
    assert!(
        o.emails_delivered > o.actions_executed,
        "emails keep arriving"
    );
}

#[test]
fn runtime_detector_brakes_the_explicit_loop_too() {
    let o = explicit_loop_experiment(false, Some(detector()), SimDuration::from_secs(120), 901);
    assert!(o.flagged && o.disabled);
    assert!(
        o.actions_executed <= 7,
        "{} actions before brake",
        o.actions_executed
    );
}

#[test]
fn implicit_loop_grows_rows_and_emails_together() {
    let o = implicit_loop_experiment(false, None, SimDuration::from_secs(100), 902);
    // Every action (row) generates a notification email which triggers
    // another action: counts track each other.
    assert!(o.actions_executed > 10);
    assert!(o.emails_delivered >= o.actions_executed);
}

#[test]
fn detector_thresholds_do_not_flag_normal_usage() {
    // The same email→row applet but with sheet notifications OFF is a
    // perfectly normal applet: a handful of well-spaced emails must not
    // trip the detector.
    use ifttt_core::testbed::experiments::normal_usage_experiment;
    let o = normal_usage_experiment(Some(detector()), 4, 903);
    assert_eq!(o.actions_executed, 4, "all emails acted on");
    assert!(!o.flagged, "normal usage must not be flagged");
    assert!(!o.disabled);
}
