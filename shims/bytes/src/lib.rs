//! Offline shim for the `bytes` crate.
//!
//! The workspace vendors the handful of `Bytes` behaviours it actually uses
//! (cheap clones of an immutable byte buffer) because the build environment
//! has no network access to crates.io. The shim keeps the real crate's
//! semantics for that subset: `Bytes` is an immutable, reference-counted
//! buffer whose clones share storage.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static byte slice (the shim copies it once).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Return a sub-buffer over the given range (copies the range).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_str_round_trip() {
        let b = Bytes::from("hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn slice_copies_range() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(&b.slice(1..3)[..], &[1, 2]);
    }
}
