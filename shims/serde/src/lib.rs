//! Offline shim for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serde replacement. Instead of upstream's visitor-based data model,
//! this shim routes everything through one in-memory JSON tree ([`Value`]):
//! `Serialize` lowers a type to a `Value`, `Deserialize` lifts it back. The
//! `derive` feature re-exports a hand-rolled proc-macro (see `serde_derive`)
//! that mirrors upstream's externally-tagged representation for the container
//! shapes and `#[serde(...)]` attributes this workspace actually uses.

pub mod de;
pub mod value;

pub use value::{write_json_str, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Lower `self` into a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift `Self` out of a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_u64().ok_or_else(|| de::Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| de::Error::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_i64().ok_or_else(|| de::Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| de::Error::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Wire types keep u128 within u64 range; saturate defensively.
        Value::Number(Number::U(u64::try_from(*self).unwrap_or(u64::MAX)))
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_u64()
            .map(u128::from)
            .ok_or_else(|| de::Error::expected("u128", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool().ok_or_else(|| de::Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| de::Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// `&'static str` fields only appear in constant datasets that are
    /// serialized for reporting; deserializing one leaks the string, which
    /// is acceptable for those rare, small cases.
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::expected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| de::Error::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let arr = v.as_array().ok_or_else(|| de::Error::expected("tuple", v))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(de::Error::expected("tuple of matching arity", v));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// Map keys serialize through `Display` and deserialize through `FromStr`,
// which covers `String`, `&String`/`&str`, and integer keys alike (JSON
// object keys are always strings).
impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| de::Error::expected("object", v))?;
        obj.iter()
            .map(|(k, x)| {
                let key = k
                    .parse()
                    .map_err(|_| de::Error::custom(format!("bad key `{k}`")))?;
                Ok((key, V::from_value(x)?))
            })
            .collect()
    }
}

impl<K: std::fmt::Display, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // BTreeMap intermediate gives deterministic key order.
        let sorted: BTreeMap<String, Value> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        Value::Object(sorted)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: std::str::FromStr + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| de::Error::expected("object", v))?;
        obj.iter()
            .map(|(k, x)| {
                let key = k
                    .parse()
                    .map_err(|_| de::Error::custom(format!("bad key `{k}`")))?;
                Ok((key, V::from_value(x)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
