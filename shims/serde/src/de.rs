//! Deserialization support types (`serde::de` in the real crate).

use crate::{Deserialize, Value};
use std::fmt;

/// Marker for types deserializable without borrowing from the input.
///
/// The shim's [`Deserialize`] never borrows, so every deserializable type
/// qualifies.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// A deserialization (or serialization) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A type-mismatch error naming what was expected and what was found.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Error {
            msg: format!("invalid type: expected {what}, found {kind}"),
        }
    }

    /// A required struct field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}`"),
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` for enum `{ty}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
