//! The in-memory JSON tree shared by the serde/serde_json shims.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(n) => n,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            // Cross-variant comparison is numeric, so a round-trip that
            // changes 2.0 into the integer 2 still compares equal.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Append compact JSON directly to `out`.
    ///
    /// This is the serialization hot path: going through the `fmt`
    /// machinery costs one formatter dispatch per character in escaped
    /// strings, while this writer pushes whole clean spans.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                let _ = write!(out, "{n}");
            }
            Value::String(s) => push_escaped(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quoted and escaped),
/// producing exactly the bytes `Value::String(s).write_json(out)` would
/// without materializing a `Value`. Lets callers assemble small fixed-shape
/// objects directly into a `String` instead of building a map first.
pub fn write_json_str(out: &mut String, s: &str) {
    push_escaped(out, s);
}

/// Append a JSON-escaped string, copying escape-free spans in bulk.
/// Only `"`, `\` and control bytes need escaping, and all are ASCII, so
/// a byte scan never splits a multi-byte UTF-8 sequence.
fn push_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                0x08 => out.push_str("\\b"),
                0x0c => out.push_str("\\f"),
                _ => {
                    let _ = write!(out, "\\u{:04x}", b);
                }
            }
            start = i + 1;
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(n) if n.is_finite() => write!(f, "{n}"),
            // JSON has no NaN/Infinity; serde_json emits null.
            Number::F(_) => write!(f, "null"),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON, matching `serde_json::to_string` formatting.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::U(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::Number(Number::U(n as u64))
        } else {
            Value::Number(Number::I(n))
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(Number::F(n))
    }
}
