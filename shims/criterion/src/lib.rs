//! Offline shim for `criterion`.
//!
//! Provides the `Criterion` / `criterion_group!` / `criterion_main!` surface
//! the workspace's benches use, backed by a plain wall-clock loop instead of
//! the real statistical engine. Every bench prints one stable line
//!
//! ```text
//! bench: <name> ... <mean> ns/iter (<samples> samples)
//! ```
//!
//! so downstream tooling can scrape timings, and a JSON summary of all
//! benches in the process is appended to `target/shim-criterion/<bin>.json`.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Entry point handed to bench functions.
pub struct Criterion {
    default_sample_size: usize,
    results: Vec<(String, f64, usize)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Run one benchmark under the criterion-compatible API.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_named(name.to_string(), sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }

    fn run_named<F>(&mut self, name: String, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        let mean_ns = bencher.mean_ns();
        println!(
            "bench: {name} ... {mean_ns:.0} ns/iter ({} samples)",
            bencher.samples.len()
        );
        self.results.push((name, mean_ns, bencher.samples.len()));
    }

    /// Write the collected results as JSON (called by `criterion_main!`).
    pub fn finalize(&self) {
        let bin = std::env::args()
            .next()
            .and_then(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_string());
        let dir = std::path::Path::new("target").join("shim-criterion");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut out = String::from("{\n");
        for (i, (name, mean_ns, samples)) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "  \"{}\": {{\"mean_ns\": {mean_ns:.1}, \"samples\": {samples}}}{comma}\n",
                name.replace('"', "'")
            ));
        }
        out.push_str("}\n");
        let _ = std::fs::write(dir.join(format!("{bin}.json")), out);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_named(full, sample_size, &mut f);
        self
    }

    /// End the group (matches the real API; nothing to flush in the shim).
    pub fn finish(self) {}
}

/// Times a user-provided routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then the timed samples.
        black_box(routine());
        let samples = self.sample_size.clamp(1, 1000);
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: Duration = self.samples.iter().sum();
        total.as_nanos() as f64 / self.samples.len() as f64
    }
}

/// Declare a group of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; the shim runs
            // everything unconditionally and only honours `--list`.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}
