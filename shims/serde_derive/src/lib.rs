//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree traits in the sibling `serde` shim, using only the compiler's
//! built-in `proc_macro` API (the real crate's `syn`/`quote` stack is not
//! available offline). The generated representation matches upstream serde's
//! externally-tagged defaults for the shapes this workspace uses:
//!
//! * named structs -> JSON objects (honouring `#[serde(default)]` and
//!   `#[serde(default = "path")]`, with missing `Option` fields -> `None`)
//! * newtype / `#[serde(transparent)]` structs -> the inner value
//! * multi-field tuple structs -> JSON arrays
//! * enums -> `"Variant"` for unit variants, `{"Variant": ...}` otherwise,
//!   honouring `#[serde(rename_all = "snake_case")]`
//!
//! Unsupported shapes (generics, other attributes) panic at expansion time
//! with a clear message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    ty: String,
    default: Option<String>, // "" = Default::default(), otherwise a fn path
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Container-level `#[serde(...)]` switches.
#[derive(Default)]
struct ContainerAttrs {
    snake_case: bool,
}

/// What the derive input turned out to be.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
        attrs: ContainerAttrs,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Serde attribute contents gathered while skipping a run of attributes.
#[derive(Default)]
struct AttrInfo {
    default: Option<String>,
    transparent: bool,
    snake_case: bool,
}

/// Consume attributes (`#[...]`) starting at `i`; return parsed serde info.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (AttrInfo, usize) {
    let mut info = AttrInfo::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        parse_attr_group(&g.stream(), &mut info);
                        i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (info, i)
}

/// Inspect one `#[...]` body; record serde switches, ignore everything else.
fn parse_attr_group(stream: &TokenStream, info: &mut AttrInfo) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                let eq_lit = match (inner.get(j + 1), inner.get(j + 2)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                        if p.as_char() == '=' =>
                    {
                        Some(unquote(&l.to_string()))
                    }
                    _ => None,
                };
                match (word.as_str(), &eq_lit) {
                    ("default", None) => info.default = Some(String::new()),
                    ("default", Some(path)) => info.default = Some(path.clone()),
                    ("transparent", _) => info.transparent = true,
                    ("rename_all", Some(style)) => {
                        if style == "snake_case" {
                            info.snake_case = true;
                        } else {
                            panic!("serde shim: unsupported rename_all style `{style}`");
                        }
                    }
                    other => panic!("serde shim: unsupported serde attribute `{:?}`", other.0),
                }
                j += if eq_lit.is_some() { 3 } else { 1 };
            }
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            t => panic!("serde shim: unexpected token in serde attribute: {t}"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skip visibility (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (container, mut i) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde shim: expected struct/enum keyword, got {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde shim: expected type name, got {t:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic type `{name}` is not supported by the offline derive");
        }
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream());
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(&g.stream());
                Item::TupleStruct { name, arity }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            t => panic!("serde shim: unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(&g.stream());
                let attrs = ContainerAttrs {
                    snake_case: container.snake_case,
                };
                Item::Enum {
                    name,
                    variants,
                    attrs,
                }
            }
            t => panic!("serde shim: expected enum body for `{name}`, got {t:?}"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    }
}

/// Parse `name: Type, ...` (attribute- and visibility-prefixed) field lists.
fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, after_attrs) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, after_attrs);
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            t => panic!("serde shim: expected field name, got {t:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            t => panic!("serde shim: expected `:` after field `{fname}`, got {t:?}"),
        }
        // Consume the type: everything up to a comma at angle-depth 0.
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    ty.push('<');
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    ty.push('>');
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                t => {
                    ty.push_str(&t.to_string());
                    ty.push(' ');
                }
            }
            i += 1;
        }
        fields.push(Field {
            name: fname,
            ty: ty.trim().to_string(),
            default: attrs.default,
        });
    }
    fields
}

/// Count comma-separated fields of a tuple struct/variant at angle-depth 0.
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_trailing_comma = true;
            }
            _ => saw_trailing_comma = false,
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_attrs, after) = skip_attrs(&tokens, i);
        i = after;
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            t => panic!("serde shim: expected variant name, got {t:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name: vname, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn rename(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.snake_case {
        let mut out = String::new();
        for (i, c) in variant.chars().enumerate() {
            if c.is_ascii_uppercase() {
                if i > 0 {
                    out.push('_');
                }
                out.push(c.to_ascii_lowercase());
            } else {
                out.push(c);
            }
        }
        out
    } else {
        variant.to_string()
    }
}

fn is_option(ty: &str) -> bool {
    let t = ty.trim_start_matches(":: ").trim();
    t.starts_with("Option <")
        || t.starts_with("Option<")
        || t.starts_with("std :: option :: Option")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut __m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "__m.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            body.push_str("::serde::Value::Object(__m)");
            wrap_ser(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            };
            wrap_ser(name, &body)
        }
        Item::UnitStruct { name } => wrap_ser(name, "::serde::Value::Null"),
        Item::Enum {
            name,
            variants,
            attrs,
        } => {
            let mut arms = String::new();
            for v in variants {
                let tag = rename(attrs, &v.name);
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{tag}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(\"{tag}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __inner = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(\"{n}\".to_string(), ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(\"{tag}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            wrap_ser(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn wrap_ser(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Expression producing field `f` out of object map `__obj` (a
/// `&BTreeMap<String, Value>`), honouring defaults and Option fields.
fn field_extract(f: &Field) -> String {
    let missing = match &f.default {
        Some(path) if path.is_empty() => "::std::default::Default::default()".to_string(),
        Some(path) => format!("{path}()"),
        None if is_option(&f.ty) => "::std::option::Option::None".to_string(),
        None => {
            return format!(
                "match __obj.get(\"{n}\") {{\n\
                 Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                 None => return Err(::serde::de::Error::missing_field(\"{n}\")),\n}}",
                n = f.name
            )
        }
    };
    format!(
        "match __obj.get(\"{n}\") {{\n\
         Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
         None => {missing},\n}}",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{}: {},\n", f.name, field_extract(f)));
            }
            let body = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::de::Error::expected(\"struct {name}\", __v))?;\n\
                 Ok({name} {{\n{inits}}})"
            );
            wrap_de(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| ::serde::de::Error::expected(\"tuple struct {name}\", __v))?;\n\
                     if __arr.len() != {arity} {{\n\
                     return Err(::serde::de::Error::expected(\"{arity} elements\", __v));\n}}\n\
                     Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            };
            wrap_de(name, &body)
        }
        Item::UnitStruct { name } => wrap_de(name, &format!("Ok({name})")),
        Item::Enum {
            name,
            variants,
            attrs,
        } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let tag = rename(attrs, &v.name);
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{tag}\" => Ok({name}::{v}),\n", v = v.name));
                        // Accept the `{"Variant": null}` object form as well.
                        tagged_arms
                            .push_str(&format!("\"{tag}\" => Ok({name}::{v}),\n", v = v.name));
                    }
                    VariantShape::Tuple(arity) => {
                        let build = if *arity == 1 {
                            format!(
                                "Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?))",
                                v = v.name
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            format!(
                                "{{\nlet __arr = __inner.as_array().ok_or_else(|| ::serde::de::Error::expected(\"array for variant {v}\", __inner))?;\n\
                                 if __arr.len() != {arity} {{\n\
                                 return Err(::serde::de::Error::expected(\"{arity} elements\", __inner));\n}}\n\
                                 Ok({name}::{v}({elems}))\n}}",
                                v = v.name,
                                elems = elems.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{tag}\" => {build},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{}: {},\n", f.name, field_extract(f)));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| ::serde::de::Error::expected(\"object for variant {v}\", __inner))?;\n\
                             Ok({name}::{v} {{\n{inits}}})\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::de::Error::unknown_variant(__other, \"{name}\")),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(::serde::de::Error::unknown_variant(__other, \"{name}\")),\n}}\n}}\n\
                 _ => Err(::serde::de::Error::expected(\"enum {name}\", __v)),\n}}"
            );
            wrap_de(name, &body)
        }
    }
}

fn wrap_de(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
