//! Offline shim for `serde_json`.
//!
//! Parses and prints JSON text over the value tree defined in the `serde`
//! shim. Covers the workspace's usage: `to_vec` / `to_string` / `from_slice`
//! / `from_str`, [`Value`] inspection, and a `json!` macro for object and
//! array literals whose values are plain expressions or nested `json!` forms.

// The `json!` TT-muncher necessarily builds arrays by pushing into a fresh
// Vec; the lint would fire at every expansion site.
#![allow(clippy::vec_init_then_push)]

pub use serde::de::Error;
pub use serde::{write_json_str, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from a JSON-ish literal.
///
/// Supports `null`, array literals, object literals with string keys, nested
/// `{...}` / `[...]` forms, and arbitrary serializable expressions in value
/// position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __a: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_munch!(__a; $($elems)*);
        $crate::Value::Array(__a)
    }};
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = ::std::collections::BTreeMap::new();
        $crate::json_object_munch!(__m; $($body)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::value_of(&$other) };
}

/// Internal TT-muncher: object body of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_munch {
    ($m:ident;) => {};
    ($m:ident; , $($rest:tt)*) => { $crate::json_object_munch!($m; $($rest)*); };
    ($m:ident; $key:literal : null $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_munch!($m; $($rest)*);
    };
    ($m:ident; $key:literal : { $($inner:tt)* } $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_munch!($m; $($rest)*);
    };
    ($m:ident; $key:literal : [ $($inner:tt)* ] $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_munch!($m; $($rest)*);
    };
    ($m:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::value_of(&$val));
        $crate::json_object_munch!($m; $($rest)*);
    };
    ($m:ident; $key:literal : $val:expr) => {
        $m.insert($key.to_string(), $crate::value_of(&$val));
    };
}

/// Internal TT-muncher: array body of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_munch {
    ($a:ident;) => {};
    ($a:ident; , $($rest:tt)*) => { $crate::json_array_munch!($a; $($rest)*); };
    ($a:ident; null $($rest:tt)*) => {
        $a.push($crate::Value::Null);
        $crate::json_array_munch!($a; $($rest)*);
    };
    ($a:ident; { $($inner:tt)* } $($rest:tt)*) => {
        $a.push($crate::json!({ $($inner)* }));
        $crate::json_array_munch!($a; $($rest)*);
    };
    ($a:ident; [ $($inner:tt)* ] $($rest:tt)*) => {
        $a.push($crate::json!([ $($inner)* ]));
        $crate::json_array_munch!($a; $($rest)*);
    };
    ($a:ident; $val:expr , $($rest:tt)*) => {
        $a.push($crate::value_of(&$val));
        $crate::json_array_munch!($a; $($rest)*);
    };
    ($a:ident; $val:expr) => {
        $a.push($crate::value_of(&$val));
    };
}

/// Helper for `json!`: lower any serializable expression to a [`Value`].
#[doc(hidden)]
pub fn value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: most strings contain no escapes, so scan for the
        // closing quote and bulk-copy the span instead of pushing one
        // char at a time. Fall into the escape-aware loop only when a
        // backslash shows up.
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let span = &self.bytes[start..self.pos];
                    self.pos += 1;
                    // The input came from a `&str`, so the span is valid UTF-8.
                    return Ok(unsafe { std::str::from_utf8_unchecked(span) }.to_owned());
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        let mut out =
            unsafe { std::str::from_utf8_unchecked(&self.bytes[start..self.pos]) }.to_owned();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the clean span up to the next quote or escape
                    // (input is already valid UTF-8, so byte scanning is safe).
                    let span_start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let span = &self.bytes[span_start..self.pos];
                    out.push_str(unsafe { std::str::from_utf8_unchecked(span) });
                }
            }
        }
    }

    /// Parse the `XXXX` after `\u` (pos is at the `u`), handling surrogate
    /// pairs. Leaves pos just past the escape.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.eat_keyword("\\u") {
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| Error::custom("bad surrogate pair"));
                }
            }
            return Err(Error::custom("lone surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| Error::custom("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("eof in \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(v.to_string(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v.to_string(), r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1F600}ctrl\u{01}";
        let json = Value::String(original.to_string()).to_string();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(s, "A\u{1F600}");
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 5u64;
        let items = vec!["a".to_string(), "b".to_string()];
        let v = json!({ "n": n, "items": items, "nested": { "ok": true }, "list": [1, 2] });
        assert_eq!(
            v.to_string(),
            r#"{"items":["a","b"],"list":[1,2],"n":5,"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn typed_round_trip_via_bytes() {
        let map: std::collections::BTreeMap<String, String> =
            [("k".to_string(), "v\"tricky\"".to_string())]
                .into_iter()
                .collect();
        let bytes = to_vec(&map).unwrap();
        let back: std::collections::BTreeMap<String, String> = from_slice(&bytes).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
