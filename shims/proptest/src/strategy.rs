//! Value-generation strategies for the proptest shim.

use rand::{Rng, StdRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying a predicate (re-draws up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive draws",
            self.whence
        );
    }
}

/// Always the same value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy used by `prop_oneof!`.
pub struct Mapped<T> {
    gen_fn: Box<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Mapped<T> {
    pub fn boxed<S: Strategy<Value = T> + 'static>(s: S) -> Self {
        Mapped {
            gen_fn: Box::new(move |rng| s.generate(rng)),
        }
    }
}

impl<T> Strategy for Mapped<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Uniform choice among several strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Mapped<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<Mapped<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0: 0, S1: 1)
    (S0: 0, S1: 1, S2: 2)
    (S0: 0, S1: 1, S2: 2, S3: 3)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32);

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    return c;
                }
            }
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

/// One piece of a string pattern: a set of characters plus a repeat range.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// `&str` patterns act as regex-like string strategies, covering the subset
/// proptest-style tests actually write: literal characters, `[a-z0-9_]`
/// classes (ranges and singletons, including the space-to-tilde `[ -~]`
/// form), and `{n}` / `{m,n}` repetitions.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for p in &parts {
            let count = if p.min == p.max {
                p.min
            } else {
                rng.gen_range(p.min..=p.max)
            };
            for _ in 0..count {
                let idx = rng.gen_range(0..p.chars.len());
                out.push(p.chars[idx]);
            }
        }
        out
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts: Vec<PatternPart> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                let set = expand_class(&chars[i + 1..close], pattern);
                parts.push(PatternPart {
                    chars: set,
                    min: 1,
                    max: 1,
                });
                i = close + 1;
            }
            '{' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("pattern repeat lower bound"),
                        hi.trim().parse().expect("pattern repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("pattern repeat count");
                        (n, n)
                    }
                };
                let last = parts.last_mut().unwrap_or_else(|| {
                    panic!("`{{...}}` with nothing to repeat in pattern `{pattern}`")
                });
                last.min = min;
                last.max = max;
                i = close + 1;
            }
            '\\' => {
                let c = chars.get(i + 1).copied().unwrap_or('\\');
                parts.push(PatternPart {
                    chars: vec![c],
                    min: 1,
                    max: 1,
                });
                i += 2;
            }
            c => {
                parts.push(PatternPart {
                    chars: vec![c],
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
        }
    }
    parts
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(
                lo <= hi,
                "inverted range `{lo}-{hi}` in pattern `{pattern}`"
            );
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(
        !set.is_empty(),
        "empty character class in pattern `{pattern}`"
    );
    set
}
