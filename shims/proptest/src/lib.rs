//! Offline shim for `proptest`.
//!
//! Runs each property as a deterministic loop of randomly generated cases
//! (256 by default, override with `PROPTEST_CASES`). There is no shrinking:
//! a failing case panics with the generated inputs in the message, and the
//! run is reproducible because case seeds are fixed.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy};

use rand::{SeedableRng, StdRng};

/// Number of cases each property runs.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The RNG used for one generated case. Seeds are fixed per case index, so
/// failures reproduce without any persistence file.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5EED_CAFE_0000_0000 ^ u64::from(case))
}

/// Deterministically sample one value from a strategy (test-support helper).
pub fn sample_one<S: Strategy>(strategy: &S, seed: u64) -> S::Value {
    strategy.generate(&mut StdRng::seed_from_u64(seed))
}

/// Declare property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest_with_cases! { ($config); $($rest)* }
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            for __case in 0..__cases {
                let mut __rng = $crate::case_rng(__case);
                $(
                    let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);
                )*
                $body
            }
        }
    )*};
}

/// Internal: `proptest!` body with an explicit [`ProptestConfig`].
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_with_cases {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = ($config).cases;
            for __case in 0..__cases {
                let mut __rng = $crate::case_rng(__case);
                $(
                    let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);
                )*
                $body
            }
        }
    )*};
}

/// Assert inside a property (panics with the condition text on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Pick one of several weighted strategies (weights are ignored by the shim;
/// branches are chosen uniformly).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Mapped::boxed($strategy) ),+
        ])
    };
}

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, proptest_with_cases,
    };
    pub use rand::{Rng, RngCore, SeedableRng};
}

/// Strategy implementations.
pub mod arbitrary {
    pub use crate::strategy::Arbitrary;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 0.0f64..1.0, c in 1u8..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-c]{2,4}", t in "ref") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert_eq!(&t, "ref");
        }

        #[test]
        fn btree_map_sizes(m in crate::collection::btree_map("[a-z]{1,3}", 0u32..9, 0..5)) {
            prop_assert!(m.len() < 5);
        }
    }

    #[test]
    fn any_is_deterministic_per_case() {
        let s = any::<u64>();
        let a = crate::sample_one(&s, 1);
        let b = crate::sample_one(&s, 1);
        assert_eq!(a, b);
    }
}
