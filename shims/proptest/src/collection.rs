//! Collection strategies for the proptest shim.

use crate::strategy::Strategy;
use rand::{Rng, StdRng};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// Size specification for generated collections (the shim supports the
/// `usize` range form the workspace uses).
pub type SizeRange = Range<usize>;

/// Strategy for `Vec<T>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: SizeRange) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = sample_size(rng, &self.size);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; key collisions shrink the map exactly as
/// they do in upstream proptest.
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: SizeRange,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { keys, values, size }
}

pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let n = sample_size(rng, &self.size);
        (0..n)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

/// Strategy for `HashMap<K, V>`.
pub fn hash_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: SizeRange,
) -> HashMapStrategy<K, V> {
    HashMapStrategy { keys, values, size }
}

pub struct HashMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
where
    K::Value: Eq + Hash,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut StdRng) -> HashMap<K::Value, V::Value> {
        let n = sample_size(rng, &self.size);
        (0..n)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

/// Strategy for `BTreeSet<T>`.
pub fn btree_set<S: Strategy>(element: S, size: SizeRange) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let n = sample_size(rng, &self.size);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`.
pub fn hash_set<S: Strategy>(element: S, size: SizeRange) -> HashSetStrategy<S> {
    HashSetStrategy { element, size }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let n = sample_size(rng, &self.size);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

fn sample_size(rng: &mut StdRng, size: &SizeRange) -> usize {
    if size.is_empty() {
        size.start
    } else {
        rng.gen_range(size.clone())
    }
}
