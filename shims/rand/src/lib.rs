//! Offline shim for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng`, and `seq::SliceRandom` — backed by a
//! xoshiro256++ generator seeded through SplitMix64. The stream differs
//! from upstream `StdRng` (ChaCha12), which is fine here: the simulator
//! only relies on determinism and statistical quality, never on exact
//! upstream draw values.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    pub use crate::SliceRandom;

    /// Index-sampling helpers (subset of `rand::seq::index`).
    pub mod index {
        use crate::{Rng, RngCore};

        /// Sample `amount` distinct indices from `0..length`, like
        /// `rand::seq::index::sample`. Uses Floyd's algorithm, then shuffles
        /// so the order is random as upstream guarantees.
        pub fn sample<R: Rng + RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} indices"
            );
            let mut chosen = std::collections::HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                if chosen.insert(t) {
                    out.push(t);
                } else {
                    chosen.insert(j);
                    out.push(j);
                }
            }
            use crate::SliceRandom;
            out.shuffle(rng);
            IndexVec(out)
        }

        /// The result of [`sample`]: a sequence of distinct indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }
    }
}

/// A seedable random number generator (the subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed the generator from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce uniformly (rand's `Standard` impls).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Number types `gen_range` understands (rand's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty f64 range");
        let u = f64::from_rng(rng);
        let v = lo + u * (hi - lo);
        // Floating rounding can land exactly on `hi`; fold back inside.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Uniform draw in `[0, bound)` via Lemire's multiply-then-reject method.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Range argument for `gen_range` (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice helpers (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded_u64(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleUniform, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
            let e: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&e));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(9);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*v.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
