//! A smart-home scenario exercising the §6 "distributed applet execution"
//! idea: the same automation run through the cloud engine vs. a local
//! engine on the home LAN.
//!
//! ```sh
//! cargo run --example smart_home
//! ```

use ifttt_core::devices::events::DeviceCommand;
use ifttt_core::devices::hue::HueLamp;
use ifttt_core::devices::wemo::WemoSwitch;
use ifttt_core::engine::{EngineConfig, TapEngine};
use ifttt_core::simnet::prelude::*;
use ifttt_core::testbed::applets::{paper_applet, PaperApplet, ServiceVariant};
use ifttt_core::testbed::{LocalEngine, LocalRule, TestController, Testbed, TestbedConfig};

/// Measure A2's trigger-to-action latency once in the given testbed.
fn one_t2a(tb: &mut Testbed) -> SimDuration {
    tb.sim.node_mut::<WemoSwitch>(tb.nodes.wemo_switch).on = false;
    tb.sim.node_mut::<HueLamp>(tb.nodes.lamp).state.on = false;
    let t0 = tb.sim.now();
    tb.sim
        .with_node::<TestController, _>(tb.nodes.controller, |c, ctx| c.press_switch(ctx));
    loop {
        tb.sim.run_for(SimDuration::from_secs(1));
        if let Some(o) = tb
            .sim
            .node_ref::<TestController>(tb.nodes.controller)
            .observed_after("light_on", t0)
        {
            return o.at.since(t0);
        }
        if tb.sim.now().since(t0) > SimDuration::from_mins(20) {
            return SimDuration::from_mins(20);
        }
    }
}

fn main() {
    println!("scenario: switch press → light on (applet A2)\n");

    // --- Through the cloud engine (production IFTTT behaviour) ----------
    let mut cloud = Testbed::build(TestbedConfig {
        seed: 5,
        engine: EngineConfig::ifttt_like(),
    });
    cloud
        .sim
        .with_node::<TapEngine, _>(cloud.nodes.engine, |e, ctx| {
            e.install_applet(ctx, paper_applet(PaperApplet::A2, ServiceVariant::Official))
        })
        .expect("install");
    cloud.sim.run_for(SimDuration::from_secs(10));
    print!("cloud engine (polling):  ");
    for _ in 0..3 {
        let t2a = one_t2a(&mut cloud);
        print!("{t2a}  ");
        cloud.sim.run_for(SimDuration::from_secs(15));
    }
    println!();

    // --- Through a local engine in the LAN (§6 extension) ---------------
    let mut local = Testbed::build(TestbedConfig {
        seed: 6,
        engine: EngineConfig::ifttt_like(),
    });
    let le = local
        .sim
        .add_node("local_engine", LocalEngine::new(local.nodes.proxy));
    local.sim.link(le, local.nodes.proxy, LinkSpec::lan());
    local.sim.link(le, local.nodes.wemo_switch, LinkSpec::lan());
    local
        .sim
        .node_mut::<WemoSwitch>(local.nodes.wemo_switch)
        .observe(le);
    local.sim.node_mut::<LocalEngine>(le).add_rule(LocalRule {
        device: "wemo_switch_1".into(),
        kind: "switched_on".into(),
        command: DeviceCommand::new("hue_lamp_1", "turn_on"),
    });
    local.sim.run_for(SimDuration::from_secs(10));
    print!("local engine (LAN push): ");
    for _ in 0..3 {
        let t2a = one_t2a(&mut local);
        print!("{t2a}  ");
        local.sim.run_for(SimDuration::from_secs(15));
    }
    println!();

    println!(
        "\n§6: \"many applets can be executed fully locally … the scalability of the \
         system can be dramatically improved\" — here the LAN path is ~1000× faster."
    );
}
