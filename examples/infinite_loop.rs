//! Demonstrate the §4 infinite loops and the §6 countermeasures.
//!
//! * **Explicit**: "when an email arrives, email me a copy" — the action
//!   feeds its own trigger. IFTTT performs no syntax check; our static
//!   detector (given the feed rule) rejects the install.
//! * **Implicit**: "add a row to my spreadsheet when an email is received"
//!   plus the spreadsheet *notification feature* — the coupling lives
//!   outside IFTTT, so only runtime detection catches it.
//!
//! ```sh
//! cargo run --example infinite_loop
//! ```

use ifttt_core::engine::RuntimeLoopConfig;
use ifttt_core::simnet::time::SimDuration;
use ifttt_core::testbed::experiments::{explicit_loop_experiment, implicit_loop_experiment};

fn main() {
    let window = SimDuration::from_secs(120);

    println!("=== explicit loop: email → send email ===\n");
    let unchecked = explicit_loop_experiment(false, None, window, 1);
    println!(
        "no checks (production IFTTT): {} actions executed, {} emails generated \
         from ONE seed email in {window}",
        unchecked.actions_executed, unchecked.emails_delivered
    );
    let checked = explicit_loop_experiment(true, None, window, 2);
    println!(
        "static loop check: install rejected = {} (0 actions executed)\n",
        checked.rejected_statically
    );

    println!("=== implicit loop: email → sheet row, with sheet notifications on ===\n");
    let evaded = implicit_loop_experiment(true, None, window, 3);
    println!(
        "static check enabled but blind to the external coupling: \
         rejected = {}, actions executed = {} — the loop spins anyway",
        evaded.rejected_statically, evaded.actions_executed
    );
    let detector = RuntimeLoopConfig {
        max_executions: 5,
        window: SimDuration::from_secs(120),
        auto_disable: true,
    };
    let caught = implicit_loop_experiment(true, Some(detector), window, 4);
    println!(
        "runtime detector (>5 executions / 2 min): flagged = {}, auto-disabled = {}, \
         actions executed before the brake = {}",
        caught.flagged, caught.disabled, caught.actions_executed
    );
    println!(
        "\npaper: \"Since IFTTT is not aware of the latter, it cannot detect the loop \
         by analyzing the applets offline. Instead, some runtime detection techniques \
         are needed.\""
    );
}
