//! Regenerate the paper's §3 ecosystem analyses: Tables 1–3, the Figure 2
//! heat map, the Figure 3 tail, growth, and user-contribution stats.
//!
//! ```sh
//! cargo run --release --example ecosystem_report 1.0        # paper scale
//! cargo run --example ecosystem_report                      # 5% scale
//! ```

use ifttt_core::analysis::tail::top_share;
use ifttt_core::Lab;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.05);
    let lab = Lab::new(2017).with_scale(scale);
    println!("generating ecosystem at scale {scale} (1.0 = 320K applets)…\n");

    let snap = lab.snapshot();
    println!(
        "canonical snapshot {}: {} services, {} triggers, {} actions, {} applets, {} adds\n",
        snap.date,
        snap.services.len(),
        snap.trigger_count(),
        snap.action_count(),
        snap.applets.len(),
        snap.total_add_count()
    );

    println!("── Table 1: service-category breakdown ──");
    println!("{}", lab.table1().render());

    let headline = ifttt_core::analysis::tables::HeadlineIot::of(&snap);
    println!(
        "IoT headline (paper: 52% of services, 16% of usage): services {:.1}%, usage {:.1}%\n",
        headline.service_share * 100.0,
        headline.usage_share * 100.0
    );

    println!("── Table 2: dataset comparison ──");
    println!("{}", lab.table2().render());

    println!("── Table 3: top IoT services/triggers/actions ──");
    println!("{}", lab.table3().render());

    println!("── Figure 2: trigger×action category heat map ──");
    println!("{}", lab.fig2().render());

    println!("── Figure 3: applet add-count tail ──");
    let adds: Vec<u64> = snap.applets.iter().map(|a| a.add_count).collect();
    println!(
        "top 1% of applets hold {:.1}% of adds (paper: 84.1%)",
        top_share(&adds, 0.01) * 100.0
    );
    println!(
        "top 10% of applets hold {:.1}% of adds (paper: 97.6%)",
        top_share(&adds, 0.10) * 100.0
    );
    println!("rank series (log-spaced):");
    for p in lab.fig3(12) {
        println!("  rank {:>8} -> {:>10} adds", p.rank, p.value);
    }
    println!();

    println!("── §3.2 growth across the 25 weekly snapshots ──");
    println!("{}", lab.growth().render());

    println!("── §3.2 user contribution ──");
    println!("{}", lab.users().render());
}
