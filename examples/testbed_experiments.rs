//! Run the §4 controlled experiments: T2A latency for A1–A7 (Figure 4),
//! the E1/E2/E3 substitution study (Figure 5), the Table 5 timeline, the
//! sequential-execution clustering (Figure 6), and the concurrent-applet
//! difference (Figure 7).
//!
//! ```sh
//! cargo run --release --example testbed_experiments          # 10 runs each
//! cargo run --release --example testbed_experiments -- 50    # paper counts
//! ```

use ifttt_core::testbed::applets::{PaperApplet, ALL_PAPER_APPLETS};
use ifttt_core::Lab;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let lab = Lab::new(2017);

    println!("── Table 4: the applets under test ──");
    for a in ALL_PAPER_APPLETS {
        println!("  {a:?} [{:<14}] {}", a.group(), a.description());
    }
    println!();

    println!("── Figure 4: T2A latency, official services ({runs} runs each) ──");
    println!("paper: A1–A4 quartiles 58/84/122 s, max ~15 min; A5–A7 seconds\n");
    for report in lab.fig4_t2a(runs) {
        println!("{}", report.render_line());
    }
    println!();

    println!("── Figure 5: A2 under E1/E2/E3 ({runs} runs each) ──");
    println!("paper: E1≈E2 (still slow) — the engine is the bottleneck; E3 ≈ 1–2 s\n");
    for report in lab.fig5_substitution(runs) {
        println!("{}", report.render_line());
    }
    println!();

    println!("── Table 5: execution timeline of A2 under E2 ──");
    println!("{}", lab.table5().render());

    println!("── Figure 6: sequential execution (trigger every 5 s) ──");
    println!("{}", lab.fig6_sequential(60).render());

    println!("── Figure 7: concurrent same-trigger applets ({runs} runs) ──");
    println!("{}", lab.fig7_concurrent(runs).render());

    // A quick sanity line comparing the poll-bound and hinted paths.
    let a2 = lab.fig4_one(PaperApplet::A2, runs.min(10));
    println!(
        "A2 median {:.0}s vs the paper's 84s — the polling interval dominates.",
        a2.summary().p50
    );
}
