//! Quickstart: build the paper's testbed, run one applet end-to-end, and
//! print its trigger-to-action latency.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ifttt_core::engine::{EngineConfig, TapEngine};
use ifttt_core::simnet::prelude::*;
use ifttt_core::testbed::applets::{paper_applet, PaperApplet, ServiceVariant};
use ifttt_core::testbed::{TestController, Testbed, TestbedConfig};

fn main() {
    // The Figure 1 world: Hue lamp+hub, WeMo switch, Echo Dot, proxy,
    // router, vendor clouds, Google, and a production-like IFTTT engine.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 42,
        engine: EngineConfig::ifttt_like(),
    });

    // Install Table 4's applet A2: "Turn on my Hue light from the Wemo
    // light switch", on the official WeMo and Hue partner services.
    let applet = paper_applet(PaperApplet::A2, ServiceVariant::Official);
    println!("installing: {}", applet.name);
    tb.sim
        .with_node::<TapEngine, _>(tb.nodes.engine, |e, ctx| e.install_applet(ctx, applet))
        .expect("install");

    // Give the engine its initial poll, then press the switch.
    tb.sim.run_for(SimDuration::from_secs(10));
    let t0 = tb.sim.now();
    println!("[{t0}] pressing the WeMo switch…");
    tb.sim
        .with_node::<TestController, _>(tb.nodes.controller, |c, ctx| c.press_switch(ctx));

    // Wait for the lamp to turn on.
    loop {
        tb.sim.run_for(SimDuration::from_secs(1));
        let lit = tb
            .sim
            .node_ref::<TestController>(tb.nodes.controller)
            .observed_after("light_on", t0)
            .map(|o| o.at);
        if let Some(at) = lit {
            println!("[{at}] the Hue lamp turned on");
            println!("trigger-to-action latency: {}", at.since(t0));
            println!(
                "(the paper measures 58/84/122 s quartiles for applets like this — \
                 the engine's polling interval dominates)"
            );
            break;
        }
        if tb.sim.now().since(t0) > SimDuration::from_mins(20) {
            println!("timed out — unexpected");
            break;
        }
    }

    // Show the engine's own accounting.
    let stats = tb.sim.node_ref::<TapEngine>(tb.nodes.engine).stats;
    println!(
        "engine stats: {} polls sent ({} empty), {} events, {} actions ok",
        stats.polls_sent, stats.polls_empty, stats.events_new, stats.actions_ok
    );
}
