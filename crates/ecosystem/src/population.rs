//! Fleet-scale user-channel population sampling.
//!
//! §3.3 of the paper characterizes the ~135K user channels by how many
//! applets each installs and which applets they pick (installs concentrate
//! heavily on popular applets — the Zipf-like add-count tail of Figure 3).
//! A million-user workload cannot materialize that population up front, so
//! [`PopulationSampler`] is a *function* from a global user index to a
//! [`UserProfile`]: `user(i)` depends only on `(seed, i)`, never on call
//! order or on which shard asks. That property is what makes fleet runs
//! shard-count invariant and keeps per-shard memory bounded — a shard only
//! ever holds the profiles of the cell it is currently simulating.

use crate::snapshot::Snapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::rng::derive_seed;
use tap_protocol::StepNode;

/// The most applets a synthetic user channel installs. Kept small so one
/// user maps onto a fixed set of per-user trigger slots in the fleet's
/// workload service.
pub const MAX_INSTALLS_PER_USER: usize = 4;

/// One applet installation in a synthetic user channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstalledApplet {
    /// Index into the snapshot's applet list.
    pub applet: usize,
    /// Canonical add count of that applet (drives §6 smart polling).
    pub add_count: u64,
}

/// The applets one synthetic user channel has installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserProfile {
    /// Global user index this profile was derived from.
    pub user: u64,
    /// 1–[`MAX_INSTALLS_PER_USER`] installations, add-count weighted.
    pub installs: Vec<InstalledApplet>,
}

/// Deterministic, O(#applets)-memory sampler of synthetic user channels.
#[derive(Debug, Clone)]
pub struct PopulationSampler {
    /// Cumulative install weights over the snapshot's applets (each applet
    /// weighs `max(add_count, 1)` so zero-add applets stay reachable).
    cum: Vec<u64>,
    adds: Vec<u64>,
    /// Per-applet execution DAGs (empty for classic trigger→action
    /// applets); indexed like `adds`.
    steps: Vec<Vec<StepNode>>,
    total: u64,
    seed: u64,
}

impl PopulationSampler {
    /// Build a sampler over `snap`'s applet catalog.
    ///
    /// # Panics
    /// Panics if the snapshot has no applets.
    pub fn new(snap: &Snapshot, seed: u64) -> Self {
        let mut cum = Vec::with_capacity(snap.applets.len());
        let mut adds = Vec::with_capacity(snap.applets.len());
        let mut steps = Vec::with_capacity(snap.applets.len());
        let mut total = 0u64;
        for a in &snap.applets {
            total += a.add_count.max(1);
            cum.push(total);
            adds.push(a.add_count);
            steps.push(a.steps.clone());
        }
        assert!(total > 0, "population sampler needs a non-empty snapshot");
        PopulationSampler {
            cum,
            adds,
            steps,
            total,
            seed,
        }
    }

    /// Number of applets in the sampled catalog.
    pub fn applet_count(&self) -> usize {
        self.cum.len()
    }

    /// The execution DAG of applet `idx` (empty for classic single-step
    /// applets). Installers clone and re-slug it per installation.
    pub fn steps_of(&self, idx: usize) -> &[StepNode] {
        &self.steps[idx]
    }

    /// The add count at percentile `p` (0–100) of the catalog — e.g. the
    /// p90 knee used as the smart-polling "hot" threshold.
    pub fn add_count_percentile(&self, p: f64) -> u64 {
        let mut sorted = self.adds.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Add-count-weighted applet pick.
    fn pick(&self, rng: &mut StdRng) -> usize {
        let r = rng.gen_range(0..self.total);
        self.cum.partition_point(|&c| c <= r)
    }

    /// The profile of user `index`. Pure in `(seed, index)`.
    pub fn user(&self, index: u64) -> UserProfile {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, index));
        // Install count: geometric-ish with mean ≈ 1.33, capped — most
        // channels hold one applet, a tail holds several (§3.3's skewed
        // per-user contribution).
        let mut n = 1usize;
        while n < MAX_INSTALLS_PER_USER && rng.gen_bool(0.25) {
            n += 1;
        }
        let installs = (0..n)
            .map(|_| {
                let idx = self.pick(&mut rng);
                InstalledApplet {
                    applet: idx,
                    add_count: self.adds[idx],
                }
            })
            .collect();
        UserProfile {
            user: index,
            installs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Ecosystem, GeneratorConfig};

    fn sampler(seed: u64) -> PopulationSampler {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(7));
        PopulationSampler::new(&eco.canonical_snapshot(), seed)
    }

    #[test]
    fn profiles_are_pure_in_seed_and_index() {
        let s1 = sampler(11);
        let s2 = sampler(11);
        for i in [0u64, 1, 999, 1_000_000] {
            assert_eq!(s1.user(i), s2.user(i));
        }
        assert_ne!(s1.user(3), sampler(12).user(3));
        assert_ne!(s1.user(3), s1.user(4));
    }

    #[test]
    fn install_counts_stay_in_bounds_and_skew_low() {
        let s = sampler(5);
        let counts: Vec<usize> = (0..2000).map(|i| s.user(i).installs.len()).collect();
        assert!(counts
            .iter()
            .all(|&c| (1..=MAX_INSTALLS_PER_USER).contains(&c)));
        let singles = counts.iter().filter(|&&c| c == 1).count();
        assert!(
            singles > 1200,
            "most users hold one applet ({singles}/2000)"
        );
        assert!(counts.iter().any(|&c| c > 1), "a tail holds several");
    }

    #[test]
    fn popular_applets_are_installed_more() {
        let s = sampler(5);
        // Empirical install mass of the top-decile applets should far
        // exceed their share of the catalog (add-count weighting).
        let hot = s.add_count_percentile(90.0);
        let mut hot_hits = 0usize;
        let mut total = 0usize;
        for i in 0..3000 {
            for ins in s.user(i).installs {
                total += 1;
                if ins.add_count >= hot {
                    hot_hits += 1;
                }
            }
        }
        let share = hot_hits as f64 / total as f64;
        assert!(
            share > 0.5,
            "top-decile applets draw {share:.2} of installs"
        );
    }

    #[test]
    fn percentiles_are_monotone() {
        let s = sampler(5);
        assert!(s.add_count_percentile(50.0) <= s.add_count_percentile(90.0));
        assert!(s.add_count_percentile(90.0) <= s.add_count_percentile(100.0));
    }
}
