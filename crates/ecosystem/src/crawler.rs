//! The snapshot crawler.
//!
//! Implements §3.1's methodology faithfully: parse the partner-service
//! index to get all services, fetch each service page, then enumerate
//! numeric applet-page ids ("through reverse engineering the URLs … the
//! URLs can be systematically retrieved by enumerating a six-digit applet
//! ID") with bounded concurrency, politeness delays, and 503 retries.
//! Produces a [`Snapshot`] equivalent to the generator's direct view — an
//! integration test asserts the equivalence.

use crate::snapshot::{AppletRecord, Author, ServiceRecord, Snapshot};
use crate::taxonomy::Category;
use simnet::prelude::*;

/// Extract `data-<attr>="…"` values following a `class="<class>"` marker.
fn extract_all<'a>(html: &'a str, class: &str, attr: &str) -> Vec<&'a str> {
    let marker = format!("class=\"{class}\"");
    let attr_marker = format!("data-{attr}=\"");
    let mut out = Vec::new();
    for chunk in html.split(&marker).skip(1) {
        // The attributes of one element precede the closing '>'.
        let element_end = chunk.find('>').unwrap_or(chunk.len());
        let element = &chunk[..element_end];
        if let Some(start) = element.find(&attr_marker) {
            let rest = &element[start + attr_marker.len()..];
            if let Some(end) = rest.find('"') {
                out.push(&rest[..end]);
            }
        }
    }
    out
}

fn extract_first<'a>(html: &'a str, class: &str, attr: &str) -> Option<&'a str> {
    extract_all(html, class, attr).into_iter().next()
}

/// Parse the service index page into (slug, category, name) triples.
pub fn parse_service_index(html: &str) -> Vec<(String, Category, String)> {
    let slugs = extract_all(html, "service", "slug");
    let cats = extract_all(html, "service", "category");
    let mut names = Vec::new();
    // The display name is the element text: between '>' and '</li>'.
    for chunk in html.split("class=\"service\"").skip(1) {
        let text = chunk
            .find('>')
            .map(|i| &chunk[i + 1..])
            .and_then(|rest| rest.find('<').map(|j| &rest[..j]))
            .unwrap_or("");
        names.push(text.to_string());
    }
    slugs
        .into_iter()
        .zip(cats)
        .zip(names)
        .filter_map(|((slug, cat), name)| {
            let cat = Category::from_index(cat.parse().ok()?)?;
            Some((slug.to_string(), cat, name))
        })
        .collect()
}

/// Parse a service page into (triggers, actions).
pub fn parse_service_page(html: &str) -> (Vec<String>, Vec<String>) {
    (
        extract_all(html, "trigger", "slug")
            .into_iter()
            .map(String::from)
            .collect(),
        extract_all(html, "action", "slug")
            .into_iter()
            .map(String::from)
            .collect(),
    )
}

/// Parse an applet page into an [`AppletRecord`] (week is filled by the
/// caller — a scraper cannot see creation dates).
pub fn parse_applet_page(html: &str) -> Option<AppletRecord> {
    let id: u32 = extract_first(html, "applet", "id")?.parse().ok()?;
    let name = html.find("<h1>").and_then(|i| {
        html[i + 4..]
            .find("</h1>")
            .map(|j| html[i + 4..i + 4 + j].to_string())
    })?;
    let trigger_service = extract_first(html, "trigger", "service")?.to_string();
    let trigger = extract_first(html, "trigger", "slug")?.to_string();
    let action_service = extract_first(html, "action", "service")?.to_string();
    let action = extract_first(html, "action", "slug")?.to_string();
    let author_kind = extract_first(html, "author", "kind")?;
    let author_name = extract_first(html, "author", "name")?;
    let author = match author_kind {
        "user" => Author::User(author_name.strip_prefix("user_")?.parse().ok()?),
        "service" => Author::Service(author_name.to_string()),
        _ => return None,
    };
    let add_count: u64 = extract_first(html, "add-count", "value")?.parse().ok()?;
    Some(AppletRecord {
        id,
        name,
        trigger_service,
        trigger,
        action_service,
        action,
        author,
        add_count,
        created_week: 0,
        // The crawler sees the paper's public pages, which render only the
        // classic trigger→action pair.
        steps: Vec::new(),
    })
}

/// Crawler configuration.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// The frontend to scrape.
    pub frontend: NodeId,
    /// Applet-id enumeration range (inclusive lo, exclusive hi).
    pub id_lo: u32,
    pub id_hi: u32,
    /// Maximum in-flight requests.
    pub concurrency: usize,
    /// Politeness delay between a response and the next request it frees.
    pub politeness: SimDuration,
    /// 503 retries per page before giving up.
    pub max_retries: u32,
}

impl CrawlerConfig {
    /// Sensible defaults for a frontend node.
    pub fn new(frontend: NodeId, id_lo: u32, id_hi: u32) -> Self {
        CrawlerConfig {
            frontend,
            id_lo,
            id_hi,
            concurrency: 32,
            politeness: SimDuration::from_millis(20),
            max_retries: 3,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Index,
    Services,
    Applets,
    Done,
}

// Token tags.
const TAG_SHIFT: u64 = 56;
const TAG_INDEX: u64 = 1 << TAG_SHIFT;
const TAG_SERVICE: u64 = 2 << TAG_SHIFT;
const TAG_APPLET: u64 = 3 << TAG_SHIFT;
const TAG_MASK: u64 = 0xFF << TAG_SHIFT;
/// Timer key: issue more requests.
const TK_PUMP: TimerKey = 1;

/// Crawl statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlStats {
    pub pages_fetched: u64,
    pub applets_found: u64,
    pub not_found: u64,
    pub retries: u64,
    pub gave_up: u64,
}

/// The crawler node.
#[derive(Debug)]
pub struct Crawler {
    config: CrawlerConfig,
    phase: Phase,
    /// Services discovered from the index (slug, category, name).
    index: Vec<(String, Category, String)>,
    /// Next service page to request.
    next_service: usize,
    /// Service indices awaiting a retry after a 503.
    service_retry: Vec<usize>,
    services_pending: usize,
    /// Completed service records.
    pub services: Vec<ServiceRecord>,
    /// Next applet id to request.
    next_id: u32,
    applets_pending: usize,
    /// Tokens awaiting a retry.
    retry_queue: Vec<u64>,
    /// Attempts used per token.
    attempts: std::collections::HashMap<u64, u32>,
    /// Harvested applets.
    pub applets: Vec<AppletRecord>,
    /// Crawl statistics.
    pub stats: CrawlStats,
}

impl Crawler {
    /// Create a crawler; it starts on simulation start.
    pub fn new(config: CrawlerConfig) -> Self {
        Crawler {
            config,
            phase: Phase::Index,
            index: Vec::new(),
            next_service: 0,
            service_retry: Vec::new(),
            services_pending: 0,
            services: Vec::new(),
            next_id: 0,
            applets_pending: 0,
            retry_queue: Vec::new(),
            attempts: std::collections::HashMap::new(),
            applets: Vec::new(),
            stats: CrawlStats::default(),
        }
    }

    /// Has the crawl finished?
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Assemble the snapshot (caller supplies week/date labels).
    pub fn snapshot(&self, week: u32, date: impl Into<String>) -> Snapshot {
        let mut services = self.services.clone();
        services.sort_by(|a, b| a.slug.cmp(&b.slug));
        let mut applets = self.applets.clone();
        applets.sort_by_key(|a| a.id);
        Snapshot {
            week,
            date: date.into(),
            services,
            applets,
        }
    }

    fn fetch(&mut self, ctx: &mut Context<'_>, path: String, token: u64) {
        self.stats.pages_fetched += 1;
        ctx.send_request(
            self.config.frontend,
            Request::get(path),
            Token(token),
            RequestOpts::timeout_secs(30),
        );
    }

    /// Issue requests until the concurrency window is full.
    fn pump(&mut self, ctx: &mut Context<'_>) {
        match self.phase {
            Phase::Index => {
                self.fetch(ctx, "/services".into(), TAG_INDEX);
                self.phase = Phase::Services;
            }
            Phase::Services => {
                while self.services_pending < self.config.concurrency {
                    let idx = if let Some(idx) = self.service_retry.pop() {
                        idx
                    } else if self.next_service < self.index.len() {
                        let i = self.next_service;
                        self.next_service += 1;
                        i
                    } else {
                        break;
                    };
                    let slug = self.index[idx].0.clone();
                    self.services_pending += 1;
                    self.fetch(ctx, format!("/services/{slug}"), TAG_SERVICE | idx as u64);
                }
                if self.services_pending == 0
                    && self.next_service >= self.index.len()
                    && self.service_retry.is_empty()
                {
                    self.phase = Phase::Applets;
                    self.next_id = self.config.id_lo;
                    self.pump(ctx);
                }
            }
            Phase::Applets => {
                while self.applets_pending < self.config.concurrency {
                    // Retries first, then fresh ids.
                    let token = if let Some(token) = self.retry_queue.pop() {
                        token
                    } else if self.next_id < self.config.id_hi {
                        let t = TAG_APPLET | self.next_id as u64;
                        self.next_id += 1;
                        t
                    } else {
                        break;
                    };
                    let id = (token & !TAG_MASK) as u32;
                    self.applets_pending += 1;
                    self.fetch(ctx, format!("/applets/{id}"), token);
                }
                if self.applets_pending == 0
                    && self.next_id >= self.config.id_hi
                    && self.retry_queue.is_empty()
                {
                    self.phase = Phase::Done;
                    ctx.trace(
                        "crawler.done",
                        format!(
                            "{} applets, {} services",
                            self.applets.len(),
                            self.services.len()
                        ),
                    );
                }
            }
            Phase::Done => {}
        }
    }
}

impl Node for Crawler {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        if key == TK_PUMP {
            self.pump(ctx);
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        let tag = token.0 & TAG_MASK;
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        match tag {
            TAG_INDEX => {
                if resp.is_success() {
                    self.index = parse_service_index(&body);
                    ctx.trace("crawler.index", format!("{} services", self.index.len()));
                } else {
                    // Index failures retry immediately (the crawl cannot
                    // proceed without it).
                    self.stats.retries += 1;
                    self.phase = Phase::Index;
                }
            }
            TAG_SERVICE => {
                self.services_pending -= 1;
                let idx = (token.0 & !TAG_MASK) as usize;
                if resp.is_success() {
                    let (slug, cat, name) = self.index[idx].clone();
                    let (triggers, actions) = parse_service_page(&body);
                    self.services.push(ServiceRecord {
                        slug,
                        name,
                        category: cat,
                        triggers,
                        actions,
                        created_week: 0,
                    });
                } else if resp.status == 503 {
                    // Put the service back for a retry (service pages are
                    // retried without limit — the crawl needs all of them).
                    self.stats.retries += 1;
                    self.service_retry.push(idx);
                }
            }
            TAG_APPLET => {
                self.applets_pending -= 1;
                if resp.is_success() {
                    if let Some(rec) = parse_applet_page(&body) {
                        self.stats.applets_found += 1;
                        self.applets.push(rec);
                    }
                } else if resp.status == 404 {
                    self.stats.not_found += 1;
                } else {
                    // 503 or timeout: retry up to the limit.
                    let used = self.attempts.entry(token.0).or_insert(0);
                    *used += 1;
                    if *used <= self.config.max_retries {
                        self.stats.retries += 1;
                        self.retry_queue.push(token.0);
                    } else {
                        self.stats.gave_up += 1;
                    }
                }
            }
            _ => {}
        }
        ctx.set_timer(self.config.politeness, TK_PUMP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_extraction_handles_multiple_elements() {
        let html = r#"<li class="service" data-slug="a" data-category="1">A</li>
                      <li class="service" data-slug="b" data-category="13">B</li>"#;
        assert_eq!(extract_all(html, "service", "slug"), vec!["a", "b"]);
        assert_eq!(extract_all(html, "service", "category"), vec!["1", "13"]);
        let parsed = parse_service_index(html);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert_eq!(parsed[0].1, Category::SmartHomeDevice);
        assert_eq!(parsed[1].1, Category::Email);
        assert_eq!(parsed[1].2, "B");
    }

    #[test]
    fn applet_page_parsing_roundtrip() {
        let html = r#"<div class="applet" data-id="123456">
            <h1>If new_email then turn_on_lights</h1>
            <span class="trigger" data-service="gmail" data-slug="new_email"></span>
            <span class="action" data-service="philips_hue" data-slug="turn_on_lights"></span>
            <span class="author" data-kind="user" data-name="user_42"></span>
            <span class="add-count" data-value="9876"></span></div>"#;
        let rec = parse_applet_page(html).unwrap();
        assert_eq!(rec.id, 123_456);
        assert_eq!(rec.trigger_service, "gmail");
        assert_eq!(rec.action, "turn_on_lights");
        assert_eq!(rec.author, Author::User(42));
        assert_eq!(rec.add_count, 9_876);
    }

    #[test]
    fn malformed_pages_parse_to_none() {
        assert!(parse_applet_page("<html>nothing here</html>").is_none());
        assert!(parse_applet_page("").is_none());
        // Missing author.
        let html = r#"<div class="applet" data-id="1"><h1>x</h1>
            <span class="trigger" data-service="a" data-slug="t"></span>
            <span class="action" data-service="b" data-slug="c"></span>
            <span class="add-count" data-value="1"></span></div>"#;
        assert!(parse_applet_page(html).is_none());
    }

    #[test]
    fn service_page_parsing_splits_triggers_and_actions() {
        let html = r#"<div class="service" data-slug="s" data-category="7">
            <li class="trigger" data-slug="t1">t1</li>
            <li class="trigger" data-slug="t2">t2</li>
            <li class="action" data-slug="a1">a1</li></div>"#;
        let (t, a) = parse_service_page(html);
        assert_eq!(t, vec!["t1", "t2"]);
        assert_eq!(a, vec!["a1"]);
    }
}
