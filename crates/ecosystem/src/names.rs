//! Deterministic synthetic naming for services, triggers, and actions.
//!
//! The generator needs hundreds of plausible service names per category.
//! Names are built from per-category word pools; indices map to names
//! bijectively so regeneration is stable across runs.

use crate::taxonomy::Category;

/// Per-category (prefixes, suffixes) pools for service names.
fn pools(cat: Category) -> (&'static [&'static str], &'static [&'static str]) {
    match cat {
        Category::SmartHomeDevice => (
            &[
                "Lumi", "Thermo", "Cam", "Aero", "Glow", "Sense", "Bright", "Home", "Heat", "Air",
            ],
            &[
                "Light",
                "Stat",
                "Cam",
                "Plug",
                "Bulb",
                "Lock",
                "Bell",
                "Vac",
                "Blind",
                "Sprinkler",
            ],
        ),
        Category::SmartHomeHub => (
            &[
                "Nexus", "Core", "Link", "Bridge", "Uni", "Omni", "Meta", "Hub",
            ],
            &[
                "Hub", "Center", "Station", "Connect", "Base", "Box", "Gate", "Mesh",
            ],
        ),
        Category::Wearable => (
            &[
                "Fit", "Pulse", "Step", "Move", "Vital", "Track", "Wrist", "Band",
            ],
            &[
                "Band", "Watch", "Tracker", "Ring", "Clip", "Sense", "Coach", "Gear",
            ],
        ),
        Category::ConnectedCar => (
            &["Auto", "Drive", "Car", "Moto", "Road", "Dash"],
            &["Link", "Sync", "Connect", "Pilot", "Metrics", "Hub"],
        ),
        Category::Smartphone => (
            &["Phone", "Droid", "Pocket", "Mobile", "Cell", "Handset"],
            &["Battery", "NFC", "SMS", "Widget", "Sensor", "Assistant"],
        ),
        Category::CloudStorage => (
            &["Cloud", "Box", "Sky", "Vault", "Drop", "Store"],
            &["Drive", "Box", "Sync", "Store", "Vault", "Locker"],
        ),
        Category::OnlineService => (
            &[
                "Daily", "Meteo", "News", "Stream", "Sport", "Stock", "Quote", "Video",
            ],
            &[
                "Times", "Cast", "Wire", "Feed", "Watch", "Report", "Channel", "Desk",
            ],
        ),
        Category::RssFeed => (
            &["Feed", "RSS", "Reader", "Digest", "Curate"],
            &["Reader", "Stream", "Burner", "Rank", "List"],
        ),
        Category::PersonalData => (
            &[
                "Note", "Task", "Memo", "Plan", "List", "Journal", "Remind", "Agenda",
            ],
            &[
                "Keeper", "List", "Note", "Do", "Book", "Planner", "Board", "Minder",
            ],
        ),
        Category::SocialNetwork => (
            &["Face", "Insta", "Pic", "Chat", "Blog", "Snap", "Micro"],
            &["Gram", "Book", "Share", "Space", "Log", "Feed", "Wall"],
        ),
        Category::Messaging => (
            &["Chat", "Msg", "Team", "Talk", "Ping", "Voice"],
            &["App", "Line", "Room", "Call", "Relay", "Desk"],
        ),
        Category::TimeLocation => (
            &["Time", "Geo", "Date", "Place", "Where"],
            &["Clock", "Fence", "Zone", "Mark", "Point"],
        ),
        Category::Email => (
            &["Mail", "Post", "Inbox", "Letter"],
            &["Box", "Man", "Wing", "Drop"],
        ),
        Category::Other => (
            &["Misc", "Omni", "Gizmo", "Widget", "Egg", "Pet", "Garden"],
            &["Thing", "Minder", "Matic", "Tool", "Mate", "Ware"],
        ),
    }
}

/// The `idx`-th synthetic service name in a category (stable).
pub fn service_name(cat: Category, idx: usize) -> String {
    let (pre, suf) = pools(cat);
    let p = pre[idx % pre.len()];
    let s = suf[(idx / pre.len()) % suf.len()];
    let gen = idx / (pre.len() * suf.len());
    if gen == 0 {
        format!("{p}{s}")
    } else {
        format!("{p}{s} {}", gen + 1)
    }
}

/// Slugify a display name: lowercase, alphanumerics, underscores.
pub fn slugify(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_us = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_us = false;
        } else if !last_us {
            out.push('_');
            last_us = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Trigger-slug verbs per category (combined with an index to stay unique).
fn trigger_stems(cat: Category) -> &'static [&'static str] {
    match cat {
        Category::SmartHomeDevice => &[
            "turned_on",
            "turned_off",
            "motion_detected",
            "door_opened",
            "alarm_raised",
        ],
        Category::SmartHomeHub => &["scene_started", "device_added", "mode_changed"],
        Category::Wearable => &[
            "goal_reached",
            "sleep_logged",
            "workout_done",
            "steps_counted",
        ],
        Category::ConnectedCar => &["ignition_on", "ignition_off", "low_fuel", "hard_brake"],
        Category::Smartphone => &["battery_low", "nfc_tag", "entered_wifi", "missed_call"],
        Category::CloudStorage => &["file_added", "file_shared"],
        Category::OnlineService => &["new_story", "score_update", "price_drop", "forecast_rain"],
        Category::RssFeed => &["new_item", "item_matches"],
        Category::PersonalData => &["task_added", "reminder_due", "note_created", "event_starts"],
        Category::SocialNetwork => &["new_post", "tagged_photo", "new_follower", "new_like"],
        Category::Messaging => &["message_received", "mention", "channel_post"],
        Category::TimeLocation => &[
            "every_day_at",
            "sunrise",
            "sunset",
            "enter_area",
            "exit_area",
        ],
        Category::Email => &["new_email", "email_labeled", "attachment_received"],
        Category::Other => &["something_happened", "state_changed"],
    }
}

/// Action-slug verbs per category.
fn action_stems(cat: Category) -> &'static [&'static str] {
    match cat {
        Category::SmartHomeDevice => &["turn_on", "turn_off", "set_level", "blink", "set_color"],
        Category::SmartHomeHub => &["run_scene", "set_mode"],
        Category::Wearable => &["send_notification", "log_activity", "set_silent_alarm"],
        Category::ConnectedCar => &["precondition", "lock_doors"],
        Category::Smartphone => &["send_notification", "set_wallpaper", "mute", "call_me"],
        Category::CloudStorage => &["save_file", "append_to_file", "add_row"],
        Category::OnlineService => &["publish", "queue_item"],
        Category::RssFeed => &["add_to_feed"],
        Category::PersonalData => &["add_task", "create_note", "set_reminder", "add_event"],
        Category::SocialNetwork => &["create_post", "share_photo", "update_status"],
        Category::Messaging => &["send_message", "post_to_channel", "send_sms"],
        Category::TimeLocation => &["noop"],
        Category::Email => &["send_email", "send_digest"],
        Category::Other => &["do_something"],
    }
}

/// The `idx`-th trigger slug for a category (stable, unique per index).
pub fn trigger_slug(cat: Category, idx: usize) -> String {
    let stems = trigger_stems(cat);
    let stem = stems[idx % stems.len()];
    let gen = idx / stems.len();
    if gen == 0 {
        stem.to_string()
    } else {
        format!("{stem}_{}", gen + 1)
    }
}

/// The `idx`-th action slug for a category.
pub fn action_slug(cat: Category, idx: usize) -> String {
    let stems = action_stems(cat);
    let stem = stems[idx % stems.len()];
    let gen = idx / stems.len();
    if gen == 0 {
        stem.to_string()
    } else {
        format!("{stem}_{}", gen + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::ALL_CATEGORIES;
    use std::collections::HashSet;

    #[test]
    fn service_names_are_unique_per_category() {
        for cat in ALL_CATEGORIES {
            let names: HashSet<String> = (0..200).map(|i| service_name(cat, i)).collect();
            assert_eq!(names.len(), 200, "{cat}");
        }
    }

    #[test]
    fn slugify_is_url_safe() {
        assert_eq!(slugify("Philips Hue"), "philips_hue");
        assert_eq!(slugify("UP by Jawbone!"), "up_by_jawbone");
        assert_eq!(slugify("  A--B  "), "a_b");
        assert_eq!(slugify("Nest (Thermostat)"), "nest_thermostat");
    }

    #[test]
    fn trigger_and_action_slugs_unique() {
        for cat in ALL_CATEGORIES {
            let t: HashSet<String> = (0..50).map(|i| trigger_slug(cat, i)).collect();
            assert_eq!(t.len(), 50, "{cat} triggers");
            let a: HashSet<String> = (0..50).map(|i| action_slug(cat, i)).collect();
            assert_eq!(a.len(), 50, "{cat} actions");
        }
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(
            service_name(Category::Wearable, 17),
            service_name(Category::Wearable, 17)
        );
    }
}
