//! The crawled-data model: services, applets, snapshots, and longitudinal
//! diffs — the shapes §3.1's crawler produces and §3.2's analyses consume.

use crate::taxonomy::Category;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tap_protocol::StepNode;

/// Who published an applet.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Author {
    /// A partner service's own applet.
    Service(String),
    /// A user channel ("most applets (98%) are home-made by users").
    User(u32),
}

impl Author {
    /// True for user-made applets.
    pub fn is_user(&self) -> bool {
        matches!(self, Author::User(_))
    }
}

/// One partner service as seen by the crawler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRecord {
    pub slug: String,
    pub name: String,
    pub category: Category,
    /// Trigger slugs this service exposes.
    pub triggers: Vec<String>,
    /// Action slugs this service exposes.
    pub actions: Vec<String>,
    /// Week the service first appeared.
    pub created_week: u32,
}

/// One public applet as seen by the crawler (§3.1 lists exactly these
/// fields: name, description, trigger, trigger service, action name, action
/// service, and add count).
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct AppletRecord {
    /// Six-digit page id (the crawler enumerates these).
    pub id: u32,
    pub name: String,
    pub trigger_service: String,
    pub trigger: String,
    pub action_service: String,
    pub action: String,
    pub author: Author,
    pub add_count: u64,
    /// Week the applet was published.
    pub created_week: u32,
    /// Multi-step execution DAG (Zapier-style), empty for the classic
    /// trigger→action applets the paper crawled. Node slugs are abstract:
    /// runtimes resolve query/action slugs against the services they
    /// actually install the applet on.
    #[serde(default)]
    pub steps: Vec<StepNode>,
}

// Manual `Serialize` so an all-classic snapshot keeps its exact
// pre-multi-step byte representation: `steps` appears only when nonempty.
impl Serialize for AppletRecord {
    fn to_value(&self) -> serde::Value {
        let mut m = BTreeMap::new();
        let mut put = |name: &str, v: serde::Value| {
            m.insert(name.to_string(), v);
        };
        put("id", self.id.to_value());
        put("name", self.name.to_value());
        put("trigger_service", self.trigger_service.to_value());
        put("trigger", self.trigger.to_value());
        put("action_service", self.action_service.to_value());
        put("action", self.action.to_value());
        put("author", self.author.to_value());
        put("add_count", self.add_count.to_value());
        put("created_week", self.created_week.to_value());
        if !self.steps.is_empty() {
            put("steps", self.steps.to_value());
        }
        serde::Value::Object(m)
    }
}

/// One weekly snapshot of the ecosystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Zero-based week index.
    pub week: u32,
    /// Calendar label, e.g. `2017-03-25`.
    pub date: String,
    pub services: Vec<ServiceRecord>,
    pub applets: Vec<AppletRecord>,
}

impl Snapshot {
    /// Total trigger count across services.
    pub fn trigger_count(&self) -> usize {
        self.services.iter().map(|s| s.triggers.len()).sum()
    }

    /// Total action count across services.
    pub fn action_count(&self) -> usize {
        self.services.iter().map(|s| s.actions.len()).sum()
    }

    /// Total add count across applets.
    pub fn total_add_count(&self) -> u64 {
        self.applets.iter().map(|a| a.add_count).sum()
    }

    /// Distinct user channels with at least one published applet.
    pub fn user_channel_count(&self) -> usize {
        let mut users = std::collections::HashSet::new();
        for a in &self.applets {
            if let Author::User(u) = a.author {
                users.insert(u);
            }
        }
        users.len()
    }

    /// Category of a service slug, if known.
    pub fn category_of(&self, slug: &str) -> Option<Category> {
        self.services
            .iter()
            .find(|s| s.slug == slug)
            .map(|s| s.category)
    }

    /// A slug → category lookup map (build once for hot analyses).
    pub fn category_index(&self) -> BTreeMap<&str, Category> {
        self.services
            .iter()
            .map(|s| (s.slug.as_str(), s.category))
            .collect()
    }

    /// Serialize to JSON (what the crawler archives per week).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parse an archived snapshot.
    pub fn from_json(s: &str) -> Result<Snapshot, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The difference between two snapshots (growth reporting, §3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDiff {
    pub from_week: u32,
    pub to_week: u32,
    pub services_growth: f64,
    pub triggers_growth: f64,
    pub actions_growth: f64,
    pub add_count_growth: f64,
    pub new_services: Vec<String>,
}

/// Compute the relative growth between two snapshots.
pub fn diff(a: &Snapshot, b: &Snapshot) -> SnapshotDiff {
    fn growth(from: f64, to: f64) -> f64 {
        if from <= 0.0 {
            0.0
        } else {
            to / from - 1.0
        }
    }
    let old: std::collections::HashSet<&str> = a.services.iter().map(|s| s.slug.as_str()).collect();
    SnapshotDiff {
        from_week: a.week,
        to_week: b.week,
        services_growth: growth(a.services.len() as f64, b.services.len() as f64),
        triggers_growth: growth(a.trigger_count() as f64, b.trigger_count() as f64),
        actions_growth: growth(a.action_count() as f64, b.action_count() as f64),
        add_count_growth: growth(a.total_add_count() as f64, b.total_add_count() as f64),
        new_services: b
            .services
            .iter()
            .filter(|s| !old.contains(s.slug.as_str()))
            .map(|s| s.slug.clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(slug: &str, cat: Category, nt: usize, na: usize) -> ServiceRecord {
        ServiceRecord {
            slug: slug.into(),
            name: slug.to_uppercase(),
            category: cat,
            triggers: (0..nt).map(|i| format!("t{i}")).collect(),
            actions: (0..na).map(|i| format!("a{i}")).collect(),
            created_week: 0,
        }
    }

    fn applet(id: u32, author: Author, adds: u64) -> AppletRecord {
        AppletRecord {
            id,
            name: format!("applet {id}"),
            trigger_service: "svc_a".into(),
            trigger: "t0".into(),
            action_service: "svc_b".into(),
            action: "a0".into(),
            author,
            add_count: adds,
            created_week: 0,
            steps: Vec::new(),
        }
    }

    fn snapshot() -> Snapshot {
        Snapshot {
            week: 18,
            date: "2017-03-25".into(),
            services: vec![
                service("svc_a", Category::SmartHomeDevice, 2, 1),
                service("svc_b", Category::Email, 1, 3),
            ],
            applets: vec![
                applet(1, Author::User(7), 100),
                applet(2, Author::User(7), 50),
                applet(3, Author::User(9), 10),
                applet(4, Author::Service("svc_a".into()), 40),
            ],
        }
    }

    #[test]
    fn aggregate_counts() {
        let s = snapshot();
        assert_eq!(s.trigger_count(), 3);
        assert_eq!(s.action_count(), 4);
        assert_eq!(s.total_add_count(), 200);
        assert_eq!(s.user_channel_count(), 2);
        assert_eq!(s.category_of("svc_a"), Some(Category::SmartHomeDevice));
        assert_eq!(s.category_of("ghost"), None);
    }

    #[test]
    fn json_roundtrip() {
        let s = snapshot();
        let back = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn diff_reports_relative_growth() {
        let a = snapshot();
        let mut b = snapshot();
        b.week = 19;
        b.services.push(service("svc_c", Category::Other, 2, 0));
        b.applets.push(applet(5, Author::User(1), 40));
        let d = diff(&a, &b);
        assert_eq!(d.from_week, 18);
        assert!((d.services_growth - 0.5).abs() < 1e-9);
        assert!((d.triggers_growth - 2.0 / 3.0).abs() < 1e-9);
        assert!((d.add_count_growth - 0.2).abs() < 1e-9);
        assert_eq!(d.new_services, vec!["svc_c"]);
    }

    #[test]
    fn author_kinds() {
        assert!(Author::User(1).is_user());
        assert!(!Author::Service("x".into()).is_user());
    }
}
