//! The calibrated ecosystem generator.
//!
//! Substitutes for the live 2017 crawl (see DESIGN.md): generates a
//! synthetic IFTTT ecosystem whose *measurable aggregates* match every
//! number the paper publishes — Table 1's category marginals, Table 2's
//! scale, Table 3's top-IoT anchors, Figure 2's interaction structure,
//! Figure 3's heavy tail, and §3.2's growth and user-contribution stats —
//! so the analysis pipeline can re-derive the paper's findings from data
//! rather than echo constants.
//!
//! Construction outline:
//!
//! 1. **Services**: category counts by largest-remainder apportionment of
//!    Table 1's percentages; 12 real IoT anchor services (Table 3) plus a
//!    pool of well-known non-IoT services, then synthetic names.
//! 2. **Interaction matrix**: a 14×14 trigger×action add-count matrix fit
//!    by iterative proportional fitting to Table 1's marginals, seeded with
//!    Figure 2's qualitative hotspots.
//! 3. **Anchor applets**: a hand-authored pairing table that realizes
//!    Table 3's per-service add counts exactly.
//! 4. **Synthetic applets**: a three-segment heavy-tail add-count sequence
//!    (head/mid/tail) hitting Figure 3's top-1% = 84.1% and top-10% =
//!    97.6% shares, assigned to category cells by budgeted sampling.
//! 5. **Authors**: a service-made band (2% of applets, 14% of adds) and a
//!    heavy-tailed user quota sequence (top 1% → 18%, top 10% → 49%).
//! 6. **Longitudinal model**: per-entity creation weeks following the
//!    published growth rates, with add counts scaled geometrically.

#![allow(clippy::needless_range_loop)] // 14x14 matrix code reads best with indices

use crate::model::{self, GROWTH, SCALE, TAILS};
use crate::names;
use crate::snapshot::{AppletRecord, Author, ServiceRecord, Snapshot};
use crate::taxonomy::{Category, ALL_CATEGORIES, TABLE1};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::rng::derive_seed;
use tap_protocol::{FieldMap, StepNode, StepPredicate, StepSpec};

/// Derived-seed stream for the multi-step shape post-pass, so enabling
/// `multi_step_share` perturbs no draw of the base ecosystem RNG.
const MULTI_STEP_STREAM: u64 = 0x57e9_0001;

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Master seed; same seed → identical ecosystem.
    pub seed: u64,
    /// Linear scale on applets, adds, and users (1.0 = paper scale;
    /// analyses are scale-invariant). Service counts stay at 408 so that
    /// Table 1 remains meaningful. Must be ≥ 0.02.
    pub scale: f64,
    /// Fraction of applets given a Zapier-style multi-step execution DAG
    /// (0.0 = the paper's pure trigger→action model). Shapes are drawn in
    /// a post-pass on a derived RNG stream, so 0.0 is byte-identical to
    /// the pre-multi-step generator.
    #[serde(default)]
    pub multi_step_share: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 2017,
            scale: 1.0,
            multi_step_share: 0.0,
        }
    }
}

impl GeneratorConfig {
    /// A reduced-scale config for fast tests (~6.4K applets).
    pub fn test_scale(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            scale: 0.02,
            multi_step_share: 0.0,
        }
    }
}

/// The generated ecosystem: the full final-week population plus the growth
/// model; weekly [`Snapshot`]s are views of it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecosystem {
    pub config: GeneratorConfig,
    /// All services ever created (including post-canonical ones).
    pub services: Vec<ServiceRecord>,
    /// All applets; `add_count` is the canonical-week (3/25/2017) value.
    pub applets: Vec<AppletRecord>,
    /// Final crawl week (inclusive).
    pub final_week: u32,
}

/// Geometric growth value: `canonical_value · (1+g)^((week-18)/19)`.
fn curve(canonical: f64, growth: f64, week: f64) -> f64 {
    let span = (GROWTH.week_end - GROWTH.week_start) as f64;
    canonical * (1.0 + growth).powf((week - GROWTH.week_canonical as f64) / span)
}

/// Largest-remainder apportionment of `total` across `weights`.
fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let wsum: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights.iter().map(|w| w / wsum * total as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut remaining = total - counts.iter().sum::<usize>();
    let mut by_frac: Vec<usize> = (0..weights.len()).collect();
    by_frac.sort_by(|&a, &b| {
        (exact[b] - exact[b].floor())
            .partial_cmp(&(exact[a] - exact[a].floor()))
            .unwrap()
    });
    for &i in &by_frac {
        if remaining == 0 {
            break;
        }
        counts[i] += 1;
        remaining -= 1;
    }
    counts
}

/// One of five canonical multi-step DAG shapes, picked by a uniform draw
/// in `[0, 1)`. The applet's classic `action` slug stays the DAG's first
/// terminal action, so runtimes resolve endpoints exactly as before;
/// fan-out shapes add a second abstract action slot that installers remap.
fn multi_step_shape(pick: f64, action: &str) -> Vec<StepNode> {
    let fm = |pairs: &[(&str, &str)]| -> FieldMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    };
    let act = |slug: &str| {
        StepNode::new(StepSpec::Action {
            action: slug.to_string(),
            fields: FieldMap::new(),
        })
    };
    if pick < 0.30 {
        // filter_pass: a permissive gate in front of the action.
        vec![
            StepNode::new(StepSpec::Filter {
                predicate: StepPredicate::NotHas {
                    key: "blocked".into(),
                },
            }),
            act(action).after(&[0]),
        ]
    } else if pick < 0.55 {
        // transform_chain: rewrite, gate on the rewrite, then act.
        vec![
            StepNode::new(StepSpec::Transform {
                fields: fm(&[("status", "armed")]),
            }),
            StepNode::new(StepSpec::Filter {
                predicate: StepPredicate::Equals {
                    key: "status".into(),
                    value: "armed".into(),
                },
            })
            .after(&[0]),
            act(action).after(&[1]),
        ]
    } else if pick < 0.80 {
        // query_enrich: network lookup feeding a transform, then act.
        vec![
            StepNode::new(StepSpec::Query {
                query: "lookup".into(),
                prefix: "ctx".into(),
                fields: fm(&[("q", "{{when}}")]),
            }),
            StepNode::new(StepSpec::Transform {
                fields: fm(&[("note", "{{ctx.echo}}")]),
            })
            .after(&[0]),
            act(action).after(&[1]),
        ]
    } else if pick < 0.90 {
        // fanout: one transform feeding two parallel actions.
        vec![
            StepNode::new(StepSpec::Transform {
                fields: fm(&[("copy", "{{when}}")]),
            }),
            act(action).after(&[0]),
            act("aux").after(&[0]),
        ]
    } else {
        // filter_drop: a gate that always cuts (the activation is
        // filtered, not dead-lettered).
        vec![
            StepNode::new(StepSpec::Filter {
                predicate: StepPredicate::Has {
                    key: "never_set".into(),
                },
            }),
            act(action).after(&[0]),
        ]
    }
}

/// Well-known non-IoT services seeded into their categories (referenced by
/// the anchor pairing table and realistic in their own right).
const FAMOUS: &[(&str, &str, Category)] = &[
    ("Gmail", "gmail", Category::Email),
    ("Google Drive", "google_drive", Category::CloudStorage),
    ("Google Sheets", "google_sheets", Category::CloudStorage),
    ("Facebook", "facebook", Category::SocialNetwork),
    ("Twitter", "twitter", Category::SocialNetwork),
    ("Instagram", "instagram", Category::SocialNetwork),
    (
        "Weather Underground",
        "weather_underground",
        Category::OnlineService,
    ),
    ("NYTimes", "nytimes", Category::OnlineService),
    ("YouTube", "youtube", Category::OnlineService),
    ("Feedly", "feedly", Category::RssFeed),
    ("Location", "location", Category::TimeLocation),
    ("Date & Time", "date_time", Category::TimeLocation),
    ("Android Device", "android_device", Category::Smartphone),
    ("Phone Call", "phone_call", Category::Smartphone),
    ("Android SMS", "android_sms", Category::Messaging),
    ("Slack", "slack", Category::Messaging),
    ("Todoist", "todoist", Category::PersonalData),
    ("Evernote", "evernote", Category::PersonalData),
    ("iOS Reminders", "ios_reminders", Category::PersonalData),
    ("Google Calendar", "google_calendar", Category::PersonalData),
];

/// One anchor applet: realizes part of a Table 3 service's add count.
struct AnchorApplet {
    trigger_service: &'static str,
    trigger: &'static str,
    action_service: &'static str,
    action: &'static str,
    /// Thousandths of the *unscaled* paper add count (e.g. 400 = 400K).
    adds_k: u64,
}

/// The hand-authored pairing table. Per-service sums equal Table 3's
/// published add counts on both the trigger and action sides.
const ANCHOR_APPLETS: &[AnchorApplet] = &[
    // Amazon Alexa triggers: 1.2M total.
    AnchorApplet {
        trigger_service: "amazon_alexa",
        trigger: "say_a_phrase",
        action_service: "philips_hue",
        action: "turn_on_lights",
        adds_k: 400,
    },
    AnchorApplet {
        trigger_service: "amazon_alexa",
        trigger: "todo_item_added",
        action_service: "todoist",
        action: "add_task",
        adds_k: 300,
    },
    AnchorApplet {
        trigger_service: "amazon_alexa",
        trigger: "ask_whats_on_shopping_list",
        action_service: "ios_reminders",
        action: "set_reminder",
        adds_k: 180,
    },
    AnchorApplet {
        trigger_service: "amazon_alexa",
        trigger: "say_a_phrase",
        action_service: "philips_hue",
        action: "change_color",
        adds_k: 140,
    },
    AnchorApplet {
        trigger_service: "amazon_alexa",
        trigger: "shopping_item_added",
        action_service: "gmail",
        action: "send_email",
        adds_k: 120,
    },
    AnchorApplet {
        trigger_service: "amazon_alexa",
        trigger: "song_played",
        action_service: "google_sheets",
        action: "add_row",
        adds_k: 60,
    },
    // Philips Hue actions: 1.2M total (540K from Alexa above).
    AnchorApplet {
        trigger_service: "date_time",
        trigger: "sunset",
        action_service: "philips_hue",
        action: "turn_on_lights",
        adds_k: 250,
    },
    AnchorApplet {
        trigger_service: "date_time",
        trigger: "sunrise",
        action_service: "philips_hue",
        action: "turn_off_lights",
        adds_k: 160,
    },
    AnchorApplet {
        trigger_service: "weather_underground",
        trigger: "forecast_rain",
        action_service: "philips_hue",
        action: "change_color",
        adds_k: 150,
    },
    AnchorApplet {
        trigger_service: "ios_reminders",
        trigger: "reminder_due",
        action_service: "philips_hue",
        action: "blink_lights",
        adds_k: 100,
    },
    // Fitbit triggers: 200K.
    AnchorApplet {
        trigger_service: "fitbit",
        trigger: "daily_activity_summary",
        action_service: "google_sheets",
        action: "add_row",
        adds_k: 120,
    },
    AnchorApplet {
        trigger_service: "fitbit",
        trigger: "new_sleep_logged",
        action_service: "evernote",
        action: "create_note",
        adds_k: 80,
    },
    // Nest Thermostat triggers: 100K.
    AnchorApplet {
        trigger_service: "nest_thermostat",
        trigger: "temperature_rises_above",
        action_service: "todoist",
        action: "add_task",
        adds_k: 60,
    },
    AnchorApplet {
        trigger_service: "nest_thermostat",
        trigger: "temperature_drops_below",
        action_service: "android_device",
        action: "send_notification",
        adds_k: 40,
    },
    // Google Assistant triggers: 100K.
    AnchorApplet {
        trigger_service: "google_assistant",
        trigger: "say_a_phrase_ga",
        action_service: "harmony_hub",
        action: "start_activity",
        adds_k: 100,
    },
    // UP by Jawbone triggers: 100K.
    AnchorApplet {
        trigger_service: "up_by_jawbone",
        trigger: "new_sleep_up",
        action_service: "evernote",
        action: "create_note",
        adds_k: 60,
    },
    AnchorApplet {
        trigger_service: "up_by_jawbone",
        trigger: "new_workout_up",
        action_service: "google_sheets",
        action: "add_row",
        adds_k: 40,
    },
    // Nest Protect triggers: 70K.
    AnchorApplet {
        trigger_service: "nest_protect",
        trigger: "smoke_alarm",
        action_service: "phone_call",
        action: "call_me",
        adds_k: 50,
    },
    AnchorApplet {
        trigger_service: "nest_protect",
        trigger: "co_alarm",
        action_service: "android_sms",
        action: "send_sms",
        adds_k: 20,
    },
    // Automatic triggers: 60K.
    AnchorApplet {
        trigger_service: "automatic",
        trigger: "ignition_off",
        action_service: "google_calendar",
        action: "add_event",
        adds_k: 40,
    },
    AnchorApplet {
        trigger_service: "automatic",
        trigger: "check_engine",
        action_service: "android_sms",
        action: "send_sms",
        adds_k: 20,
    },
    // LIFX actions: 200K.
    AnchorApplet {
        trigger_service: "date_time",
        trigger: "sunset",
        action_service: "lifx",
        action: "turn_on_lifx",
        adds_k: 120,
    },
    AnchorApplet {
        trigger_service: "weather_underground",
        trigger: "forecast_rain",
        action_service: "lifx",
        action: "breathe_lifx",
        adds_k: 80,
    },
    // Nest Thermostat actions: 200K.
    AnchorApplet {
        trigger_service: "location",
        trigger: "exit_area",
        action_service: "nest_thermostat",
        action: "set_temperature",
        adds_k: 120,
    },
    AnchorApplet {
        trigger_service: "weather_underground",
        trigger: "forecast_rain",
        action_service: "nest_thermostat",
        action: "set_temperature",
        adds_k: 80,
    },
    // Harmony Hub actions: 200K total (100K from Google Assistant above).
    AnchorApplet {
        trigger_service: "location",
        trigger: "enter_area",
        action_service: "harmony_hub",
        action: "start_activity",
        adds_k: 70,
    },
    AnchorApplet {
        trigger_service: "google_calendar",
        trigger: "event_starts",
        action_service: "harmony_hub",
        action: "end_activity",
        adds_k: 30,
    },
    // WeMo Smart Plug actions: 100K.
    AnchorApplet {
        trigger_service: "location",
        trigger: "enter_area",
        action_service: "wemo",
        action: "turn_on",
        adds_k: 70,
    },
    AnchorApplet {
        trigger_service: "location",
        trigger: "exit_area",
        action_service: "wemo",
        action: "turn_off",
        adds_k: 30,
    },
    // Android Smartwatch actions: 100K.
    AnchorApplet {
        trigger_service: "nytimes",
        trigger: "new_story",
        action_service: "android_smartwatch",
        action: "send_a_notification",
        adds_k: 60,
    },
    AnchorApplet {
        trigger_service: "gmail",
        trigger: "new_email",
        action_service: "android_smartwatch",
        action: "send_a_notification",
        adds_k: 40,
    },
    // UP by Jawbone actions: 90K.
    AnchorApplet {
        trigger_service: "evernote",
        trigger: "note_created",
        action_service: "up_by_jawbone",
        action: "log_caffeine",
        adds_k: 50,
    },
    AnchorApplet {
        trigger_service: "weather_underground",
        trigger: "forecast_rain",
        action_service: "up_by_jawbone",
        action: "log_mood",
        adds_k: 40,
    },
];

/// Iterative proportional fitting of the 14×14 interaction matrix to
/// Table 1's trigger/action add-count marginals, from a seed encoding
/// Figure 2's qualitative hotspots. Returns fractions summing to 1.
pub fn interaction_matrix() -> [[f64; 14]; 14] {
    let mut m = [[1.0f64; 14]; 14];
    let boost = |m: &mut [[f64; 14]; 14], r: usize, c: usize, f: f64| {
        m[r - 1][c - 1] *= f;
    };
    // IoT triggers pair with action categories 1, 5, 9 (§3.2 / Fig. 2).
    for r in 1..=4 {
        for c in [1, 5, 9] {
            boost(&mut m, r, c, 8.0);
        }
    }
    // IoT actions pair with trigger categories 1, 7, 9, 12.
    for r in [1, 7, 9, 12] {
        boost(&mut m, r, 1, 8.0);
    }
    // Non-IoT hotspots: triggers from social (10), online services (7),
    // RSS (8), time/location (12) driving notifications (9), cloud
    // logging (6), and social posting (10).
    for r in [7, 8, 10, 12] {
        for c in [9, 6, 10] {
            boost(&mut m, r, c, 4.0);
        }
    }
    // Social-to-social syncing is a top non-IoT use case.
    boost(&mut m, 10, 10, 6.0);
    // Email ↔ storage/notification.
    boost(&mut m, 13, 6, 4.0);
    boost(&mut m, 13, 9, 4.0);
    let rows: Vec<f64> = TABLE1.iter().map(|r| r.trigger_ac_pct / 100.0).collect();
    let cols: Vec<f64> = TABLE1.iter().map(|r| r.action_ac_pct / 100.0).collect();
    // Zero columns stay zero (Time & location exposes no real actions).
    for (j, c) in cols.iter().enumerate() {
        if *c == 0.0 {
            for row in m.iter_mut() {
                row[j] = 0.0;
            }
        }
    }
    for _ in 0..200 {
        // Scale rows.
        for i in 0..14 {
            let s: f64 = m[i].iter().sum();
            if s > 0.0 {
                for j in 0..14 {
                    m[i][j] *= rows[i] / s;
                }
            }
        }
        // Scale columns.
        for j in 0..14 {
            let s: f64 = (0..14).map(|i| m[i][j]).sum();
            if s > 0.0 {
                for row in m.iter_mut() {
                    row[j] *= cols[j] / s;
                }
            }
        }
    }
    m
}

/// A heavy-tail add-count sequence: `n` descending values summing to
/// exactly `total`, with the top 1% holding `head_share` and ranks 1%–10%
/// holding `mid_share` of the total (Figure 3's calibration).
///
/// Shape: a continuous piecewise power law `v(r) = C·r^-a`. The head
/// exponent is fixed; the mid and tail exponents are solved numerically so
/// the segment sums hit their budgets while values stay continuous (and
/// therefore globally monotone) across segment boundaries.
fn heavy_tail_sequence(n: usize, total: u64, head_share: f64, mid_share: f64) -> Vec<u64> {
    heavy_tail_sequence_with_knees(n, total, head_share, mid_share, n / 100, n / 10)
}

/// [`heavy_tail_sequence`] with explicit segment knees — used when part of
/// the population (the anchor applets) already occupies top ranks, so the
/// synthetic head must be smaller than a straight 1% of `n`.
fn heavy_tail_sequence_with_knees(
    n: usize,
    total: u64,
    head_share: f64,
    mid_share: f64,
    k1: usize,
    k2: usize,
) -> Vec<u64> {
    if n == 0 || total == 0 {
        return vec![0; n];
    }
    let k1 = k1.max(1).min(n);
    let k2 = k2.max(k1).min(n);
    let s1 = total as f64 * head_share.clamp(0.0, 1.0);
    let s2 = total as f64 * mid_share.clamp(0.0, 1.0);
    let s3 = (total as f64 - s1 - s2).max(0.0);

    let mut values = vec![0f64; n];
    // Head: fixed exponent. Kept moderate so the single largest item stays
    // below the largest interaction-matrix cell budget (otherwise one mega
    // applet would distort a whole Table 1 marginal).
    let a = 0.8;
    let head_wsum: f64 = (1..=k1).map(|r| (r as f64).powf(-a)).sum();
    let c1 = if head_wsum > 0.0 { s1 / head_wsum } else { 0.0 };
    for (r, v) in values.iter_mut().enumerate().take(k1) {
        *v = c1 * ((r + 1) as f64).powf(-a);
    }
    let v_k1 = values[k1 - 1].max(1.0);

    // Solve an exponent b so that Σ_{k+1..m} v_k · (r/k)^-b = budget.
    // The sum is strictly decreasing in b, so bisection converges.
    fn solve_segment(values: &mut [f64], k: usize, m: usize, v_k: f64, budget: f64) {
        if m <= k {
            return;
        }
        let sum_for = |b: f64| -> f64 {
            (k + 1..=m)
                .map(|r| v_k * (r as f64 / k as f64).powf(-b))
                .sum()
        };
        let (mut lo, mut hi) = (0.0f64, 6.0f64);
        // If even a flat segment cannot reach the budget, use flat.
        let b = if sum_for(0.0) <= budget {
            0.0
        } else {
            for _ in 0..50 {
                let mid = (lo + hi) / 2.0;
                if sum_for(mid) > budget {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (lo + hi) / 2.0
        };
        for r in k + 1..=m {
            values[r - 1] = v_k * (r as f64 / k as f64).powf(-b);
        }
    }
    solve_segment(&mut values, k1, k2, v_k1, s2);
    let v_k2 = values[k2 - 1].max(1.0);
    solve_segment(&mut values, k2, n, v_k2, s3);

    // Cap any single item at 2.5% of the total, carrying the excess down
    // the ranking (a plateau at the cap). This keeps every item safely
    // below the largest interaction-matrix cell budget (~6% of adds) so
    // the greedy placement cannot blow a Table 1 marginal, while leaving
    // the top-1% share reachable even at reduced scale (64 items × 2.5%
    // ≥ 84.1% at scale 0.02).
    let cap = (total as f64 * 0.02).max(1.0);
    let mut carry = 0.0;
    for v in values.iter_mut() {
        *v += carry;
        carry = 0.0;
        if *v > cap {
            carry = *v - cap;
            *v = cap;
        }
    }
    if carry > 0.0 {
        let spread = carry / n as f64;
        for v in values.iter_mut() {
            *v += spread;
        }
    }

    // Integerize: round to ≥1, then fix total drift — surplus is absorbed
    // from the tail upward (values above the floor of 1) so the head and
    // mid shares survive; deficit goes onto the top item.
    let mut out: Vec<u64> = values.iter().map(|v| (v.round() as u64).max(1)).collect();
    let drift = total as i64 - out.iter().sum::<u64>() as i64;
    if drift > 0 {
        out[0] += drift as u64;
    } else if drift < 0 {
        let mut need = (-drift) as u64;
        for i in (0..out.len()).rev() {
            if need == 0 {
                break;
            }
            if out[i] > 1 {
                let take = (out[i] - 1).min(need);
                out[i] -= take;
                need -= take;
            }
        }
    }
    out.sort_unstable_by(|x, y| y.cmp(x));
    out
}

impl Ecosystem {
    /// Generate an ecosystem.
    ///
    /// # Panics
    /// Panics if `config.scale < 0.02` (below that the heavy-tail segments
    /// degenerate).
    pub fn generate(config: GeneratorConfig) -> Ecosystem {
        assert!(config.scale >= 0.02, "scale too small");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let final_week = (GROWTH.snapshots - 1) as u32;

        // ---- 1. Services ----------------------------------------------
        let canonical_services = SCALE.services;
        let total_services = curve(
            canonical_services as f64,
            GROWTH.services,
            final_week as f64,
        )
        .round() as usize;
        let per_cat = apportion(
            canonical_services,
            &TABLE1.iter().map(|r| r.services_pct).collect::<Vec<_>>(),
        );

        let mut services: Vec<ServiceRecord> = Vec::with_capacity(total_services);
        let mut cat_fill = vec![0usize; 14];
        let push_service = |services: &mut Vec<ServiceRecord>,
                            cat_fill: &mut Vec<usize>,
                            name: String,
                            slug: String,
                            cat: Category| {
            cat_fill[cat.index() - 1] += 1;
            services.push(ServiceRecord {
                slug,
                name,
                category: cat,
                triggers: Vec::new(),
                actions: Vec::new(),
                created_week: 0,
            });
        };
        // Real anchors first (deduplicated across the two Table 3 lists).
        let mut seen = std::collections::HashSet::new();
        for a in model::TOP_IOT_TRIGGER_SERVICES
            .iter()
            .chain(model::TOP_IOT_ACTION_SERVICES)
        {
            if seen.insert(a.slug) {
                let cat = Category::from_index(a.category).expect("valid category");
                push_service(
                    &mut services,
                    &mut cat_fill,
                    a.service.into(),
                    a.slug.into(),
                    cat,
                );
            }
        }
        // Well-known non-IoT services.
        for (name, slug, cat) in FAMOUS {
            push_service(
                &mut services,
                &mut cat_fill,
                (*name).into(),
                (*slug).into(),
                *cat,
            );
        }
        // Synthetic fill to canonical counts per category.
        for (ci, cat) in ALL_CATEGORIES.iter().enumerate() {
            let mut idx = 0;
            while cat_fill[ci] < per_cat[ci] {
                let name = names::service_name(*cat, idx);
                idx += 1;
                let slug = names::slugify(&name);
                if services.iter().any(|s| s.slug == slug) {
                    continue;
                }
                push_service(&mut services, &mut cat_fill, name, slug, *cat);
            }
        }
        debug_assert_eq!(services.len(), canonical_services);
        // Post-canonical newcomers: random categories.
        let mut idx_extra = 1000;
        while services.len() < total_services {
            let cat = ALL_CATEGORIES[rng.gen_range(0..14)];
            let name = names::service_name(cat, idx_extra);
            idx_extra += 1;
            let slug = names::slugify(&name);
            if services.iter().any(|s| s.slug == slug) {
                continue;
            }
            push_service(&mut services, &mut cat_fill, name, slug, cat);
        }
        // Creation weeks: anchors+famous at week 0; synthetics spread so
        // the weekly service count follows the growth curve. The first
        // `count(0)` services exist at week 0.
        let order: Vec<usize> = {
            let fixed = seen.len() + FAMOUS.len();
            // Canonical services must all predate the canonical week, so
            // shuffle them among themselves; post-canonical extras follow.
            let mut canonical_rest: Vec<usize> = (fixed..canonical_services).collect();
            canonical_rest.shuffle(&mut rng);
            let mut extras: Vec<usize> = (canonical_services..services.len()).collect();
            extras.shuffle(&mut rng);
            (0..fixed).chain(canonical_rest).chain(extras).collect()
        };
        for (pos, &svc_idx) in order.iter().enumerate() {
            let mut w = 0u32;
            while (curve(canonical_services as f64, GROWTH.services, w as f64).round() as usize)
                < pos + 1
            {
                w += 1;
                if w >= final_week {
                    break;
                }
            }
            services[svc_idx].created_week = w;
        }

        // ---- 2. Triggers and actions per service ----------------------
        let trig_total =
            curve(SCALE.triggers as f64, GROWTH.triggers, final_week as f64).round() as usize;
        let act_total =
            curve(SCALE.actions as f64, GROWTH.actions, final_week as f64).round() as usize;
        // Anchor services get their real slots; everyone gets ≥1 of each.
        let anchor_slots = |slug: &str, as_trigger: bool| -> Vec<String> {
            let list = if as_trigger {
                model::TOP_IOT_TRIGGER_SERVICES
            } else {
                model::TOP_IOT_ACTION_SERVICES
            };
            list.iter()
                .find(|a| a.slug == slug)
                .map(|a| a.top_slots.iter().map(|(s, _)| s.to_string()).collect())
                .unwrap_or_default()
        };
        for s in services.iter_mut() {
            s.triggers = anchor_slots(&s.slug, true);
            s.actions = anchor_slots(&s.slug, false);
            if s.triggers.is_empty() {
                s.triggers.push(names::trigger_slug(s.category, 0));
            }
            if s.actions.is_empty() {
                s.actions.push(names::action_slug(s.category, 0));
            }
        }
        // Distribute the remainder with heavier weight on early services.
        let mut distribute = |is_trigger: bool, total: usize, rng: &mut StdRng| {
            let have: usize = services
                .iter()
                .map(|s| {
                    if is_trigger {
                        s.triggers.len()
                    } else {
                        s.actions.len()
                    }
                })
                .sum();
            let n = services.len();
            let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 2.0).powf(0.7)).collect();
            let wsum: f64 = weights.iter().sum();
            for _ in have..total {
                let mut u = rng.gen::<f64>() * wsum;
                let mut pick = 0;
                for (i, w) in weights.iter().enumerate() {
                    u -= w;
                    if u <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                let s = &mut services[pick];
                if is_trigger {
                    let slug = names::trigger_slug(s.category, s.triggers.len());
                    s.triggers.push(slug);
                } else {
                    let slug = names::action_slug(s.category, s.actions.len());
                    s.actions.push(slug);
                }
            }
        };
        distribute(true, trig_total, &mut rng);
        distribute(false, act_total, &mut rng);

        // ---- 3 & 4. Applets --------------------------------------------
        let n_canonical = (SCALE.applets as f64 * config.scale).round() as usize;
        let n_total =
            curve(n_canonical as f64, GROWTH.add_count, final_week as f64).round() as usize;
        let total_adds = (SCALE.total_add_count as f64 * config.scale).round() as u64;

        let slug_index: std::collections::HashMap<String, usize> = services
            .iter()
            .enumerate()
            .map(|(i, s)| (s.slug.clone(), i))
            .collect();

        // Anchor applets (scaled).
        let mut applets: Vec<AppletRecord> = Vec::with_capacity(n_total);
        let mut anchor_adds_total = 0u64;
        let mut cell_spent = [[0u64; 14]; 14];
        for (i, aa) in ANCHOR_APPLETS.iter().enumerate() {
            let adds = ((aa.adds_k * 1000) as f64 * config.scale).round() as u64;
            anchor_adds_total += adds;
            let t_cat = services[slug_index[aa.trigger_service]].category;
            let a_cat = services[slug_index[aa.action_service]].category;
            cell_spent[t_cat.index() - 1][a_cat.index() - 1] += adds;
            applets.push(AppletRecord {
                id: 0, // assigned later
                name: format!("If {} then {}", aa.trigger, aa.action),
                trigger_service: aa.trigger_service.into(),
                trigger: aa.trigger.into(),
                action_service: aa.action_service.into(),
                action: aa.action.into(),
                author: Author::User(0), // reassigned later
                add_count: adds,
                created_week: 0,
                steps: Vec::new(),
            });
            let _ = i;
        }

        // Synthetic add-count sequence hitting the global tail targets.
        let n_synth = n_canonical.saturating_sub(applets.len());
        let synth_total = total_adds.saturating_sub(anchor_adds_total);
        // Global head/mid shares, net of the anchors' contribution,
        // re-expressed as fractions of the synthetic budget.
        let head_global =
            (TAILS.applet_top1_share * total_adds as f64 - anchor_adds_total as f64).max(0.0);
        let mid_global = (TAILS.applet_top10_share - TAILS.applet_top1_share) * total_adds as f64;
        // The anchors already occupy top-of-ranking slots, so the
        // synthetic head/mid segments shrink accordingly: together with
        // the anchors they must fill exactly the top 1% / 10% of the
        // canonical population.
        let n_anchors = applets.len();
        let k1 = (n_canonical / 100).saturating_sub(n_anchors).max(1);
        let k2 = (n_canonical / 10).saturating_sub(n_anchors).max(k1);
        let seq = if synth_total > 0 {
            heavy_tail_sequence_with_knees(
                n_synth,
                synth_total,
                head_global / synth_total as f64,
                mid_global / synth_total as f64,
                k1,
                k2,
            )
        } else {
            vec![0; n_synth]
        };

        // Budgeted cell assignment.
        let j = interaction_matrix();
        // The synthetic budget matrix: re-fit J (as the structural seed) to
        // the *residual* marginals — Table 1's row/column targets minus what
        // the anchor applets already consumed. Subtracting per cell and
        // clamping would leak anchor overshoot into neighbouring cells and
        // distort the measured marginals; marginal-level IPF cannot.
        let mut budget = j;
        let t = total_adds as f64;
        let res_rows: Vec<f64> = TABLE1
            .iter()
            .enumerate()
            .map(|(r, row)| {
                let spent: u64 = cell_spent[r].iter().sum();
                (row.trigger_ac_pct / 100.0 * t - spent as f64).max(0.0)
            })
            .collect();
        let res_cols: Vec<f64> = TABLE1
            .iter()
            .enumerate()
            .map(|(c, col)| {
                let spent: u64 = (0..14).map(|r| cell_spent[r][c]).sum();
                (col.action_ac_pct / 100.0 * t - spent as f64).max(0.0)
            })
            .collect();
        for _ in 0..200 {
            for r in 0..14 {
                let s: f64 = budget[r].iter().sum();
                if s > 0.0 {
                    for c in 0..14 {
                        budget[r][c] *= res_rows[r] / s;
                    }
                }
            }
            for c in 0..14 {
                let s: f64 = (0..14).map(|r| budget[r][c]).sum();
                if s > 0.0 {
                    for row in budget.iter_mut() {
                        row[c] *= res_cols[c] / s;
                    }
                }
            }
        }
        // Per-category service pools for synthetic assignment; anchors are
        // excluded on their anchored side so Table 3 stays exact.
        let anchored_trigger: std::collections::HashSet<&str> = model::TOP_IOT_TRIGGER_SERVICES
            .iter()
            .map(|a| a.slug)
            .collect();
        let anchored_action: std::collections::HashSet<&str> = model::TOP_IOT_ACTION_SERVICES
            .iter()
            .map(|a| a.slug)
            .collect();
        // Two pool tiers per category: week-0 services (which host the
        // popular applets — a popular applet must be old, so its services
        // must predate the crawl) and all canonical-era services.
        let mut trig_pool0: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 14];
        let mut act_pool0: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 14];
        let mut trig_pool: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 14];
        let mut act_pool: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 14];
        for (i, s) in services.iter().enumerate() {
            // Post-canonical services host only post-canonical applets.
            if s.created_week > GROWTH.week_canonical as u32 {
                continue;
            }
            let ci = s.category.index() - 1;
            if !anchored_trigger.contains(s.slug.as_str()) {
                let rank = trig_pool[ci].len() + 1;
                let w = 1.0 / (rank as f64).powf(0.9);
                trig_pool[ci].push((i, w));
                if s.created_week == 0 {
                    trig_pool0[ci].push((i, w));
                }
            }
            if !anchored_action.contains(s.slug.as_str()) {
                let rank = act_pool[ci].len() + 1;
                let w = 1.0 / (rank as f64).powf(0.9);
                act_pool[ci].push((i, w));
                if s.created_week == 0 {
                    act_pool0[ci].push((i, w));
                }
            }
        }
        let pick_weighted = |pool: &[(usize, f64)], rng: &mut StdRng| -> Option<usize> {
            if pool.is_empty() {
                return None;
            }
            let wsum: f64 = pool.iter().map(|(_, w)| w).sum();
            let mut u = rng.gen::<f64>() * wsum;
            for (i, w) in pool {
                u -= w;
                if u <= 0.0 {
                    return Some(*i);
                }
            }
            pool.last().map(|(i, _)| *i)
        };

        // Applets heavier than this are placed greedily into the cell with
        // the most remaining budget (bin-packing style), so no single mega
        // applet can blow a category's share; light applets sample a cell
        // proportional to remaining budget (falling back to the raw matrix
        // once budgets are exhausted by rounding).
        let greedy_threshold = 0.0;
        for (k, &adds) in seq.iter().enumerate() {
            let total_budget: f64 = budget.iter().flatten().sum();
            let (mut tr, mut ac) = (6usize, 8usize); // cat 7 → cat 9 default
            let _ = greedy_threshold;
            if total_budget > 1.0 {
                // Best-fit: the fullest cell that can absorb the whole
                // item; fall back to the fullest cell overall (bounded
                // overshoot ≤ one item).
                let mut best_fit = f64::MIN;
                let mut best_any = f64::MIN;
                let mut any = (6usize, 8usize);
                let mut fits = false;
                for r in 0..14 {
                    for c in 0..14 {
                        let b = budget[r][c];
                        if b > best_any {
                            best_any = b;
                            any = (r, c);
                        }
                        if b >= adds as f64 && b > best_fit {
                            best_fit = b;
                            tr = r;
                            ac = c;
                            fits = true;
                        }
                    }
                }
                if !fits {
                    tr = any.0;
                    ac = any.1;
                }
            } else {
                let mut u = rng.gen::<f64>()
                    * if total_budget > 1.0 {
                        total_budget
                    } else {
                        1.0
                    };
                'outer: for r in 0..14 {
                    for c in 0..14 {
                        let w = if total_budget > 1.0 {
                            budget[r][c]
                        } else {
                            j[r][c]
                        };
                        u -= w;
                        if u <= 0.0 {
                            tr = r;
                            ac = c;
                            break 'outer;
                        }
                    }
                }
            }
            budget[tr][ac] = (budget[tr][ac] - adds as f64).max(0.0);
            // The popular 10% live on services that already existed at
            // week 0, keeping the longitudinal add-count growth clean.
            let hot = k < seq.len() / 10;
            let (tp, ap) = if hot && !trig_pool0[tr].is_empty() && !act_pool0[ac].is_empty() {
                (&trig_pool0[tr], &act_pool0[ac])
            } else {
                (&trig_pool[tr], &act_pool[ac])
            };
            let ts = pick_weighted(tp, &mut rng).unwrap_or(0);
            let as_ = pick_weighted(ap, &mut rng).unwrap_or(0);
            let t_slug_count = services[ts].triggers.len();
            let a_slug_count = services[as_].actions.len();
            let t_pick = (rng.gen::<f64>().powi(2) * t_slug_count as f64) as usize;
            let a_pick = (rng.gen::<f64>().powi(2) * a_slug_count as f64) as usize;
            let trigger = services[ts].triggers[t_pick.min(t_slug_count - 1)].clone();
            let action = services[as_].actions[a_pick.min(a_slug_count - 1)].clone();
            applets.push(AppletRecord {
                id: 0,
                name: format!("If {} then {}", trigger, action),
                trigger_service: services[ts].slug.clone(),
                trigger,
                action_service: services[as_].slug.clone(),
                action,
                author: Author::User(0),
                add_count: adds,
                created_week: 0,
                steps: Vec::new(),
            });
            let _ = k;
        }

        // Post-canonical newcomers: small applets created after week 18.
        while applets.len() < n_total {
            let tr = rng.gen_range(0..14);
            let ac = loop {
                let c = rng.gen_range(0..14);
                if c != 11 {
                    break c; // cat 12 has no actions
                }
            };
            let ts = pick_weighted(&trig_pool[tr], &mut rng).unwrap_or(0);
            let as_ = pick_weighted(&act_pool[ac], &mut rng).unwrap_or(0);
            let trigger = services[ts].triggers[0].clone();
            let action = services[as_].actions[0].clone();
            applets.push(AppletRecord {
                id: 0,
                name: format!("If {} then {}", trigger, action),
                trigger_service: services[ts].slug.clone(),
                trigger,
                action_service: services[as_].slug.clone(),
                action,
                author: Author::User(0),
                add_count: 1 + rng.gen_range(0..20),
                created_week: rng.gen_range(GROWTH.week_canonical as u32 + 1..=24),
                steps: Vec::new(),
            });
        }

        // ---- 5. Authors -------------------------------------------------
        // Sort canonical applets by add count (descending) for band math.
        let mut by_adds: Vec<usize> = (0..n_canonical.min(applets.len())).collect();
        by_adds.sort_by(|&a, &b| applets[b].add_count.cmp(&applets[a].add_count));
        // Service-made band: 2% of applets holding ≈14% of adds. Slide a
        // contiguous band down the ranking until its share fits.
        let svc_count = ((1.0 - TAILS.user_made_applets) * n_canonical as f64) as usize;
        let svc_target = (1.0 - TAILS.user_made_adds) * total_adds as f64;
        let mut start = 0usize;
        let mut band_sum: u64 = by_adds
            .iter()
            .take(svc_count)
            .map(|&i| applets[i].add_count)
            .sum();
        while start + svc_count < by_adds.len() && band_sum as f64 > svc_target {
            band_sum -= applets[by_adds[start]].add_count;
            band_sum += applets[by_adds[start + svc_count]].add_count;
            start += 1;
        }
        for &i in by_adds.iter().skip(start).take(svc_count) {
            applets[i].author = Author::Service(applets[i].trigger_service.clone());
        }
        // User quotas: heavy-tailed so top 1% of users hold 18% and top
        // 10% hold 49% of user-made applets.
        let user_made: Vec<usize> = (0..applets.len())
            .filter(|&i| applets[i].author.is_user())
            .collect();
        let n_users = ((SCALE.user_channels as f64) * config.scale).round() as usize;
        let n_users = n_users.max(1).min(user_made.len().max(1));
        let quotas = heavy_tail_sequence(
            n_users,
            user_made.len() as u64,
            TAILS.user_top1_share,
            TAILS.user_top10_share - TAILS.user_top1_share,
        );
        let mut shuffled = user_made.clone();
        shuffled.shuffle(&mut rng);
        let mut cursor = 0usize;
        for (uid, &q) in quotas.iter().enumerate() {
            for _ in 0..q {
                if cursor >= shuffled.len() {
                    break;
                }
                applets[shuffled[cursor]].author = Author::User(uid as u32 + 1);
                cursor += 1;
            }
        }
        // Leftovers from rounding go to the last user.
        while cursor < shuffled.len() {
            applets[shuffled[cursor]].author = Author::User(n_users as u32);
            cursor += 1;
        }

        // ---- 6. Creation weeks and ids ----------------------------------
        // Older applets are generally more popular: creation order follows
        // the add-count order with local shuffling for realism.
        let mut creation_order: Vec<usize> = by_adds.clone();
        let block = (creation_order.len() / 20).max(1);
        for chunk in creation_order.chunks_mut(block) {
            chunk.shuffle(&mut rng);
        }
        for (pos, &i) in creation_order.iter().enumerate() {
            let mut w = 0u32;
            while (curve(n_canonical as f64, GROWTH.add_count, w as f64).round() as usize) < pos + 1
            {
                w += 1;
                if w > GROWTH.week_canonical as u32 {
                    break;
                }
            }
            // An applet cannot precede its services.
            let ts_week = services[slug_index[&applets[i].trigger_service]].created_week;
            let as_week = services[slug_index[&applets[i].action_service]].created_week;
            applets[i].created_week = w.max(ts_week).max(as_week);
        }
        // Unique six-digit-style page ids.
        let id_span = ((n_total as f64) / 0.375).ceil() as u32;
        let mut ids: Vec<u32> = rand::seq::index::sample(&mut rng, id_span as usize, n_total)
            .into_iter()
            .map(|v| 100_000 + v as u32)
            .collect();
        ids.sort_unstable();
        ids.shuffle(&mut rng);
        for (a, id) in applets.iter_mut().zip(ids) {
            a.id = id;
        }

        // ---- 7. Multi-step DAGs (opt-in) --------------------------------
        // Assign Zapier-style execution DAGs to a share of applets. Drawn
        // on a derived stream and guarded so the default share of 0.0
        // performs zero extra draws and emits a byte-identical ecosystem.
        if config.multi_step_share > 0.0 {
            let share = config.multi_step_share.clamp(0.0, 1.0);
            let mut ms_rng = StdRng::seed_from_u64(derive_seed(config.seed, MULTI_STEP_STREAM));
            for a in applets.iter_mut() {
                if ms_rng.gen::<f64>() < share {
                    a.steps = multi_step_shape(ms_rng.gen::<f64>(), &a.action);
                }
            }
        }

        Ecosystem {
            config,
            services,
            applets,
            final_week,
        }
    }

    /// The weekly snapshot view: entities created by `week`, with add
    /// counts scaled back along the growth curve.
    pub fn snapshot(&self, week: u32) -> Snapshot {
        let week = week.min(self.final_week);
        let mut services: Vec<ServiceRecord> = self
            .services
            .iter()
            .filter(|s| s.created_week <= week)
            .cloned()
            .collect();
        // Triggers/actions accumulate over time: expose per-service slot
        // prefixes whose global totals follow the published growth curves.
        // Apportioning globally (largest remainder, floor 1, cap at the
        // final count) avoids the per-service ceil bias a local rule has.
        let trim = |services: &mut Vec<ServiceRecord>,
                    target: usize,
                    pick: fn(&mut ServiceRecord) -> &mut Vec<String>| {
            let lens: Vec<usize> = services.iter_mut().map(|s| pick(s).len()).collect();
            let capacity: usize = lens.iter().sum();
            let target = target.min(capacity).max(services.len());
            // Start everyone at 1, then deal remaining slots round-robin in
            // proportion to capacity (deterministic largest-remainder).
            let spare_total = target - services.len();
            let spare_cap: usize = lens.iter().map(|l| l - 1).sum();
            let mut keeps: Vec<usize> = lens
                .iter()
                .map(|l| {
                    // Multiply before dividing to keep integer precision;
                    // spare_cap == 0 means nobody has slack to keep.
                    1 + ((l - 1) * spare_total).checked_div(spare_cap).unwrap_or(0)
                })
                .collect();
            let mut short = target as i64 - keeps.iter().sum::<usize>() as i64;
            let mut i = 0;
            while short > 0 && i < keeps.len() * 2 {
                let idx = i % keeps.len();
                if keeps[idx] < lens[idx] {
                    keeps[idx] += 1;
                    short -= 1;
                }
                i += 1;
            }
            for (s, keep) in services.iter_mut().zip(keeps) {
                let v = pick(s);
                v.truncate(keep.max(1));
            }
        };
        let t_target = curve(SCALE.triggers as f64, GROWTH.triggers, week as f64).round() as usize;
        let a_target = curve(SCALE.actions as f64, GROWTH.actions, week as f64).round() as usize;
        trim(&mut services, t_target, |s| &mut s.triggers);
        trim(&mut services, a_target, |s| &mut s.actions);
        let factor = curve(1.0, GROWTH.add_count, week as f64);
        let applets: Vec<AppletRecord> = self
            .applets
            .iter()
            .filter(|a| a.created_week <= week)
            .map(|a| {
                let mut a = a.clone();
                a.add_count = ((a.add_count as f64 * factor).round() as u64).max(1);
                a
            })
            .collect();
        Snapshot {
            week,
            date: model::week_date_label(week as usize),
            services,
            applets,
        }
    }

    /// The canonical snapshot (3/25/2017, week 18).
    pub fn canonical_snapshot(&self) -> Snapshot {
        self.snapshot(GROWTH.week_canonical as u32)
    }

    /// All weekly snapshots of the crawl.
    pub fn all_snapshots(&self) -> Vec<Snapshot> {
        (0..=self.final_week).map(|w| self.snapshot(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ecosystem {
        Ecosystem::generate(GeneratorConfig::test_scale(7))
    }

    #[test]
    fn multi_step_share_assigns_valid_dags_without_perturbing_base() {
        use tap_protocol::validate_steps;
        let base = small();
        let mut cfg = GeneratorConfig::test_scale(7);
        cfg.multi_step_share = 0.25;
        let multi = Ecosystem::generate(cfg);
        // The post-pass only fills `steps`: everything else is identical.
        assert_eq!(base.applets.len(), multi.applets.len());
        for (b, m) in base.applets.iter().zip(&multi.applets) {
            assert!(b.steps.is_empty());
            assert_eq!(b.id, m.id);
            assert_eq!(b.name, m.name);
            assert_eq!(b.add_count, m.add_count);
            validate_steps(&m.steps).expect("generated DAGs validate");
        }
        let with_steps = multi.applets.iter().filter(|a| !a.steps.is_empty()).count();
        let share = with_steps as f64 / multi.applets.len() as f64;
        assert!(
            (share - 0.25).abs() < 0.03,
            "multi-step share {share:.3} vs 0.25"
        );
        // Snapshots carry the DAGs through.
        let snap = multi.canonical_snapshot();
        assert!(snap.applets.iter().any(|a| !a.steps.is_empty()));
    }

    #[test]
    fn interaction_matrix_matches_marginals() {
        let m = interaction_matrix();
        for (i, row) in TABLE1.iter().enumerate() {
            let rsum: f64 = m[i].iter().sum();
            assert!(
                (rsum - row.trigger_ac_pct / 100.0).abs() < 1e-6,
                "row {i}: {rsum} vs {}",
                row.trigger_ac_pct
            );
        }
        for (jx, row) in TABLE1.iter().enumerate() {
            let csum: f64 = (0..14).map(|i| m[i][jx]).sum();
            assert!(
                (csum - row.action_ac_pct / 100.0).abs() < 1e-6,
                "col {jx}: {csum} vs {}",
                row.action_ac_pct
            );
        }
        // IoT hotspot structure survives the fitting.
        assert!(
            m[0][0] > m[0][13],
            "smart-home→smart-home beats smart-home→other"
        );
    }

    #[test]
    fn heavy_tail_sequence_hits_total_and_shares() {
        let n = 10_000;
        let total = 1_000_000;
        let seq = heavy_tail_sequence(n, total, 0.841, 0.135);
        assert_eq!(seq.len(), n);
        assert_eq!(seq.iter().sum::<u64>(), total);
        assert!(seq.windows(2).all(|w| w[0] >= w[1]), "descending");
        let top1: u64 = seq.iter().take(n / 100).sum();
        let top10: u64 = seq.iter().take(n / 10).sum();
        assert!(
            (top1 as f64 / total as f64 - 0.841).abs() < 0.02,
            "top1 {top1}"
        );
        assert!(
            (top10 as f64 / total as f64 - 0.976).abs() < 0.02,
            "top10 {top10}"
        );
        assert!(*seq.last().unwrap() >= 1);
    }

    #[test]
    fn canonical_snapshot_scale_matches_paper() {
        let eco = small();
        let snap = eco.canonical_snapshot();
        assert_eq!(snap.services.len(), 408);
        let n_target = (320_000.0 * 0.02) as usize;
        assert!(
            (snap.applets.len() as i64 - n_target as i64).abs() < 50,
            "applets {}",
            snap.applets.len()
        );
        let adds = snap.total_add_count() as f64;
        let adds_target = 23_000_000.0 * 0.02;
        assert!(
            (adds / adds_target - 1.0).abs() < 0.03,
            "adds {adds} vs {adds_target}"
        );
        let trig = snap.trigger_count() as f64;
        assert!((trig / 1490.0 - 1.0).abs() < 0.08, "triggers {trig}");
        let act = snap.action_count() as f64;
        assert!((act / 957.0 - 1.0).abs() < 0.08, "actions {act}");
    }

    #[test]
    fn applet_ids_are_unique_and_six_digit_style() {
        let eco = small();
        let mut ids: Vec<u32> = eco.applets.iter().map(|a| a.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "ids unique");
        assert!(ids.iter().all(|&i| i >= 100_000));
    }

    #[test]
    fn anchor_services_hit_table3_add_counts() {
        let eco = small();
        let snap = eco.canonical_snapshot();
        for anchor in model::TOP_IOT_TRIGGER_SERVICES {
            let got: u64 = snap
                .applets
                .iter()
                .filter(|a| a.trigger_service == anchor.slug)
                .map(|a| a.add_count)
                .sum();
            let want = anchor.add_count as f64 * 0.02;
            assert!(
                (got as f64 / want - 1.0).abs() < 0.05,
                "{}: {got} vs {want}",
                anchor.slug
            );
        }
        for anchor in model::TOP_IOT_ACTION_SERVICES {
            let got: u64 = snap
                .applets
                .iter()
                .filter(|a| a.action_service == anchor.slug)
                .map(|a| a.add_count)
                .sum();
            let want = anchor.add_count as f64 * 0.02;
            assert!(
                (got as f64 / want - 1.0).abs() < 0.05,
                "{}: {got} vs {want}",
                anchor.slug
            );
        }
    }

    #[test]
    fn growth_between_week0_and_week19_matches_paper() {
        let eco = small();
        let a = eco.snapshot(GROWTH.week_start as u32);
        let b = eco.snapshot(GROWTH.week_end as u32);
        let d = crate::snapshot::diff(&a, &b);
        assert!(
            (d.services_growth - 0.11).abs() < 0.03,
            "services {}",
            d.services_growth
        );
        assert!(
            (d.triggers_growth - 0.31).abs() < 0.08,
            "triggers {}",
            d.triggers_growth
        );
        assert!(
            (d.actions_growth - 0.27).abs() < 0.08,
            "actions {}",
            d.actions_growth
        );
        assert!(
            (d.add_count_growth - 0.19).abs() < 0.06,
            "adds {}",
            d.add_count_growth
        );
    }

    #[test]
    fn user_made_share_matches() {
        let eco = small();
        let snap = eco.canonical_snapshot();
        let user_applets = snap.applets.iter().filter(|a| a.author.is_user()).count() as f64;
        let share = user_applets / snap.applets.len() as f64;
        assert!((share - 0.98).abs() < 0.01, "user applet share {share}");
        let user_adds: u64 = snap
            .applets
            .iter()
            .filter(|a| a.author.is_user())
            .map(|a| a.add_count)
            .sum();
        let adds_share = user_adds as f64 / snap.total_add_count() as f64;
        assert!(
            (adds_share - 0.86).abs() < 0.05,
            "user adds share {adds_share}"
        );
    }

    #[test]
    fn determinism_same_seed_same_ecosystem() {
        let a = Ecosystem::generate(GeneratorConfig::test_scale(3));
        let b = Ecosystem::generate(GeneratorConfig::test_scale(3));
        assert_eq!(a.applets, b.applets);
        assert_eq!(a.services, b.services);
        let c = Ecosystem::generate(GeneratorConfig::test_scale(4));
        assert_ne!(a.applets, c.applets);
    }

    #[test]
    fn snapshots_are_monotone_in_scale() {
        let eco = small();
        let mut prev = 0usize;
        for w in [0u32, 5, 10, 18, 24] {
            let s = eco.snapshot(w);
            assert!(s.applets.len() >= prev, "week {w}");
            prev = s.applets.len();
        }
    }

    #[test]
    #[should_panic(expected = "scale too small")]
    fn tiny_scale_is_rejected() {
        Ecosystem::generate(GeneratorConfig {
            seed: 1,
            scale: 0.001,
            multi_step_share: 0.0,
        });
    }
}
