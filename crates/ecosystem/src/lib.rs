//! # ecosystem — a calibrated model of the IFTTT ecosystem + its crawler
//!
//! The paper's §3 dataset is a six-month, 25-snapshot crawl of ifttt.com.
//! That site (as of 2017) no longer exists, so this crate substitutes a
//! **statistical ecosystem model** calibrated to every aggregate the paper
//! publishes ([`model`], [`taxonomy`]), a **generator** that materializes
//! it ([`generator`]), a **simulated web frontend** serving the same pages
//! the authors scraped ([`frontend`]), and a **crawler** that enumerates
//! applet ids and parses pages exactly the way §3.1 describes
//! ([`crawler`]). Analyses operate on [`snapshot::Snapshot`]s, which can
//! come from either the crawler (full pipeline) or the generator directly
//! (fast path) — a dedicated test asserts the two agree.

pub mod archive;
pub mod crawler;
pub mod frontend;
pub mod generator;
pub mod model;
pub mod names;
pub mod population;
pub mod snapshot;
pub mod taxonomy;

pub use generator::{Ecosystem, GeneratorConfig};
pub use population::{InstalledApplet, PopulationSampler, UserProfile};
pub use snapshot::{AppletRecord, Author, ServiceRecord, Snapshot, SnapshotDiff};
pub use taxonomy::{Category, ALL_CATEGORIES, TABLE1};
