//! On-disk snapshot archive.
//!
//! The paper accumulated "about 200 GB" of raw weekly crawls; analyses ran
//! over the archived snapshots, not the live site. This module is that
//! archive layer: one JSON file per weekly [`Snapshot`], named
//! `week_<NN>_<date>.json`, with load/save/list round trips.

use crate::snapshot::Snapshot;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File name for a snapshot.
fn file_name(s: &Snapshot) -> String {
    format!("week_{:02}_{}.json", s.week, s.date)
}

/// Save one snapshot into `dir` (created if missing). Returns the path.
pub fn save_snapshot(dir: &Path, s: &Snapshot) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name(s));
    fs::write(&path, s.to_json())?;
    Ok(path)
}

/// Save a whole crawl series.
pub fn save_series(dir: &Path, snapshots: &[Snapshot]) -> io::Result<Vec<PathBuf>> {
    snapshots.iter().map(|s| save_snapshot(dir, s)).collect()
}

/// Load every archived snapshot in `dir`, sorted by week.
pub fn load_series(dir: &Path) -> io::Result<Vec<Snapshot>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        let snap = Snapshot::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        out.push(snap);
    }
    out.sort_by_key(|s| s.week);
    Ok(out)
}

/// List archived weeks without parsing the bodies.
pub fn list_weeks(dir: &Path) -> io::Result<Vec<u32>> {
    let mut weeks = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("week_") {
            if let Some(w) = rest.get(..2).and_then(|d| d.parse().ok()) {
                weeks.push(w);
            }
        }
    }
    weeks.sort_unstable();
    Ok(weeks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Ecosystem, GeneratorConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ifttt_lab_archive_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_snapshots() {
        let dir = tmpdir("roundtrip");
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(3));
        let snaps: Vec<Snapshot> = [0u32, 9, 18].iter().map(|w| eco.snapshot(*w)).collect();
        let paths = save_series(&dir, &snaps).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths[0]
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("week_00"));
        let loaded = load_series(&dir).unwrap();
        assert_eq!(loaded, snaps);
        assert_eq!(list_weeks(&dir).unwrap(), vec![0, 9, 18]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_json_files_are_ignored_and_garbage_errors() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("README.txt"), "not a snapshot").unwrap();
        assert!(load_series(&dir).unwrap().is_empty());
        fs::write(dir.join("week_01_bad.json"), "{broken").unwrap();
        assert!(load_series(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_errors() {
        let dir = tmpdir("missing");
        assert!(load_series(&dir).is_err());
    }
}
