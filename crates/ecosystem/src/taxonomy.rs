//! The 14-category service taxonomy of Table 1.
//!
//! The paper classifies each of the ~408 services manually into one of 13
//! semantic categories plus "Other"; categories 1–4 are IoT-related. The
//! calibration constants here are the published Table 1 percentages, used
//! both to generate the synthetic ecosystem and as the reference values in
//! EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Service categories, numbered as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Category {
    /// 1. Smart-home devices (light, thermostat, camera, Amazon Echo, …).
    SmartHomeDevice = 1,
    /// 2. Smart-home hub / integration solution (SmartThings, …).
    SmartHomeHub = 2,
    /// 3. Wearables (smartwatch, band).
    Wearable = 3,
    /// 4. Connected cars (BMW Labs, Automatic).
    ConnectedCar = 4,
    /// 5. Smartphones (battery, NFC, …).
    Smartphone = 5,
    /// 6. Cloud storage (Google Drive, Dropbox).
    CloudStorage = 6,
    /// 7. Online service & content providers (weather, NYTimes).
    OnlineService = 7,
    /// 8. RSS feeds, online recommendation.
    RssFeed = 8,
    /// 9. Personal data & schedule managers (notes, reminders).
    PersonalData = 9,
    /// 10. Social networking, blogging, photo/video sharing.
    SocialNetwork = 10,
    /// 11. SMS, instant messaging, team collaboration, VoIP.
    Messaging = 11,
    /// 12. Time and location.
    TimeLocation = 12,
    /// 13. Email.
    Email = 13,
    /// 14. Other.
    Other = 14,
}

/// All categories in Table 1 order.
pub const ALL_CATEGORIES: [Category; 14] = [
    Category::SmartHomeDevice,
    Category::SmartHomeHub,
    Category::Wearable,
    Category::ConnectedCar,
    Category::Smartphone,
    Category::CloudStorage,
    Category::OnlineService,
    Category::RssFeed,
    Category::PersonalData,
    Category::SocialNetwork,
    Category::Messaging,
    Category::TimeLocation,
    Category::Email,
    Category::Other,
];

impl Category {
    /// 1-based Table 1 row number.
    pub fn index(self) -> usize {
        self as usize
    }

    /// From a 1-based row number.
    pub fn from_index(i: usize) -> Option<Category> {
        ALL_CATEGORIES.get(i.checked_sub(1)?).copied()
    }

    /// Categories 1–4 are IoT-related (§3.2).
    pub fn is_iot(self) -> bool {
        matches!(
            self,
            Category::SmartHomeDevice
                | Category::SmartHomeHub
                | Category::Wearable
                | Category::ConnectedCar
        )
    }

    /// Short human-readable label (used in rendered tables).
    pub fn label(self) -> &'static str {
        match self {
            Category::SmartHomeDevice => "Smarthome devices",
            Category::SmartHomeHub => "Smarthome hub/integration",
            Category::Wearable => "Wearables",
            Category::ConnectedCar => "Connected cars",
            Category::Smartphone => "Smartphones",
            Category::CloudStorage => "Cloud storage",
            Category::OnlineService => "Online service/content",
            Category::RssFeed => "RSS feeds, recommendation",
            Category::PersonalData => "Personal data & schedule",
            Category::SocialNetwork => "Social networking",
            Category::Messaging => "SMS, IM, collaboration",
            Category::TimeLocation => "Time and location",
            Category::Email => "Email",
            Category::Other => "Other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}. {}", self.index(), self.label())
    }
}

/// One Table 1 row: percentages of services, trigger add count, and action
/// add count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    pub category: Category,
    pub services_pct: f64,
    pub trigger_ac_pct: f64,
    pub action_ac_pct: f64,
}

/// The published Table 1 (the generator's calibration target).
pub const TABLE1: [Table1Row; 14] = [
    Table1Row {
        category: Category::SmartHomeDevice,
        services_pct: 37.7,
        trigger_ac_pct: 6.4,
        action_ac_pct: 7.9,
    },
    Table1Row {
        category: Category::SmartHomeHub,
        services_pct: 9.3,
        trigger_ac_pct: 0.8,
        action_ac_pct: 1.0,
    },
    Table1Row {
        category: Category::Wearable,
        services_pct: 2.7,
        trigger_ac_pct: 1.6,
        action_ac_pct: 1.0,
    },
    Table1Row {
        category: Category::ConnectedCar,
        services_pct: 2.0,
        trigger_ac_pct: 0.5,
        action_ac_pct: 0.1,
    },
    Table1Row {
        category: Category::Smartphone,
        services_pct: 3.7,
        trigger_ac_pct: 11.0,
        action_ac_pct: 13.8,
    },
    Table1Row {
        category: Category::CloudStorage,
        services_pct: 2.5,
        trigger_ac_pct: 0.6,
        action_ac_pct: 13.6,
    },
    Table1Row {
        category: Category::OnlineService,
        services_pct: 8.8,
        trigger_ac_pct: 20.0,
        action_ac_pct: 1.9,
    },
    Table1Row {
        category: Category::RssFeed,
        services_pct: 2.2,
        trigger_ac_pct: 9.8,
        action_ac_pct: 0.1,
    },
    Table1Row {
        category: Category::PersonalData,
        services_pct: 10.3,
        trigger_ac_pct: 11.2,
        action_ac_pct: 27.4,
    },
    Table1Row {
        category: Category::SocialNetwork,
        services_pct: 5.6,
        trigger_ac_pct: 17.7,
        action_ac_pct: 17.3,
    },
    Table1Row {
        category: Category::Messaging,
        services_pct: 4.7,
        trigger_ac_pct: 0.8,
        action_ac_pct: 3.1,
    },
    Table1Row {
        category: Category::TimeLocation,
        services_pct: 1.2,
        trigger_ac_pct: 14.1,
        action_ac_pct: 0.0,
    },
    Table1Row {
        category: Category::Email,
        services_pct: 1.0,
        trigger_ac_pct: 4.4,
        action_ac_pct: 12.8,
    },
    Table1Row {
        category: Category::Other,
        services_pct: 8.3,
        trigger_ac_pct: 1.3,
        action_ac_pct: 0.2,
    },
];

/// Table 1 row for one category.
pub fn table1_row(c: Category) -> &'static Table1Row {
    &TABLE1[c.index() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_percentages_sum_to_about_100() {
        let s: f64 = TABLE1.iter().map(|r| r.services_pct).sum();
        let t: f64 = TABLE1.iter().map(|r| r.trigger_ac_pct).sum();
        let a: f64 = TABLE1.iter().map(|r| r.action_ac_pct).sum();
        assert!((s - 100.0).abs() < 0.5, "services {s}");
        assert!((t - 100.0).abs() < 0.5, "triggers {t}");
        assert!((a - 100.0).abs() < 0.5, "actions {a}");
    }

    #[test]
    fn iot_is_categories_1_to_4() {
        for c in ALL_CATEGORIES {
            assert_eq!(c.is_iot(), c.index() <= 4, "{c}");
        }
    }

    #[test]
    fn iot_service_share_matches_paper_headline() {
        // "More than half (51.7%) of services are for IoT devices."
        let share: f64 = TABLE1
            .iter()
            .filter(|r| r.category.is_iot())
            .map(|r| r.services_pct)
            .sum();
        assert!((share - 51.7).abs() < 0.1, "IoT service share {share}");
    }

    #[test]
    fn index_roundtrips() {
        for c in ALL_CATEGORIES {
            assert_eq!(Category::from_index(c.index()), Some(c));
        }
        assert_eq!(Category::from_index(0), None);
        assert_eq!(Category::from_index(15), None);
    }

    #[test]
    fn rows_are_in_category_order() {
        for (i, row) in TABLE1.iter().enumerate() {
            assert_eq!(row.category.index(), i + 1);
        }
        assert_eq!(table1_row(Category::Email).trigger_ac_pct, 4.4);
    }
}
