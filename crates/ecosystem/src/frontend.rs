//! A simulated ifttt.com web frontend.
//!
//! Serves the three page families the paper's crawler scraped (§3.1): the
//! partner-service index, per-service pages, and per-applet pages reachable
//! by enumerating numeric applet ids. Pages are small HTML documents with
//! machine-readable `data-*` attributes — the crawler parses them the way a
//! scraper parses real markup, rather than receiving structs.
//!
//! A configurable `overload_rate` makes the frontend return sporadic 503s,
//! which exercises the crawler's retry logic.

use crate::generator::Ecosystem;
use crate::snapshot::{AppletRecord, Author, Snapshot};
use rand::Rng;
use simnet::prelude::*;
use std::collections::HashMap;

/// The web frontend node.
#[derive(Debug)]
pub struct IftttFrontend {
    eco: Ecosystem,
    /// The week whose state is being served.
    week: u32,
    /// Cached snapshot for `week`.
    pub view: Snapshot,
    /// Applet-page index: id → position in `view.applets`.
    by_id: HashMap<u32, usize>,
    /// Probability of answering 503 (simulated overload / rate limiting).
    pub overload_rate: f64,
    /// Pages served (for tests/metrics).
    pub pages_served: u64,
}

impl IftttFrontend {
    /// Serve `eco` as of `week`.
    pub fn new(eco: Ecosystem, week: u32) -> Self {
        let view = eco.snapshot(week);
        let by_id = view
            .applets
            .iter()
            .enumerate()
            .map(|(i, a)| (a.id, i))
            .collect();
        IftttFrontend {
            eco,
            week,
            view,
            by_id,
            overload_rate: 0.0,
            pages_served: 0,
        }
    }

    /// Advance the served week (the site moves on between crawls).
    pub fn set_week(&mut self, week: u32) {
        self.week = week;
        self.view = self.eco.snapshot(week);
        self.by_id = self
            .view
            .applets
            .iter()
            .enumerate()
            .map(|(i, a)| (a.id, i))
            .collect();
    }

    /// Currently served week.
    pub fn week(&self) -> u32 {
        self.week
    }

    /// Largest applet page id currently served (bounds the crawler's
    /// enumeration the way six digits bounded the authors').
    pub fn max_applet_id(&self) -> u32 {
        self.view
            .applets
            .iter()
            .map(|a| a.id)
            .max()
            .unwrap_or(100_000)
    }

    fn service_index_page(&self) -> String {
        let mut html = String::from("<html><body><ul class=\"services\">\n");
        for s in &self.view.services {
            html.push_str(&format!(
                "<li class=\"service\" data-slug=\"{}\" data-category=\"{}\">{}</li>\n",
                s.slug,
                s.category.index(),
                s.name
            ));
        }
        html.push_str("</ul></body></html>");
        html
    }

    fn service_page(&self, slug: &str) -> Option<String> {
        let s = self.view.services.iter().find(|s| s.slug == slug)?;
        let mut html = format!(
            "<html><body><div class=\"service\" data-slug=\"{}\" data-category=\"{}\">\n<h1>{}</h1>\n",
            s.slug,
            s.category.index(),
            s.name
        );
        for t in &s.triggers {
            html.push_str(&format!(
                "<li class=\"trigger\" data-slug=\"{t}\">{t}</li>\n"
            ));
        }
        for a in &s.actions {
            html.push_str(&format!(
                "<li class=\"action\" data-slug=\"{a}\">{a}</li>\n"
            ));
        }
        html.push_str("</div></body></html>");
        Some(html)
    }

    fn applet_page(&self, id: u32) -> Option<String> {
        let a: &AppletRecord = self.view.applets.get(*self.by_id.get(&id)?)?;
        let (author_kind, author_name) = match &a.author {
            Author::User(u) => ("user", format!("user_{u}")),
            Author::Service(s) => ("service", s.clone()),
        };
        Some(format!(
            "<html><body><div class=\"applet\" data-id=\"{id}\">\n\
             <h1>{}</h1>\n\
             <span class=\"trigger\" data-service=\"{}\" data-slug=\"{}\"></span>\n\
             <span class=\"action\" data-service=\"{}\" data-slug=\"{}\"></span>\n\
             <span class=\"author\" data-kind=\"{author_kind}\" data-name=\"{author_name}\"></span>\n\
             <span class=\"add-count\" data-value=\"{}\"></span>\n\
             </div></body></html>",
            a.name, a.trigger_service, a.trigger, a.action_service, a.action, a.add_count
        ))
    }
}

impl Node for IftttFrontend {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if self.overload_rate > 0.0 && ctx.rng().gen::<f64>() < self.overload_rate {
            return HandlerResult::Reply(Response::unavailable());
        }
        self.pages_served += 1;
        let segs = req.path_segments();
        let page = match segs.as_slice() {
            ["services"] => Some(self.service_index_page()),
            ["services", slug] => self.service_page(slug),
            ["applets", id] => id.parse().ok().and_then(|id| self.applet_page(id)),
            _ => None,
        };
        match page {
            Some(html) => HandlerResult::Reply(
                Response::ok()
                    .with_header("Content-Type", "text/html")
                    .with_body(html),
            ),
            None => HandlerResult::Reply(Response::not_found()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;
    use crate::model::GROWTH;

    fn frontend() -> IftttFrontend {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(5));
        IftttFrontend::new(eco, GROWTH.week_canonical as u32)
    }

    #[test]
    fn index_lists_all_services() {
        let f = frontend();
        let html = f.service_index_page();
        assert_eq!(html.matches("class=\"service\"").count(), 408);
        assert!(html.contains("data-slug=\"amazon_alexa\""));
    }

    #[test]
    fn service_page_lists_triggers_and_actions() {
        let f = frontend();
        let html = f.service_page("philips_hue").unwrap();
        assert!(html.contains("data-slug=\"turn_on_lights\""));
        assert!(f.service_page("nonexistent").is_none());
    }

    #[test]
    fn applet_pages_resolve_by_id() {
        let f = frontend();
        let id = f.view.applets[0].id;
        let html = f.applet_page(id).unwrap();
        assert!(html.contains(&format!("data-id=\"{id}\"")));
        assert!(html.contains("add-count"));
        assert!(f.applet_page(99).is_none());
    }

    #[test]
    fn set_week_changes_the_view() {
        let mut f = frontend();
        let later = f.view.applets.len();
        f.set_week(0);
        assert!(f.view.applets.len() < later);
        assert_eq!(f.week(), 0);
    }
}
