//! Calibration constants: every aggregate the paper publishes about its
//! dataset, collected in one place so the generator, the analyses, and
//! EXPERIMENTS.md all reference identical numbers.

use serde::{Deserialize, Serialize};

/// Scale of the canonical snapshot (3/25/2017): "the number of services,
/// triggers, actions, applets, and total add counts are 408, 1490, 957,
/// 320K, and 23M respectively" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleTargets {
    pub services: usize,
    pub triggers: usize,
    pub actions: usize,
    pub applets: usize,
    pub total_add_count: u64,
    pub user_channels: usize,
}

/// The published canonical-snapshot scale.
pub const SCALE: ScaleTargets = ScaleTargets {
    services: 408,
    triggers: 1490,
    actions: 957,
    applets: 320_000,
    total_add_count: 23_000_000,
    user_channels: 135_544,
};

/// Heavy-tail calibration: Figure 3 and the §3.2 user-contribution stats.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailTargets {
    /// Top 1% of applets hold this fraction of all adds (Figure 3).
    pub applet_top1_share: f64,
    /// Top 10% of applets hold this fraction.
    pub applet_top10_share: f64,
    /// Top 1% of users contribute this fraction of applets.
    pub user_top1_share: f64,
    /// Top 10% of users contribute this fraction.
    pub user_top10_share: f64,
    /// Fraction of applets that are user-made ("most applets (98%)").
    pub user_made_applets: f64,
    /// Fraction of add count on user-made applets ("86% of add count").
    pub user_made_adds: f64,
}

/// The published heavy-tail targets.
pub const TAILS: TailTargets = TailTargets {
    applet_top1_share: 0.841,
    applet_top10_share: 0.976,
    user_top1_share: 0.18,
    user_top10_share: 0.49,
    user_made_applets: 0.98,
    user_made_adds: 0.86,
};

/// Longitudinal growth 11/24/2016 → 4/1/2017: "the number of services,
/// triggers, actions, and applet add count increase by 11%, 31%, 27%, and
/// 19%" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthTargets {
    pub services: f64,
    pub triggers: f64,
    pub actions: f64,
    pub add_count: f64,
    /// Number of weekly snapshots ("25, one each week", Table 2).
    pub snapshots: usize,
    /// Zero-based week index of the first comparison date (11/24/2016).
    pub week_start: usize,
    /// Zero-based week index of the second comparison date (4/1/2017).
    pub week_end: usize,
    /// Zero-based week index of the canonical snapshot (3/25/2017).
    pub week_canonical: usize,
}

/// The published growth figures. Week 0 is 2016-11-19; 11/24/2016 falls in
/// week 0 (first crawl), 3/25/2017 is week 18, 4/1/2017 is week 19, and the
/// crawl continues to week 24 (late April).
pub const GROWTH: GrowthTargets = GrowthTargets {
    services: 0.11,
    triggers: 0.31,
    actions: 0.27,
    add_count: 0.19,
    snapshots: 25,
    week_start: 0,
    week_end: 19,
    week_canonical: 18,
};

/// Date label of a week index (YYYY-MM-DD, week 0 = 2016-11-19).
pub fn week_date_label(week: usize) -> String {
    // Day offset from 2016-11-19.
    let days = week as u64 * 7;
    // Calendar arithmetic over the two years involved.
    const MONTH_LEN: [(u64, &str, u64); 7] = [
        (11, "2016-11", 30),
        (12, "2016-12", 31),
        (1, "2017-01", 31),
        (2, "2017-02", 28),
        (3, "2017-03", 31),
        (4, "2017-04", 30),
        (5, "2017-05", 31),
    ];
    let mut day = 19 + days; // day-of-month within the running month
    for (_, label, len) in MONTH_LEN {
        if day <= len {
            return format!("{label}-{day:02}");
        }
        day -= len;
    }
    format!("2017-06-{day:02}")
}

/// Table 2: the comparison dataset of Ur et al. \[28\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonDataset {
    pub applets: usize,
    pub channels: usize,
    pub triggers: usize,
    pub actions: usize,
    pub adoptions: u64,
    pub contributors: usize,
    pub snapshots: usize,
    pub period: &'static str,
}

/// Ur et al.'s 2015 dataset as listed in Table 2.
pub const UR_ET_AL_2015: ComparisonDataset = ComparisonDataset {
    applets: 224_000,
    channels: 220,
    triggers: 768,
    actions: 368,
    adoptions: 12_000_000,
    contributors: 106_000,
    snapshots: 1,
    period: "Sep 2015",
};

/// This paper's dataset as listed in Table 2 (our generator's target).
pub const OURS_2017: ComparisonDataset = ComparisonDataset {
    applets: 320_000,
    channels: 408,
    triggers: 1_490,
    actions: 957,
    adoptions: 24_000_000,
    contributors: 135_000,
    snapshots: 25,
    period: "Nov 2016 to Apr 2017",
};

/// One anchor entry of Table 3: a real top IoT service with its add count.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3Anchor {
    /// Service display name.
    pub service: &'static str,
    /// Service slug.
    pub slug: &'static str,
    /// Table 1 category index.
    pub category: usize,
    /// Add count in adds (paper reports millions).
    pub add_count: u64,
    /// True for trigger services, false for action services.
    pub as_trigger: bool,
    /// The top trigger/action slugs of this service, most popular first,
    /// with their share of the service's add count in percent.
    pub top_slots: &'static [(&'static str, u32)],
}

/// Table 3's top IoT trigger services (add counts from the paper).
pub const TOP_IOT_TRIGGER_SERVICES: &[Table3Anchor] = &[
    Table3Anchor {
        service: "Amazon Alexa",
        slug: "amazon_alexa",
        category: 1,
        add_count: 1_200_000,
        as_trigger: true,
        top_slots: &[
            ("say_a_phrase", 45),
            ("todo_item_added", 25),
            ("ask_whats_on_shopping_list", 15),
            ("shopping_item_added", 10),
            ("song_played", 5),
        ],
    },
    Table3Anchor {
        service: "Fitbit",
        slug: "fitbit",
        category: 3,
        add_count: 200_000,
        as_trigger: true,
        top_slots: &[("daily_activity_summary", 60), ("new_sleep_logged", 40)],
    },
    Table3Anchor {
        service: "Nest Thermostat",
        slug: "nest_thermostat",
        category: 1,
        add_count: 100_000,
        as_trigger: true,
        top_slots: &[
            ("temperature_rises_above", 60),
            ("temperature_drops_below", 40),
        ],
    },
    Table3Anchor {
        service: "Google Assistant",
        slug: "google_assistant",
        category: 1,
        add_count: 100_000,
        as_trigger: true,
        top_slots: &[("say_a_phrase_ga", 100)],
    },
    Table3Anchor {
        service: "UP by Jawbone",
        slug: "up_by_jawbone",
        category: 3,
        add_count: 100_000,
        as_trigger: true,
        top_slots: &[("new_sleep_up", 60), ("new_workout_up", 40)],
    },
    Table3Anchor {
        service: "Nest Protect",
        slug: "nest_protect",
        category: 1,
        add_count: 70_000,
        as_trigger: true,
        top_slots: &[("smoke_alarm", 70), ("co_alarm", 30)],
    },
    Table3Anchor {
        service: "Automatic",
        slug: "automatic",
        category: 4,
        add_count: 60_000,
        as_trigger: true,
        top_slots: &[("ignition_off", 60), ("check_engine", 40)],
    },
];

/// Table 3's top IoT action services.
pub const TOP_IOT_ACTION_SERVICES: &[Table3Anchor] = &[
    Table3Anchor {
        service: "Philips Hue",
        slug: "philips_hue",
        category: 1,
        add_count: 1_200_000,
        as_trigger: false,
        top_slots: &[
            ("turn_on_lights", 45),
            ("change_color", 30),
            ("blink_lights", 15),
            ("turn_on_color_loop", 10),
        ],
    },
    Table3Anchor {
        service: "LIFX",
        slug: "lifx",
        category: 1,
        add_count: 200_000,
        as_trigger: false,
        top_slots: &[("turn_on_lifx", 60), ("breathe_lifx", 40)],
    },
    Table3Anchor {
        service: "Nest Thermostat",
        slug: "nest_thermostat",
        category: 1,
        add_count: 200_000,
        as_trigger: false,
        top_slots: &[("set_temperature", 100)],
    },
    Table3Anchor {
        service: "Harmony Hub",
        slug: "harmony_hub",
        category: 2,
        add_count: 200_000,
        as_trigger: false,
        top_slots: &[("start_activity", 70), ("end_activity", 30)],
    },
    Table3Anchor {
        service: "WeMo Smart Plug",
        slug: "wemo",
        category: 1,
        add_count: 100_000,
        as_trigger: false,
        top_slots: &[("turn_on", 70), ("turn_off", 30)],
    },
    Table3Anchor {
        service: "Android Smartwatch",
        slug: "android_smartwatch",
        category: 3,
        add_count: 100_000,
        as_trigger: false,
        top_slots: &[("send_a_notification", 100)],
    },
    Table3Anchor {
        service: "UP by Jawbone",
        slug: "up_by_jawbone",
        category: 3,
        add_count: 90_000,
        as_trigger: false,
        top_slots: &[("log_caffeine", 60), ("log_mood", 40)],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_labels_span_the_crawl() {
        assert_eq!(week_date_label(0), "2016-11-19");
        assert_eq!(week_date_label(1), "2016-11-26");
        assert_eq!(week_date_label(2), "2016-12-03");
        // Canonical snapshot: 3/25/2017.
        assert_eq!(week_date_label(GROWTH.week_canonical), "2017-03-25");
        // Growth end: 4/1/2017.
        assert_eq!(week_date_label(GROWTH.week_end), "2017-04-01");
        assert_eq!(week_date_label(24), "2017-05-06");
    }

    #[test]
    fn anchors_have_sane_shares() {
        for a in TOP_IOT_TRIGGER_SERVICES
            .iter()
            .chain(TOP_IOT_ACTION_SERVICES)
        {
            let total: u32 = a.top_slots.iter().map(|(_, s)| s).sum();
            assert_eq!(total, 100, "{} shares sum to {total}", a.service);
            assert!(
                a.category >= 1 && a.category <= 4,
                "{} must be IoT",
                a.service
            );
        }
    }

    #[test]
    fn trigger_anchor_order_matches_table3() {
        let counts: Vec<u64> = TOP_IOT_TRIGGER_SERVICES
            .iter()
            .map(|a| a.add_count)
            .collect();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
        assert_eq!(TOP_IOT_TRIGGER_SERVICES[0].slug, "amazon_alexa");
        assert_eq!(TOP_IOT_ACTION_SERVICES[0].slug, "philips_hue");
    }

    #[test]
    fn anchor_totals_fit_their_category_budgets() {
        // IoT trigger anchors must fit inside the IoT trigger add-count
        // budget (9.3% of 23M ≈ 2.14M).
        let trig_total: u64 = TOP_IOT_TRIGGER_SERVICES.iter().map(|a| a.add_count).sum();
        assert!(trig_total as f64 <= 0.093 * SCALE.total_add_count as f64 * 1.05);
        let act_total: u64 = TOP_IOT_ACTION_SERVICES.iter().map(|a| a.add_count).sum();
        assert!(act_total as f64 <= 0.10 * SCALE.total_add_count as f64 * 1.05);
    }
}
