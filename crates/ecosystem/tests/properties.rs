//! Property-based tests on the ecosystem model's structural invariants.

use ecosystem::generator::{Ecosystem, GeneratorConfig};
use ecosystem::model::GROWTH;
use ecosystem::names::slugify;
use ecosystem::snapshot::Author;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Structural invariants hold for any seed at test scale:
    /// referential integrity, id uniqueness, creation-week consistency,
    /// and monotone snapshots.
    #[test]
    fn ecosystem_structural_invariants(seed in 0u64..1000) {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(seed));
        let slugs: HashSet<&str> = eco.services.iter().map(|s| s.slug.as_str()).collect();
        prop_assert_eq!(slugs.len(), eco.services.len(), "service slugs unique");
        let mut ids: Vec<u32> = eco.applets.iter().map(|a| a.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "applet ids unique");
        for a in &eco.applets {
            prop_assert!(slugs.contains(a.trigger_service.as_str()), "{}", a.trigger_service);
            prop_assert!(slugs.contains(a.action_service.as_str()), "{}", a.action_service);
            prop_assert!(a.add_count >= 1);
            prop_assert!(a.created_week <= eco.final_week);
            prop_assert!((100_000..10_000_000).contains(&a.id));
        }
        // Snapshots grow monotonically and stay internally consistent.
        let mut prev_applets = 0;
        let mut prev_adds = 0;
        for w in [0u32, 6, 12, GROWTH.week_canonical as u32, 24] {
            let s = eco.snapshot(w);
            prop_assert!(s.applets.len() >= prev_applets);
            prop_assert!(s.total_add_count() >= prev_adds);
            prev_applets = s.applets.len();
            prev_adds = s.total_add_count();
            let snap_slugs: HashSet<&str> =
                s.services.iter().map(|sv| sv.slug.as_str()).collect();
            for a in &s.applets {
                prop_assert!(snap_slugs.contains(a.trigger_service.as_str()));
                prop_assert!(snap_slugs.contains(a.action_service.as_str()));
            }
        }
    }

    /// Author assignment is total: every applet has either a user id ≥ 1
    /// or a service author that exists.
    #[test]
    fn authors_are_wellformed(seed in 0u64..500) {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(seed));
        let slugs: HashSet<&str> = eco.services.iter().map(|s| s.slug.as_str()).collect();
        for a in &eco.applets {
            match &a.author {
                Author::User(u) => prop_assert!(*u >= 1, "user 0 is the unassigned marker"),
                Author::Service(s) => prop_assert!(slugs.contains(s.as_str())),
            }
        }
    }
}

proptest! {
    /// Slugify output is always URL-safe and idempotent.
    #[test]
    fn slugify_is_urlsafe_and_idempotent(name in "[ -~]{0,60}") {
        let s = slugify(&name);
        prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'), "{s}");
        prop_assert!(!s.ends_with('_'));
        prop_assert_eq!(slugify(&s), s.clone());
    }
}
