//! The crawler pipeline must reconstruct exactly what the generator
//! serves: crawl the simulated frontend and compare against the direct
//! snapshot view, including under sporadic 503 overload.

use ecosystem::crawler::{Crawler, CrawlerConfig};
use ecosystem::frontend::IftttFrontend;
use ecosystem::generator::{Ecosystem, GeneratorConfig};
use ecosystem::model::GROWTH;
use simnet::prelude::*;

fn crawl(seed: u64, overload: f64) -> (ecosystem::Snapshot, ecosystem::Snapshot, u64) {
    let eco = Ecosystem::generate(GeneratorConfig::test_scale(seed));
    let week = GROWTH.week_canonical as u32;
    let direct = eco.snapshot(week);
    let mut sim = Sim::new(seed);
    let max_id = {
        let f = IftttFrontend::new(eco, week);
        let max = f.max_applet_id();
        let fe = sim.add_node("ifttt.com", f);
        sim.node_mut::<IftttFrontend>(fe).overload_rate = overload;
        let cfg = CrawlerConfig::new(fe, 100_000, max + 1);
        let crawler = sim.add_node("crawler", Crawler::new(cfg));
        sim.link(crawler, fe, LinkSpec::wan());
        (fe, crawler, max)
    };
    let (_fe, crawler, _max) = max_id;
    sim.try_run_until_idle(20_000_000)
        .expect("crawl terminates");
    assert!(sim.node_ref::<Crawler>(crawler).is_done());
    let crawled = sim
        .node_ref::<Crawler>(crawler)
        .snapshot(week, direct.date.clone());
    let retries = sim.node_ref::<Crawler>(crawler).stats.retries;
    (direct, crawled, retries)
}

fn assert_equivalent(direct: &ecosystem::Snapshot, crawled: &ecosystem::Snapshot) {
    assert_eq!(crawled.services.len(), direct.services.len());
    assert_eq!(crawled.applets.len(), direct.applets.len());
    assert_eq!(crawled.total_add_count(), direct.total_add_count());
    assert_eq!(crawled.trigger_count(), direct.trigger_count());
    assert_eq!(crawled.action_count(), direct.action_count());
    // Record-level equality (modulo created_week, which a scraper cannot
    // observe and the crawler leaves at zero).
    let mut direct_applets = direct.applets.clone();
    direct_applets.sort_by_key(|a| a.id);
    for (d, c) in direct_applets.iter().zip(&crawled.applets) {
        assert_eq!(d.id, c.id);
        assert_eq!(d.trigger_service, c.trigger_service);
        assert_eq!(d.trigger, c.trigger);
        assert_eq!(d.action_service, c.action_service);
        assert_eq!(d.action, c.action);
        assert_eq!(d.author, c.author);
        assert_eq!(d.add_count, c.add_count);
    }
}

#[test]
fn clean_crawl_reconstructs_the_snapshot() {
    let (direct, crawled, retries) = crawl(11, 0.0);
    assert_eq!(retries, 0);
    assert_equivalent(&direct, &crawled);
}

#[test]
fn crawl_survives_sporadic_overload() {
    let (direct, crawled, retries) = crawl(12, 0.05);
    assert!(retries > 0, "expected some 503 retries");
    assert_equivalent(&direct, &crawled);
}
