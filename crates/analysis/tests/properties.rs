//! Property-based tests for the statistics toolkit.

use analysis::stats::{percentile, Cdf, Summary};
use analysis::tail::{rank_series, top_share};
use proptest::prelude::*;

proptest! {
    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentiles_monotone(mut xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile(&xs, p);
            prop_assert!(v >= last);
            prop_assert!(v >= xs[0] && v <= *xs.last().unwrap());
            last = v;
        }
    }

    /// Summary invariants: min ≤ p25 ≤ p50 ≤ p75 ≤ p95 ≤ max and the mean
    /// lies within [min, max].
    #[test]
    fn summary_is_ordered(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.p25 && s.p25 <= s.p50);
        prop_assert!(s.p50 <= s.p75 && s.p75 <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.n, xs.len());
    }

    /// The CDF is a proper distribution function: monotone from >0 to 1,
    /// and quantile() is a right-inverse of at().
    #[test]
    fn cdf_is_monotone_to_one(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let c = Cdf::of(&xs);
        let mut last = 0.0;
        for (_, f) in &c.points {
            prop_assert!(*f >= last);
            last = *f;
        }
        prop_assert!((last - 1.0).abs() < 1e-9);
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = c.quantile(q);
            prop_assert!(c.at(v) >= q - 1e-9);
        }
    }

    /// Top-share is monotone in the fraction and bounded by [0, 1].
    #[test]
    fn top_share_monotone(xs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut last = 0.0;
        for frac in [0.01, 0.05, 0.1, 0.5, 1.0] {
            let s = top_share(&xs, frac);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
            prop_assert!(s >= last - 1e-9);
            last = s;
        }
        let total: u64 = xs.iter().sum();
        if total > 0 {
            prop_assert!((top_share(&xs, 1.0) - 1.0).abs() < 1e-9);
        }
    }

    /// Rank series are strictly increasing in rank, non-increasing in
    /// value, and bounded by the data.
    #[test]
    fn rank_series_wellformed(
        xs in proptest::collection::vec(0u64..1_000_000, 1..500),
        points in 2usize..40,
    ) {
        let s = rank_series(&xs, points);
        prop_assert!(!s.is_empty());
        prop_assert_eq!(s[0].rank, 1);
        prop_assert_eq!(s.last().unwrap().rank, xs.len());
        for w in s.windows(2) {
            prop_assert!(w[0].rank < w[1].rank);
            prop_assert!(w[0].value >= w[1].value);
        }
        let max = xs.iter().copied().max().unwrap();
        prop_assert_eq!(s[0].value, max);
    }
}
