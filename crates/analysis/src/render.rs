//! Plain-text table rendering.

/// Render rows as a column-aligned text table with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // The count column is aligned under its header.
        assert_eq!(lines[0].find('n'), Some(0));
    }

    #[test]
    fn pct_and_count_format() {
        assert_eq!(pct(0.517), "51.7%");
        assert_eq!(count(23_000_000), "23,000,000");
        assert_eq!(count(42), "42");
        assert_eq!(count(1_000), "1,000");
    }
}
