//! # analysis — measurement analytics for the IFTTT study
//!
//! Statistical machinery ([`stats`], [`tail`]) plus one builder per table
//! and figure of the paper's §3 ([`tables`], [`heatmap`], [`growth`],
//! [`users`]). Builders take crawled/generated [`ecosystem::Snapshot`]s and
//! return typed reports with plain-text renderings, so `cargo bench` output
//! doubles as the reproduction artifact.

pub mod growth;
pub mod heatmap;
pub mod render;
pub mod stats;
pub mod tables;
pub mod tail;
pub mod users;
pub mod workload;

pub use growth::GrowthReport;
pub use heatmap::Heatmap;
pub use stats::{percentile, Cdf, Summary};
pub use tables::{HeadlineIot, Table1Report, Table2Report, Table3Report};
pub use tail::{rank_series, top_share};
pub use users::UserContribution;
pub use workload::WorkloadReport;
