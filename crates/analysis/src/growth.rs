//! Longitudinal growth (§3.2's first paragraph).

use crate::render;
use ecosystem::snapshot::{diff, Snapshot};
use serde::{Deserialize, Serialize};

/// Weekly totals plus the headline growth comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthReport {
    /// `(week, services, triggers, actions, add_count)` per snapshot.
    pub weekly: Vec<(u32, usize, usize, usize, u64)>,
    /// Relative growth from the first to the 11/24→4/1 comparison week.
    pub services_growth: f64,
    pub triggers_growth: f64,
    pub actions_growth: f64,
    pub add_count_growth: f64,
}

impl GrowthReport {
    /// Measure growth across a snapshot series; the headline numbers
    /// compare `week_start` to `week_end` (paper: weeks 0 and 19).
    pub fn of(snapshots: &[Snapshot], week_start: u32, week_end: u32) -> GrowthReport {
        let weekly = snapshots
            .iter()
            .map(|s| {
                (
                    s.week,
                    s.services.len(),
                    s.trigger_count(),
                    s.action_count(),
                    s.total_add_count(),
                )
            })
            .collect();
        let a = snapshots.iter().find(|s| s.week == week_start);
        let b = snapshots.iter().find(|s| s.week == week_end);
        let (sg, tg, ag, cg) = match (a, b) {
            (Some(a), Some(b)) => {
                let d = diff(a, b);
                (
                    d.services_growth,
                    d.triggers_growth,
                    d.actions_growth,
                    d.add_count_growth,
                )
            }
            _ => (0.0, 0.0, 0.0, 0.0),
        };
        GrowthReport {
            weekly,
            services_growth: sg,
            triggers_growth: tg,
            actions_growth: ag,
            add_count_growth: cg,
        }
    }

    /// Text rendering: the weekly series plus the growth headline.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .weekly
            .iter()
            .map(|(w, s, t, a, c)| {
                vec![
                    w.to_string(),
                    s.to_string(),
                    t.to_string(),
                    a.to_string(),
                    render::count(*c),
                ]
            })
            .collect();
        let mut out = render::table(
            &["Week", "Services", "Triggers", "Actions", "Add count"],
            &rows,
        );
        out.push_str(&format!(
            "\ngrowth (paper: +11% / +31% / +27% / +19%): services {} triggers {} actions {} adds {}\n",
            render::pct(self.services_growth),
            render::pct(self.triggers_growth),
            render::pct(self.actions_growth),
            render::pct(self.add_count_growth),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::generator::{Ecosystem, GeneratorConfig};
    use ecosystem::model::GROWTH;

    #[test]
    fn growth_report_matches_paper_rates() {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(51));
        let snaps = eco.all_snapshots();
        let g = GrowthReport::of(&snaps, GROWTH.week_start as u32, GROWTH.week_end as u32);
        assert_eq!(g.weekly.len(), 25);
        assert!(
            (g.services_growth - 0.11).abs() < 0.03,
            "services {}",
            g.services_growth
        );
        assert!(
            (g.triggers_growth - 0.31).abs() < 0.08,
            "triggers {}",
            g.triggers_growth
        );
        assert!(
            (g.actions_growth - 0.27).abs() < 0.08,
            "actions {}",
            g.actions_growth
        );
        assert!(
            (g.add_count_growth - 0.19).abs() < 0.06,
            "adds {}",
            g.add_count_growth
        );
        // Weekly series is monotone non-decreasing in every column.
        for w in g.weekly.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].4 >= w[0].4);
        }
    }

    #[test]
    fn missing_weeks_yield_zero_growth() {
        let g = GrowthReport::of(&[], 0, 19);
        assert_eq!(g.services_growth, 0.0);
        assert!(g.weekly.is_empty());
    }

    #[test]
    fn render_mentions_paper_targets() {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(52));
        let snaps: Vec<_> = [0u32, 19].iter().map(|w| eco.snapshot(*w)).collect();
        let g = GrowthReport::of(&snaps, 0, 19);
        assert!(g.render().contains("+11%"));
    }
}
