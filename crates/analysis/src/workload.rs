//! Engine-workload analytics for the §6 push-vs-poll discussion.
//!
//! "If all trigger services perform push, the incurred instantaneous
//! workload may be too high: IoT workload is known to be highly bursty
//! \[24\]". This module turns a stream of request timestamps into a
//! rate time series and the peak-to-mean ratio that quantifies burstiness.

use serde::{Deserialize, Serialize};

/// A request-rate time series in fixed-width buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Bucket width in seconds.
    pub bucket_secs: f64,
    /// Requests per bucket, from t=0.
    pub buckets: Vec<u64>,
    /// Total requests.
    pub total: u64,
}

impl WorkloadReport {
    /// Bucket `timestamps` (seconds) into `bucket_secs`-wide bins spanning
    /// `[0, horizon_secs)`.
    pub fn of(timestamps: &[f64], bucket_secs: f64, horizon_secs: f64) -> WorkloadReport {
        let n = (horizon_secs / bucket_secs).ceil().max(1.0) as usize;
        let mut buckets = vec![0u64; n];
        let mut total = 0;
        for &t in timestamps {
            if t < 0.0 || t >= horizon_secs {
                continue;
            }
            buckets[(t / bucket_secs) as usize] += 1;
            total += 1;
        }
        WorkloadReport {
            bucket_secs,
            buckets,
            total,
        }
    }

    /// Mean requests per bucket.
    pub fn mean(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total as f64 / self.buckets.len() as f64
        }
    }

    /// Peak bucket.
    pub fn peak(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// Peak-to-mean ratio — the burstiness measure (1.0 = perfectly
    /// smooth). Returns 0 for an empty series.
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            self.peak() as f64 / mean
        }
    }

    /// Text rendering: a sparkline-style bar chart plus the headline ratio.
    pub fn render(&self, label: &str) -> String {
        let glyphs = [' ', '.', ':', '+', 'x', 'X', '#', '@'];
        let peak = self.peak().max(1) as f64;
        let bars: String = self
            .buckets
            .iter()
            .map(|&b| {
                let t = b as f64 / peak;
                glyphs[((t * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
            })
            .collect();
        format!(
            "{label}: total {} reqs, mean {:.1}/bucket, peak {} (peak/mean {:.1}x)\n[{bars}]\n",
            self.total,
            self.mean(),
            self.peak(),
            self.peak_to_mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_counts_and_clips() {
        let ts = [0.5, 0.9, 1.5, 9.9, -1.0, 10.0, 100.0];
        let w = WorkloadReport::of(&ts, 1.0, 10.0);
        assert_eq!(w.buckets.len(), 10);
        assert_eq!(w.buckets[0], 2);
        assert_eq!(w.buckets[1], 1);
        assert_eq!(w.buckets[9], 1);
        assert_eq!(w.total, 4);
    }

    #[test]
    fn smooth_traffic_has_ratio_near_one() {
        let ts: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let w = WorkloadReport::of(&ts, 1.0, 100.0);
        assert!((w.peak_to_mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_traffic_has_high_ratio() {
        // 100 requests all in one second of a 100-second horizon.
        let ts: Vec<f64> = (0..100).map(|i| 42.0 + i as f64 * 0.001).collect();
        let w = WorkloadReport::of(&ts, 1.0, 100.0);
        assert_eq!(w.peak(), 100);
        assert!((w.peak_to_mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_zero() {
        let w = WorkloadReport::of(&[], 1.0, 10.0);
        assert_eq!(w.peak_to_mean(), 0.0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn render_shows_ratio() {
        let w = WorkloadReport::of(&[1.0, 1.1, 5.0], 1.0, 10.0);
        let text = w.render("poll");
        assert!(text.contains("peak/mean"));
        assert!(text.contains("poll"));
    }
}
