//! Basic statistics: percentiles, summaries, and empirical CDFs.

use serde::{Deserialize, Serialize};

/// The `p`-th percentile (0–100) by linear interpolation on sorted data.
/// Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let idx = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub p25: f64,
    pub p50: f64,
    pub p75: f64,
    pub p95: f64,
    pub max: f64,
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample (unsorted input accepted).
    pub fn of(values: &[f64]) -> Summary {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if v.is_empty() {
            return Summary {
                n: 0,
                min: 0.0,
                p25: 0.0,
                p50: 0.0,
                p75: 0.0,
                p95: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        Summary {
            n: v.len(),
            min: v[0],
            p25: percentile(&v, 25.0),
            p50: percentile(&v, 50.0),
            p75: percentile(&v, 75.0),
            p95: percentile(&v, 95.0),
            max: *v.last().expect("nonempty"),
            mean: v.iter().sum::<f64>() / v.len() as f64,
        }
    }
}

/// An empirical CDF: sorted values with cumulative fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// `(value, F(value))` points, ascending in value.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Build from a sample.
    pub fn of(values: &[f64]) -> Cdf {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = v.len() as f64;
        Cdf {
            points: v
                .into_iter()
                .enumerate()
                .map(|(i, x)| (x, (i + 1) as f64 / n))
                .collect(),
        }
    }

    /// `F(x)`: fraction of the sample ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        match self
            .points
            .binary_search_by(|(v, _)| v.partial_cmp(&x).expect("finite"))
        {
            Ok(mut i) => {
                // Step up over ties.
                while i + 1 < self.points.len() && self.points[i + 1].0 == x {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Inverse CDF: smallest value with `F(value) ≥ q`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        self.points
            .iter()
            .find(|(_, f)| *f >= q)
            .or(self.points.last())
            .map(|(v, _)| *v)
            .unwrap_or(0.0)
    }

    /// Downsample to at most `k` points for plotting (keeps endpoints).
    pub fn downsample(&self, k: usize) -> Vec<(f64, f64)> {
        let n = self.points.len();
        if n <= k || k < 2 {
            return self.points.clone();
        }
        (0..k).map(|i| self.points[i * (n - 1) / (k - 1)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.5);
        assert_eq!(s.mean, 2.5);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn cdf_basics() {
        let c = Cdf::of(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(3.0), 0.75);
        assert_eq!(c.at(9.0), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_downsample_keeps_endpoints() {
        let c = Cdf::of(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let d = c.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], c.points[0]);
        assert_eq!(d[9], *c.points.last().unwrap());
    }
}
