//! Builders for Tables 1–3 and the §1/§3.2 IoT headline numbers.

use crate::render;
use ecosystem::model::{ComparisonDataset, OURS_2017, UR_ET_AL_2015};
use ecosystem::taxonomy::{Category, ALL_CATEGORIES};
use ecosystem::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measured Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryBreakdown {
    pub category: Category,
    /// Fraction of services in this category.
    pub services: f64,
    /// Fraction of total add count whose trigger is in this category.
    pub trigger_ac: f64,
    /// Fraction of total add count whose action is in this category.
    pub action_ac: f64,
}

/// Table 1, measured from a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    pub rows: Vec<CategoryBreakdown>,
}

impl Table1Report {
    /// Measure the category breakdown.
    pub fn of(snapshot: &Snapshot) -> Table1Report {
        let index = snapshot.category_index();
        let n_services = snapshot.services.len().max(1) as f64;
        let total_adds = snapshot.total_add_count().max(1) as f64;
        let mut svc = BTreeMap::new();
        for s in &snapshot.services {
            *svc.entry(s.category).or_insert(0usize) += 1;
        }
        let mut trig = BTreeMap::new();
        let mut act = BTreeMap::new();
        for a in &snapshot.applets {
            if let Some(c) = index.get(a.trigger_service.as_str()) {
                *trig.entry(*c).or_insert(0u64) += a.add_count;
            }
            if let Some(c) = index.get(a.action_service.as_str()) {
                *act.entry(*c).or_insert(0u64) += a.add_count;
            }
        }
        let rows = ALL_CATEGORIES
            .iter()
            .map(|c| CategoryBreakdown {
                category: *c,
                services: *svc.get(c).unwrap_or(&0) as f64 / n_services,
                trigger_ac: *trig.get(c).unwrap_or(&0) as f64 / total_adds,
                action_ac: *act.get(c).unwrap_or(&0) as f64 / total_adds,
            })
            .collect();
        Table1Report { rows }
    }

    /// Fraction of services that are IoT (paper: 51.7%).
    pub fn iot_service_share(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.category.is_iot())
            .map(|r| r.services)
            .sum()
    }

    /// Text rendering in the paper's layout.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.category.to_string(),
                    render::pct(r.services),
                    render::pct(r.trigger_ac),
                    render::pct(r.action_ac),
                ]
            })
            .collect();
        render::table(
            &[
                "Service Category",
                "% Services",
                "Trigger AC %",
                "Action AC %",
            ],
            &rows,
        )
    }
}

/// The §1/§3.2 headline: IoT share of services and of applet usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineIot {
    /// Fraction of services that are IoT ("52% of all services").
    pub service_share: f64,
    /// Fraction of add count with an IoT trigger or action ("16% of the
    /// applet usage").
    pub usage_share: f64,
}

impl HeadlineIot {
    /// Measure the headline numbers.
    pub fn of(snapshot: &Snapshot) -> HeadlineIot {
        let index = snapshot.category_index();
        let iot_services = snapshot
            .services
            .iter()
            .filter(|s| s.category.is_iot())
            .count() as f64;
        let total_adds = snapshot.total_add_count().max(1) as f64;
        let iot_adds: u64 = snapshot
            .applets
            .iter()
            .filter(|a| {
                index
                    .get(a.trigger_service.as_str())
                    .is_some_and(|c| c.is_iot())
                    || index
                        .get(a.action_service.as_str())
                        .is_some_and(|c| c.is_iot())
            })
            .map(|a| a.add_count)
            .sum();
        HeadlineIot {
            service_share: iot_services / snapshot.services.len().max(1) as f64,
            usage_share: iot_adds as f64 / total_adds,
        }
    }
}

/// Table 2: our dataset vs Ur et al.'s.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2Report {
    /// Measured from our snapshots.
    pub measured_applets: usize,
    pub measured_channels: usize,
    pub measured_triggers: usize,
    pub measured_actions: usize,
    pub measured_adoptions: u64,
    pub measured_contributors: usize,
    pub measured_snapshots: usize,
    /// The published comparison rows.
    pub ours_published: ComparisonDataset,
    pub ur_published: ComparisonDataset,
}

impl Table2Report {
    /// Measure from the full snapshot series (adoptions use the final
    /// snapshot, like the paper's running totals).
    pub fn of(snapshots: &[Snapshot]) -> Table2Report {
        let canonical = snapshots
            .iter()
            .find(|s| s.week == ecosystem::model::GROWTH.week_canonical as u32)
            .or(snapshots.last())
            .expect("at least one snapshot");
        let last = snapshots.last().expect("at least one snapshot");
        Table2Report {
            measured_applets: canonical.applets.len(),
            measured_channels: canonical.services.len(),
            measured_triggers: canonical.trigger_count(),
            measured_actions: canonical.action_count(),
            measured_adoptions: last.total_add_count(),
            measured_contributors: canonical.user_channel_count(),
            measured_snapshots: snapshots.len(),
            ours_published: OURS_2017,
            ur_published: UR_ET_AL_2015,
        }
    }

    /// Text rendering in the paper's layout.
    pub fn render(&self) -> String {
        let rows = vec![
            vec![
                "# Applets".to_string(),
                render::count(self.measured_applets as u64),
                render::count(self.ours_published.applets as u64),
                render::count(self.ur_published.applets as u64),
            ],
            vec![
                "# Channels".to_string(),
                render::count(self.measured_channels as u64),
                render::count(self.ours_published.channels as u64),
                render::count(self.ur_published.channels as u64),
            ],
            vec![
                "# Triggers".to_string(),
                render::count(self.measured_triggers as u64),
                render::count(self.ours_published.triggers as u64),
                render::count(self.ur_published.triggers as u64),
            ],
            vec![
                "# Actions".to_string(),
                render::count(self.measured_actions as u64),
                render::count(self.ours_published.actions as u64),
                render::count(self.ur_published.actions as u64),
            ],
            vec![
                "# Adoptions".to_string(),
                render::count(self.measured_adoptions),
                render::count(self.ours_published.adoptions),
                render::count(self.ur_published.adoptions),
            ],
            vec![
                "# Contributors".to_string(),
                render::count(self.measured_contributors as u64),
                render::count(self.ours_published.contributors as u64),
                render::count(self.ur_published.contributors as u64),
            ],
            vec![
                "# Snapshots".to_string(),
                self.measured_snapshots.to_string(),
                self.ours_published.snapshots.to_string(),
                self.ur_published.snapshots.to_string(),
            ],
        ];
        render::table(
            &["Aspect", "Measured", "Paper (ours)", "Ur et al. [28]"],
            &rows,
        )
    }
}

/// One Table 3 entry: a service (or trigger/action) with its add count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopEntry {
    pub name: String,
    pub add_count: u64,
}

/// Table 3: top IoT trigger services, action services, triggers, actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Report {
    pub top_trigger_services: Vec<TopEntry>,
    pub top_action_services: Vec<TopEntry>,
    pub top_triggers: Vec<TopEntry>,
    pub top_actions: Vec<TopEntry>,
}

impl Table3Report {
    /// Measure the top-`k` IoT lists from a snapshot.
    pub fn of(snapshot: &Snapshot, k: usize) -> Table3Report {
        let index = snapshot.category_index();
        let mut ts: BTreeMap<&str, u64> = BTreeMap::new();
        let mut as_: BTreeMap<&str, u64> = BTreeMap::new();
        let mut tt: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        let mut ta: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        for a in &snapshot.applets {
            if index
                .get(a.trigger_service.as_str())
                .is_some_and(|c| c.is_iot())
            {
                *ts.entry(&a.trigger_service).or_default() += a.add_count;
                *tt.entry((&a.trigger, &a.trigger_service)).or_default() += a.add_count;
            }
            if index
                .get(a.action_service.as_str())
                .is_some_and(|c| c.is_iot())
            {
                *as_.entry(&a.action_service).or_default() += a.add_count;
                *ta.entry((&a.action, &a.action_service)).or_default() += a.add_count;
            }
        }
        fn top<K: Clone>(
            m: &BTreeMap<K, u64>,
            k: usize,
            name: impl Fn(&K) -> String,
        ) -> Vec<TopEntry> {
            let mut v: Vec<(&K, &u64)> = m.iter().collect();
            v.sort_by(|a, b| b.1.cmp(a.1));
            v.into_iter()
                .take(k)
                .map(|(key, adds)| TopEntry {
                    name: name(key),
                    add_count: *adds,
                })
                .collect()
        }
        Table3Report {
            top_trigger_services: top(&ts, k, |s| s.to_string()),
            top_action_services: top(&as_, k, |s| s.to_string()),
            top_triggers: top(&tt, k, |(t, s)| format!("{t} ({s})")),
            top_actions: top(&ta, k, |(a, s)| format!("{a} ({s})")),
        }
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let n = self
            .top_trigger_services
            .len()
            .max(self.top_action_services.len())
            .max(self.top_triggers.len())
            .max(self.top_actions.len());
        let cell = |list: &[TopEntry], i: usize| -> String {
            list.get(i)
                .map(|e| format!("{} ({:.2}M)", e.name, e.add_count as f64 / 1e6))
                .unwrap_or_default()
        };
        let rows: Vec<Vec<String>> = (0..n)
            .map(|i| {
                vec![
                    cell(&self.top_trigger_services, i),
                    cell(&self.top_action_services, i),
                    cell(&self.top_triggers, i),
                    cell(&self.top_actions, i),
                ]
            })
            .collect();
        render::table(
            &[
                "Top Trigger Services",
                "Top Action Services",
                "Top Triggers",
                "Top Actions",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::generator::{Ecosystem, GeneratorConfig};
    use ecosystem::taxonomy::{table1_row, TABLE1};

    fn snap() -> Snapshot {
        Ecosystem::generate(GeneratorConfig::test_scale(41)).canonical_snapshot()
    }

    #[test]
    fn table1_matches_published_percentages() {
        let t = Table1Report::of(&snap());
        for row in &t.rows {
            let want = table1_row(row.category);
            assert!(
                (row.services * 100.0 - want.services_pct).abs() < 0.5,
                "{}: services {} vs {}",
                row.category,
                row.services * 100.0,
                want.services_pct
            );
            assert!(
                (row.trigger_ac * 100.0 - want.trigger_ac_pct).abs() < 2.0,
                "{}: trig {} vs {}",
                row.category,
                row.trigger_ac * 100.0,
                want.trigger_ac_pct
            );
            assert!(
                (row.action_ac * 100.0 - want.action_ac_pct).abs() < 2.0,
                "{}: act {} vs {}",
                row.category,
                row.action_ac * 100.0,
                want.action_ac_pct
            );
        }
        assert!((t.iot_service_share() - 0.517).abs() < 0.01);
    }

    #[test]
    fn headline_iot_matches_abstract() {
        // "52% of all services and 16% of the applet usage."
        let h = HeadlineIot::of(&snap());
        assert!(
            (h.service_share - 0.52).abs() < 0.01,
            "services {}",
            h.service_share
        );
        assert!(
            (h.usage_share - 0.16).abs() < 0.04,
            "usage {}",
            h.usage_share
        );
    }

    #[test]
    fn table3_top_entries_match_anchors() {
        let t = Table3Report::of(&snap(), 7);
        assert_eq!(t.top_trigger_services[0].name, "amazon_alexa");
        assert_eq!(t.top_action_services[0].name, "philips_hue");
        // Alexa ≈ 1.2M × scale.
        let want = 1_200_000.0 * 0.02;
        assert!((t.top_trigger_services[0].add_count as f64 / want - 1.0).abs() < 0.1);
        // Top triggers/actions come from the anchor slots.
        assert!(t.top_triggers[0].name.contains("amazon_alexa"));
        assert!(t.top_actions[0].name.contains("philips_hue"));
    }

    #[test]
    fn table2_measures_the_series() {
        let eco = Ecosystem::generate(GeneratorConfig::test_scale(42));
        let snaps: Vec<Snapshot> = eco.all_snapshots();
        let t = Table2Report::of(&snaps);
        assert_eq!(t.measured_snapshots, 25);
        assert_eq!(t.measured_channels, 408);
        // Adoptions at crawl end ≈ 24M × scale (Table 2's "24 millions").
        let want = 24_000_000.0 * 0.02;
        assert!(
            (t.measured_adoptions as f64 / want - 1.0).abs() < 0.05,
            "adoptions {}",
            t.measured_adoptions
        );
        let text = t.render();
        assert!(text.contains("# Adoptions"));
    }

    #[test]
    fn renders_are_nonempty_and_structured() {
        let s = snap();
        assert_eq!(Table1Report::of(&s).render().lines().count(), 16);
        let t3 = Table3Report::of(&s, 7).render();
        assert!(t3.contains("Top Trigger Services"));
    }

    #[test]
    fn table1_row_count_is_all_categories() {
        assert_eq!(Table1Report::of(&snap()).rows.len(), TABLE1.len());
    }
}
