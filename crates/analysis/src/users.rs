//! User-contribution analytics (§3.2, "Applet Properties").

use crate::tail::top_share;
use ecosystem::snapshot::{Author, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Who contributes applets, and how unequally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserContribution {
    /// Distinct user channels with ≥1 published applet.
    pub user_channels: usize,
    /// Fraction of applets that are user-made (paper: 98%).
    pub user_made_applets: f64,
    /// Fraction of total add count on user-made applets (paper: 86%).
    pub user_made_adds: f64,
    /// Share of all applets by the top 1% of users (paper: 18%).
    pub top1_user_share: f64,
    /// Share of all applets by the top 10% of users (paper: 49%).
    pub top10_user_share: f64,
}

impl UserContribution {
    /// Measure from a snapshot.
    pub fn of(snapshot: &Snapshot) -> UserContribution {
        let mut per_user: BTreeMap<u32, u64> = BTreeMap::new();
        let mut user_applets = 0usize;
        let mut user_adds = 0u64;
        for a in &snapshot.applets {
            match &a.author {
                Author::User(u) => {
                    *per_user.entry(*u).or_default() += 1;
                    user_applets += 1;
                    user_adds += a.add_count;
                }
                Author::Service(_) => {}
            }
        }
        let counts: Vec<u64> = per_user.values().copied().collect();
        let n_applets = snapshot.applets.len().max(1) as f64;
        UserContribution {
            user_channels: per_user.len(),
            user_made_applets: user_applets as f64 / n_applets,
            user_made_adds: user_adds as f64 / snapshot.total_add_count().max(1) as f64,
            // The paper states shares of *all* applets; user-made is 98% of
            // them, so normalize the user tail shares to the full set.
            top1_user_share: top_share(&counts, 0.01) * user_applets as f64 / n_applets,
            top10_user_share: top_share(&counts, 0.10) * user_applets as f64 / n_applets,
        }
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "user channels: {}\nuser-made applets: {:.1}% (paper 98%)\n\
             user-made add count: {:.1}% (paper 86%)\n\
             top 1% users contribute: {:.1}% of applets (paper 18%)\n\
             top 10% users contribute: {:.1}% of applets (paper 49%)\n",
            self.user_channels,
            self.user_made_applets * 100.0,
            self.user_made_adds * 100.0,
            self.top1_user_share * 100.0,
            self.top10_user_share * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::generator::{Ecosystem, GeneratorConfig};

    #[test]
    fn contribution_matches_paper_stats() {
        let snap = Ecosystem::generate(GeneratorConfig::test_scale(61)).canonical_snapshot();
        let u = UserContribution::of(&snap);
        assert!(
            (u.user_made_applets - 0.98).abs() < 0.01,
            "applets {}",
            u.user_made_applets
        );
        assert!(
            (u.user_made_adds - 0.86).abs() < 0.05,
            "adds {}",
            u.user_made_adds
        );
        assert!(
            (u.top1_user_share - 0.18).abs() < 0.04,
            "top1 {}",
            u.top1_user_share
        );
        assert!(
            (u.top10_user_share - 0.49).abs() < 0.06,
            "top10 {}",
            u.top10_user_share
        );
        // Scaled user-channel count: 135,544 × 0.02 ≈ 2,711.
        assert!(
            (u.user_channels as f64 / (135_544.0 * 0.02) - 1.0).abs() < 0.1,
            "channels {}",
            u.user_channels
        );
    }

    #[test]
    fn render_mentions_paper_values() {
        let snap = Ecosystem::generate(GeneratorConfig::test_scale(62)).canonical_snapshot();
        let text = UserContribution::of(&snap).render();
        assert!(text.contains("paper 98%"));
        assert!(text.contains("user channels"));
    }
}
