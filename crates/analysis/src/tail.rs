//! Heavy-tail analytics: top-k shares and rank-size series (Figure 3).

use serde::{Deserialize, Serialize};

/// Fraction of `total` held by the top `frac` (0–1) of items.
/// Input need not be sorted.
pub fn top_share(values: &[u64], frac: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((v.len() as f64 * frac).round() as usize).clamp(1, v.len());
    let top: u64 = v.iter().take(k).sum();
    let total: u64 = v.iter().sum();
    if total == 0 {
        0.0
    } else {
        top as f64 / total as f64
    }
}

/// One point of the Figure 3 rank plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankPoint {
    /// 1-based rank (descending by value).
    pub rank: usize,
    pub value: u64,
}

/// Log-spaced rank-size series: the Figure 3 curve (applets sorted by add
/// count, both axes log scale). Returns ≤ `points` samples including the
/// first and last rank.
pub fn rank_series(values: &[u64], points: usize) -> Vec<RankPoint> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let n = v.len();
    let mut ranks: Vec<usize> = (0..points)
        .map(|i| {
            let t = i as f64 / (points.max(2) - 1) as f64;
            ((n as f64).powf(t).round() as usize).clamp(1, n)
        })
        .collect();
    ranks.dedup();
    ranks
        .into_iter()
        .map(|r| RankPoint {
            rank: r,
            value: v[r - 1],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_share_of_uniform_is_proportional() {
        let v = vec![10u64; 100];
        assert!((top_share(&v, 0.1) - 0.1).abs() < 1e-9);
        assert!((top_share(&v, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_share_of_concentrated_is_high() {
        let mut v = vec![1u64; 99];
        v.push(901);
        assert!((top_share(&v, 0.01) - 0.901).abs() < 1e-9);
    }

    #[test]
    fn top_share_edge_cases() {
        assert_eq!(top_share(&[], 0.1), 0.0);
        assert_eq!(top_share(&[0, 0], 0.5), 0.0);
        // frac rounding to zero still takes at least one item.
        assert!((top_share(&[5, 5], 0.001) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rank_series_is_log_spaced_and_sorted() {
        let values: Vec<u64> = (1..=1000).rev().collect();
        let s = rank_series(&values, 20);
        assert_eq!(s.first().unwrap().rank, 1);
        assert_eq!(s.last().unwrap().rank, 1000);
        assert!(s.windows(2).all(|w| w[0].rank < w[1].rank));
        // Values descend with rank.
        assert!(s.windows(2).all(|w| w[0].value >= w[1].value));
        assert_eq!(s.first().unwrap().value, 1000);
    }

    #[test]
    fn rank_series_empty_input() {
        assert!(rank_series(&[], 10).is_empty());
    }
}
