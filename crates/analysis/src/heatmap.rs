//! Figure 2: the trigger-category × action-category interaction heat map.
//!
//! "The intensity of the color block at Row i and Column j indicates the
//! add count of applets whose trigger and action belong to service category
//! i and j, respectively."

use crate::render;

use ecosystem::Snapshot;
use serde::{Deserialize, Serialize};

/// The 14×14 interaction matrix measured from a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Add counts: `cells[trigger_cat - 1][action_cat - 1]`.
    pub cells: Vec<Vec<u64>>,
    /// Total add count (for normalization).
    pub total: u64,
}

impl Heatmap {
    /// Measure the interaction matrix from a snapshot.
    pub fn of(snapshot: &Snapshot) -> Heatmap {
        let index = snapshot.category_index();
        let mut cells = vec![vec![0u64; 14]; 14];
        let mut total = 0u64;
        for a in &snapshot.applets {
            let (Some(tc), Some(ac)) = (
                index.get(a.trigger_service.as_str()),
                index.get(a.action_service.as_str()),
            ) else {
                continue;
            };
            cells[tc.index() - 1][ac.index() - 1] += a.add_count;
            total += a.add_count;
        }
        Heatmap { cells, total }
    }

    /// Row sums as fractions of the total (Table 1's trigger AC column).
    pub fn row_shares(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|row| row.iter().sum::<u64>() as f64 / self.total.max(1) as f64)
            .collect()
    }

    /// Column sums as fractions of the total (Table 1's action AC column).
    pub fn col_shares(&self) -> Vec<f64> {
        (0..14)
            .map(|j| self.cells.iter().map(|r| r[j]).sum::<u64>() as f64 / self.total.max(1) as f64)
            .collect()
    }

    /// The `k` hottest cells as (trigger cat, action cat, share).
    pub fn hottest(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let mut all: Vec<(usize, usize, f64)> = (0..14)
            .flat_map(|i| {
                (0..14)
                    .map(move |j| (i + 1, j + 1, 0.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        for cell in all.iter_mut() {
            cell.2 = self.cells[cell.0 - 1][cell.1 - 1] as f64 / self.total.max(1) as f64;
        }
        all.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
        all.truncate(k);
        all
    }

    /// ASCII rendering with log-scaled intensity glyphs (the textual
    /// Figure 2).
    pub fn render(&self) -> String {
        let glyphs = [' ', '.', ':', '+', 'x', 'X', '#', '@'];
        let max = self.cells.iter().flatten().copied().max().unwrap_or(1) as f64;
        let mut out = String::from("      action category →\n     ");
        for j in 1..=14 {
            out.push_str(&format!("{j:>3}"));
        }
        out.push('\n');
        for (i, row) in self.cells.iter().enumerate() {
            out.push_str(&format!("T{:>2} | ", i + 1));
            for &v in row {
                let g = if v == 0 {
                    ' '
                } else {
                    // Log intensity scaled to the glyph ramp.
                    let t = ((v as f64).ln() / max.ln()).clamp(0.0, 1.0);
                    glyphs[((t * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
                };
                out.push_str(&format!("  {g}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("total adds: {}\n", render::count(self.total)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::taxonomy::Category;
    use ecosystem::{AppletRecord, Author, ServiceRecord};

    fn snap() -> Snapshot {
        let svc = |slug: &str, cat: Category| ServiceRecord {
            slug: slug.into(),
            name: slug.into(),
            category: cat,
            triggers: vec!["t".into()],
            actions: vec!["a".into()],
            created_week: 0,
        };
        let applet = |id: u32, ts: &str, as_: &str, adds: u64| AppletRecord {
            id,
            name: "x".into(),
            trigger_service: ts.into(),
            trigger: "t".into(),
            action_service: as_.into(),
            action: "a".into(),
            author: Author::User(1),
            add_count: adds,
            created_week: 0,
            steps: Vec::new(),
        };
        Snapshot {
            week: 18,
            date: "d".into(),
            services: vec![
                svc("iot", Category::SmartHomeDevice),
                svc("mail", Category::Email),
            ],
            applets: vec![
                applet(1, "iot", "mail", 30),
                applet(2, "mail", "iot", 50),
                applet(3, "iot", "iot", 20),
            ],
        }
    }

    #[test]
    fn cells_accumulate_add_counts() {
        let h = Heatmap::of(&snap());
        assert_eq!(h.total, 100);
        assert_eq!(h.cells[0][12], 30); // IoT → Email
        assert_eq!(h.cells[12][0], 50); // Email → IoT
        assert_eq!(h.cells[0][0], 20);
    }

    #[test]
    fn shares_sum_to_one() {
        let h = Heatmap::of(&snap());
        assert!((h.row_shares().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((h.col_shares().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_orders_by_share() {
        let h = Heatmap::of(&snap());
        let top = h.hottest(2);
        assert_eq!((top[0].0, top[0].1), (13, 1));
        assert_eq!((top[1].0, top[1].1), (1, 13));
    }

    #[test]
    fn render_is_14_rows() {
        let h = Heatmap::of(&snap());
        let text = h.render();
        assert_eq!(text.lines().filter(|l| l.starts_with('T')).count(), 14);
        assert!(text.contains("total adds: 100"));
    }
}
