//! The rustc-hash ("FxHash") multiply-rotate hasher.
//!
//! SipHash — the std default — exists to resist hash-flooding from
//! attacker-chosen keys. Every map this workspace keys by [`u64`] handles,
//! interned symbols, or small tuples of them holds *simulator-chosen*
//! keys, so the DoS defense buys nothing and costs a full SipHash
//! permutation per probe. Fx folds each word in with one multiply and a
//! rotate instead.
//!
//! Determinism: the hash function changes bucket order, and bucket order
//! changes map iteration order — which is exactly why this type may only
//! back maps whose iteration order is never observable (the project-wide
//! rule reports and digests are tested against). Lookups, inserts, and
//! removals are order-free, and `FxHasher::default()` is stable across
//! builds and processes, so handle/symbol lookups behave identically
//! everywhere.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hasher. Interior use only — see module docs.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` with the Fx hasher. Interior use only — see module docs.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Stateless builder: every hasher starts from the same (zero) state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The odd multiplier rustc uses: truncated golden-ratio bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-at-a-time word hasher; see the module docs for when it is safe.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        if let Some(chunk) = bytes.first_chunk::<2>() {
            self.add(u64::from(u16::from_le_bytes(*chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn stable_across_hashers_and_equal_keys() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(7u32, 9u32)), hash_of(&(7u32, 9u32)));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_slices_hash_by_content_not_chunking_state() {
        // 11 bytes exercises the 8/2/1 tail decomposition.
        let a: &[u8] = b"hello world";
        let b: Vec<u8> = a.to_vec();
        assert_eq!(hash_of(&a), hash_of(&b.as_slice()));
    }

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FxHashMap<(u32, u32), &str> = FxHashMap::default();
        m.insert((1, 2), "a");
        m.insert((3, 4), "b");
        assert_eq!(m.get(&(1, 2)), Some(&"a"));
        assert_eq!(m.remove(&(3, 4)), Some("b"));
        assert!(!m.contains_key(&(3, 4)));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
        assert!(s.contains(&9));
    }
}
