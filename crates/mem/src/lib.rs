//! Hot-path memory primitives shared by the simulation kernel and the
//! engine (DESIGN.md §12).
//!
//! Three things live here, all dependency-free:
//!
//! * [`Slab`] / [`Arena`] — generation-checked slot arenas with a LIFO
//!   free list. The engine's in-flight tables (dispatches, DAG runs,
//!   pending batches) and the kernel's request table hand out *handles*
//!   instead of hashing sequence numbers: the per-event lookup is an
//!   index and a generation compare, not a SipHash probe.
//! * [`FxHasher`] and the [`FxHashMap`] / [`FxHashSet`] aliases — the
//!   rustc-hash multiply-rotate hasher for interior maps that must stay
//!   maps. Iteration order of these maps is never observable in reports
//!   or digests (the same rule that allows symbol interning), so the
//!   hasher swap is determinism-neutral.
//! * the `alloc-count` feature — a counting [`std::alloc::GlobalAlloc`]
//!   wrapper so allocations/event is a tracked regression metric
//!   (`BENCH_alloc.json`), not a guess.

mod fx;
mod slab;

pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use slab::{Arena, Handle, Slab};

#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Forwards to the system allocator, counting every allocation path
    /// that returns fresh memory (alloc, alloc_zeroed, and growth via
    /// realloc). Deallocations are not counted: the metric is "how often
    /// did we go to the allocator", not live heap.
    pub struct CountingAlloc;

    // SAFETY: pure forwarding to `System`; the counters are side effects.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(
                new_size.saturating_sub(layout.size()) as u64,
                Ordering::Relaxed,
            );
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn counts() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

/// Cumulative `(allocations, bytes requested)` since process start, or
/// `None` when the `alloc-count` feature is off. Callers diff two
/// snapshots around a region of interest.
pub fn alloc_counts() -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-count")]
    {
        Some(alloc_count::counts())
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}
