//! Generation-checked slot arenas.
//!
//! A [`Slab`] stores values in a dense `Vec` and hands out 48-bit
//! [`Handle`]s packing `generation:16 | index:32`. Freed slots go on a
//! LIFO free list; re-inserting bumps the slot's generation, so a stale
//! handle held across a remove *misses* instead of aliasing the slot's
//! new occupant. Lookups are an index plus a 16-bit compare — no hashing.
//!
//! Handle invariants the packing relies on elsewhere:
//!
//! * handles fit in 48 bits, leaving the top byte (and more) free for the
//!   engine's token/timer tags, including the 6-bit DAG node shift
//!   (`48 + 6 = 54 < 56`);
//! * a handle is never zero — generations start at 1 — so sentinel ids
//!   (e.g. the kernel's "unset" `RequestId(0)`) cannot collide;
//! * live handles are unique. A *dead* handle value can recur after its
//!   slot's generation wraps (65 535 frees later), which is harmless for
//!   the in-flight tables backed by these arenas: entries are removed at
//!   their terminal event, before the slot can be recycled.
//!
//! [`Arena`] wraps a `Slab` with an alternative `HashMap`-backed storage
//! mode that shares the *same* handle-allocation policy. Both modes hand
//! out identical handle sequences for identical call sequences, which is
//! what lets a differential test assert full event-stream equality
//! between a slab-backed and a map-backed engine.

use std::collections::HashMap;

/// Packed `generation:16 | index:32` slot handle. See the module docs.
pub type Handle = u64;

const INDEX_BITS: u32 = 32;
const GEN_MASK: u64 = 0xFFFF;

#[inline]
fn pack(gen: u16, index: u32) -> Handle {
    (u64::from(gen) << INDEX_BITS) | u64::from(index)
}

#[inline]
fn unpack(handle: Handle) -> (u16, u32) {
    (((handle >> INDEX_BITS) & GEN_MASK) as u16, handle as u32)
}

/// The shared allocation policy: per-slot generations plus a LIFO free
/// list. `Slab` and the map-backed `Arena` mode both drive one of these,
/// which is what makes their handle sequences identical.
#[derive(Debug, Clone, Default)]
struct HandleAlloc {
    /// Current generation per slot (1-based; bumped on free).
    gens: Vec<u16>,
    free: Vec<u32>,
}

impl HandleAlloc {
    /// Claim a slot and return its handle. Reuses the most recently freed
    /// slot first (LIFO keeps the hot end of the arena cache-resident).
    fn claim(&mut self) -> Handle {
        match self.free.pop() {
            Some(index) => pack(self.gens[index as usize], index),
            None => {
                let index = u32::try_from(self.gens.len()).expect("slab grew past 2^32 slots");
                self.gens.push(1);
                pack(1, index)
            }
        }
    }

    /// Release a slot: bump its generation (skipping 0, the never-issued
    /// generation) and put it back on the free list.
    fn release(&mut self, index: u32) {
        let gen = &mut self.gens[index as usize];
        *gen = if *gen == u16::MAX { 1 } else { *gen + 1 };
        self.free.push(index);
    }

    /// Does this handle name the slot's current generation?
    fn is_current(&self, handle: Handle) -> Option<u32> {
        let (gen, index) = unpack(handle);
        (self.gens.get(index as usize) == Some(&gen)).then_some(index)
    }
}

/// Dense generation-checked arena. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    alloc: HandleAlloc,
    /// Parallel to `alloc.gens`; `None` exactly for free slots.
    vals: Vec<Option<T>>,
    live: usize,
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            alloc: HandleAlloc::default(),
            vals: Vec::new(),
            live: 0,
        }
    }

    /// Store `val`, returning its handle.
    pub fn insert(&mut self, val: T) -> Handle {
        let handle = self.alloc.claim();
        let index = handle as u32 as usize;
        if index == self.vals.len() {
            self.vals.push(Some(val));
        } else {
            debug_assert!(self.vals[index].is_none(), "free slot holds a value");
            self.vals[index] = Some(val);
        }
        self.live += 1;
        handle
    }

    pub fn get(&self, handle: Handle) -> Option<&T> {
        let index = self.alloc.is_current(handle)?;
        self.vals[index as usize].as_ref()
    }

    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        let index = self.alloc.is_current(handle)?;
        self.vals[index as usize].as_mut()
    }

    /// Remove and return the value, freeing the slot (and invalidating
    /// every copy of this handle).
    pub fn remove(&mut self, handle: Handle) -> Option<T> {
        let index = self.alloc.is_current(handle)?;
        let val = self.vals[index as usize].take()?;
        self.alloc.release(index);
        self.live -= 1;
        Some(val)
    }

    pub fn contains(&self, handle: Handle) -> bool {
        self.get(handle).is_some()
    }

    /// Number of live entries (matches what a map's `len()` would say).
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate live entries in slot order (not insertion order). Interior
    /// use only: like Fx map iteration, the order must never reach
    /// anything observable.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.vals.iter().enumerate().filter_map(|(i, v)| {
            let val = v.as_ref()?;
            Some((pack(self.alloc.gens[i], i as u32), val))
        })
    }
}

/// Storage mode of an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaMode {
    /// Dense slab storage (the default; the fast path).
    Slab,
    /// `HashMap`-backed reference storage with identical handle sequences
    /// — the differential-testing oracle.
    Map,
}

#[derive(Debug)]
enum ArenaInner<T> {
    Slab(Slab<T>),
    Map {
        map: HashMap<Handle, T>,
        alloc: HandleAlloc,
    },
}

/// A [`Slab`] with a swappable `HashMap` reference mode. The engine's
/// in-flight tables are `Arena`s so a differential test can run the exact
/// same workload over both storages and demand identical event streams.
#[derive(Debug)]
pub struct Arena<T> {
    inner: ArenaInner<T>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// Slab-backed arena (the production mode).
    pub fn new() -> Self {
        Arena {
            inner: ArenaInner::Slab(Slab::new()),
        }
    }

    /// Map-backed reference arena. Same handles, different storage.
    pub fn new_reference() -> Self {
        Arena {
            inner: ArenaInner::Map {
                map: HashMap::new(),
                alloc: HandleAlloc::default(),
            },
        }
    }

    pub fn mode(&self) -> ArenaMode {
        match &self.inner {
            ArenaInner::Slab(_) => ArenaMode::Slab,
            ArenaInner::Map { .. } => ArenaMode::Map,
        }
    }

    pub fn insert(&mut self, val: T) -> Handle {
        match &mut self.inner {
            ArenaInner::Slab(s) => s.insert(val),
            ArenaInner::Map { map, alloc } => {
                let handle = alloc.claim();
                let prev = map.insert(handle, val);
                debug_assert!(prev.is_none(), "reference arena reissued a live handle");
                handle
            }
        }
    }

    pub fn get(&self, handle: Handle) -> Option<&T> {
        match &self.inner {
            ArenaInner::Slab(s) => s.get(handle),
            ArenaInner::Map { map, .. } => map.get(&handle),
        }
    }

    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        match &mut self.inner {
            ArenaInner::Slab(s) => s.get_mut(handle),
            ArenaInner::Map { map, .. } => map.get_mut(&handle),
        }
    }

    pub fn remove(&mut self, handle: Handle) -> Option<T> {
        match &mut self.inner {
            ArenaInner::Slab(s) => s.remove(handle),
            ArenaInner::Map { map, alloc } => {
                let val = map.remove(&handle)?;
                alloc.release(handle as u32);
                Some(val)
            }
        }
    }

    pub fn contains(&self, handle: Handle) -> bool {
        self.get(handle).is_some()
    }

    pub fn len(&self) -> usize {
        match &self.inner {
            ArenaInner::Slab(s) => s.len(),
            ArenaInner::Map { map, .. } => map.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate live entries in **storage order**: slot order for the slab
    /// mode, hash order for the reference mode. The two modes visit the
    /// same set of `(handle, value)` pairs but in different sequences, so
    /// a caller whose behaviour depends on iteration order (e.g. draining
    /// in-flight entries deterministically) must collect the handles and
    /// sort them before acting.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        match &self.inner {
            ArenaInner::Slab(s) => Iter::Slab(s.iter()),
            ArenaInner::Map { map, .. } => Iter::Map(map.iter()),
        }
    }
}

/// Unified iterator over either arena storage (see [`Arena::iter`]).
enum Iter<'a, T, S: Iterator<Item = (Handle, &'a T)>> {
    Slab(S),
    Map(std::collections::hash_map::Iter<'a, Handle, T>),
}

impl<'a, T, S: Iterator<Item = (Handle, &'a T)>> Iterator for Iter<'a, T, S> {
    type Item = (Handle, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Iter::Slab(it) => it.next(),
            Iter::Map(it) => it.next().map(|(&h, v)| (h, v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<&str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get_mut(b).map(|v| *v), Some("b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double remove misses");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn handles_are_nonzero_and_fit_48_bits() {
        let mut slab: Slab<u32> = Slab::new();
        for i in 0..1000 {
            let h = slab.insert(i);
            assert_ne!(h, 0);
            assert!(h < 1 << 48, "handle {h:#x} exceeds 48 bits");
        }
    }

    #[test]
    fn stale_handle_never_aliases_the_recycled_slot() {
        let mut slab: Slab<&str> = Slab::new();
        let old = slab.insert("old");
        assert_eq!(slab.remove(old), Some("old"));
        let new = slab.insert("new");
        // Same slot, different generation.
        assert_eq!(old as u32, new as u32);
        assert_ne!(old, new);
        assert_eq!(slab.get(old), None);
        assert_eq!(slab.remove(old), None);
        assert_eq!(slab.get(new), Some(&"new"));
    }

    #[test]
    fn generation_wrap_skips_zero() {
        let mut slab: Slab<u8> = Slab::new();
        let mut h = slab.insert(0);
        // Cycle one slot through a full generation wrap.
        for _ in 0..(u16::MAX as u32 + 10) {
            slab.remove(h);
            h = slab.insert(0);
            assert_ne!(h >> 32, 0, "generation 0 must never be issued");
            assert!(slab.contains(h));
        }
    }

    #[test]
    fn lifo_reuse_keeps_the_arena_dense() {
        let mut slab: Slab<u32> = Slab::new();
        let handles: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(handles[1]);
        slab.remove(handles[3]);
        // Most recently freed slot (index 3) comes back first.
        assert_eq!(slab.insert(10) as u32, handles[3] as u32);
        assert_eq!(slab.insert(11) as u32, handles[1] as u32);
    }

    #[test]
    fn iter_visits_exactly_the_live_entries() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.insert(3);
        slab.remove(b);
        let got: Vec<(Handle, u32)> = slab.iter().map(|(h, v)| (h, *v)).collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().any(|&(h, v)| h == a && v == 1));
        assert!(got.iter().all(|&(h, _)| h != b));
    }

    #[test]
    fn arena_iter_agrees_across_modes_once_sorted() {
        let mut slab: Arena<u32> = Arena::new();
        let mut map: Arena<u32> = Arena::new_reference();
        let mut live = Vec::new();
        for i in 0..6u32 {
            let h1 = slab.insert(i);
            let h2 = map.insert(i);
            assert_eq!(h1, h2);
            live.push(h1);
        }
        for &h in &[live[1], live[4]] {
            slab.remove(h);
            map.remove(h);
        }
        let mut a: Vec<(Handle, u32)> = slab.iter().map(|(h, v)| (h, *v)).collect();
        let mut b: Vec<(Handle, u32)> = map.iter().map(|(h, v)| (h, *v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "modes visit the same live set");
        assert_eq!(a.len(), 4);
    }

    /// One interleaved op sequence, applied to both arena modes: handles
    /// and observable outcomes must match step for step.
    fn apply_ops(ops: &[(bool, usize)]) {
        let mut slab: Arena<usize> = Arena::new();
        let mut map: Arena<usize> = Arena::new_reference();
        let mut live: Vec<Handle> = Vec::new();
        let mut dead: Vec<Handle> = Vec::new();
        for &(is_insert, x) in ops {
            if is_insert || live.is_empty() {
                let h1 = slab.insert(x);
                let h2 = map.insert(x);
                assert_eq!(h1, h2, "modes diverged on handle allocation");
                live.push(h1);
            } else {
                let h = live.remove(x % live.len());
                assert_eq!(slab.remove(h), map.remove(h));
                dead.push(h);
            }
            assert_eq!(slab.len(), map.len());
            for &h in &live {
                assert_eq!(slab.get(h), map.get(h));
                assert!(slab.contains(h));
            }
            for &h in &dead {
                assert_eq!(slab.get(h), None, "stale handle resolved");
                assert_eq!(map.get(h), None);
            }
        }
    }

    proptest! {
        #[test]
        fn slab_and_reference_modes_are_indistinguishable(
            ops in proptest::collection::vec((any::<bool>(), 0usize..64), 1..200)
        ) {
            apply_ops(&ops);
        }

        /// Generation reuse under heavy churn: a handle freed at any point
        /// must never read back a later occupant of its slot.
        #[test]
        fn stale_handles_stay_dead_under_churn(
            seeds in proptest::collection::vec(0usize..8, 1..300)
        ) {
            let mut slab: Slab<usize> = Slab::new();
            let mut live: Vec<(Handle, usize)> = Vec::new();
            let mut dead: Vec<Handle> = Vec::new();
            for (step, s) in seeds.iter().enumerate() {
                if s % 2 == 0 || live.is_empty() {
                    let h = slab.insert(step);
                    live.push((h, step));
                } else {
                    let (h, v) = live.remove(s % live.len());
                    prop_assert_eq!(slab.remove(h), Some(v));
                    dead.push(h);
                }
                for &(h, v) in &live {
                    prop_assert_eq!(slab.get(h).copied(), Some(v));
                }
                for &h in &dead {
                    prop_assert!(slab.get(h).is_none(), "stale handle aliased a slot");
                }
            }
        }
    }
}
