//! Lifecycle API tests: the single [`TapEngine::apply_lifecycle`] surface
//! (install / uninstall / onboard / retire) and the per-applet unwind the
//! static workload never needed.
//!
//! The invariants under test are the ones churn leans on at fleet scale:
//! an uninstall ack means *done* — the timing-wheel entry is gone, armed
//! realtime state is cleared, identity routing is pruned, a coalescing
//! group shrinks (evicting its cached batch body and reverting the
//! survivor's `grouped` hint), and in-flight work dead-letters so the
//! conservation invariant `events_new == actions_ok + actions_filtered +
//! dead_letters` holds through arbitrary churn. Slab handles reclaimed by
//! churn must be reused identically across both arena storage modes.

use devices::service_core::{Processed, ServiceCore};
use engine::{
    ActionRef, Applet, AppletId, EngineConfig, FlightRecorder, LifecycleAck, LifecycleError,
    LifecycleEvent, ObsEvent, TapEngine, TriggerRef,
};
use proptest::prelude::*;
use simnet::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

const SLUG: &str = "lifesvc";
const SLOTS: usize = 3;

/// Partner service under churn: counts action deliveries per slot and can
/// swallow action requests (no reply, ever) so dispatches stay in flight
/// long enough for a retirement to have something to drain.
struct LifeService {
    core: ServiceCore,
    blackhole_actions: bool,
    received: HashMap<usize, u32>,
}

impl LifeService {
    fn new(slug: &str, key: &str) -> Self {
        let mut ep = ServiceEndpoint::new(ServiceSlug::new(slug), ServiceKey(key.into()));
        for k in 0..SLOTS {
            ep = ep
                .with_trigger(format!("t{k}").as_str())
                .with_action(format!("act{k}").as_str());
        }
        LifeService {
            core: ServiceCore::new(ep),
            blackhole_actions: false,
            received: HashMap::new(),
        }
    }
}

impl Node for LifeService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { action, .. } => {
                let slot: usize = action
                    .as_str()
                    .strip_prefix("act")
                    .and_then(|s| s.parse().ok())
                    .expect("action slot");
                *self.received.entry(slot).or_default() += 1;
                if self.blackhole_actions {
                    HandlerResult::Deferred
                } else {
                    HandlerResult::Reply(ServiceEndpoint::action_ok("ok"))
                }
            }
            Processed::Query { fields, .. } => {
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

fn applet(k: usize, id: u32, user: &UserId) -> Applet {
    let mut action_fields = FieldMap::new();
    action_fields.insert("eid".into(), "{{id}}".into());
    Applet::new(
        AppletId(id),
        format!("life slot {k}"),
        user.clone(),
        TriggerRef {
            service: ServiceSlug::new(SLUG),
            trigger: TriggerSlug::new(format!("t{k}")),
            fields: FieldMap::new(),
        },
        ActionRef {
            service: ServiceSlug::new(SLUG),
            action: ActionSlug::new(format!("act{k}")),
            fields: action_fields,
        },
    )
}

struct World {
    sim: Sim,
    engine: NodeId,
    svc: NodeId,
    user: UserId,
}

/// One engine, one service, `installs` applets t0..t<installs> installed
/// through the lifecycle surface.
fn world(cfg: EngineConfig, seed: u64, installs: usize) -> World {
    let mut sim = Sim::new(seed);
    let svc = sim.add_node(SLUG, LifeService::new(SLUG, "sk_life"));
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    sim.link(engine, svc, LinkSpec::datacenter());
    let user = UserId::new("u");
    let token = sim.with_node::<LifeService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_life".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for k in 0..installs {
            let ack = e
                .apply_lifecycle(
                    ctx,
                    LifecycleEvent::InstallApplet(applet(k, k as u32 + 1, &user)),
                )
                .expect("applet installs");
            assert_eq!(ack, LifecycleAck::Installed(AppletId(k as u32 + 1)));
        }
    });
    World {
        sim,
        engine,
        svc,
        user,
    }
}

impl World {
    fn emit(&mut self, k: usize, eid: u32) {
        let user = self.user.clone();
        self.sim.with_node::<LifeService, _>(self.svc, |s, ctx| {
            let id = format!("e{eid:04}");
            let ev = TriggerEvent::new(id.clone(), ctx.now().as_secs_f64() as u64)
                .with_ingredient("id", id);
            s.core
                .record_event(ctx, &TriggerSlug::new(format!("t{k}")), &user, ev, |_| true)
        });
    }

    fn stats(&self) -> engine::EngineStats {
        self.sim.node_ref::<TapEngine>(self.engine).stats
    }

    fn apply(&mut self, ev: LifecycleEvent) -> Result<LifecycleAck, LifecycleError> {
        self.sim
            .with_node::<TapEngine, _>(self.engine, |e, ctx| e.apply_lifecycle(ctx, ev))
    }
}

/// Conservation through churn: every new event either completed, was
/// filtered, or dead-lettered — nothing leaks in flight once idle.
fn assert_conserved(stats: &engine::EngineStats) {
    assert_eq!(
        stats.events_new,
        stats.actions_ok + stats.actions_filtered + stats.dead_letters,
        "conservation violated: {stats:?}"
    );
}

#[test]
fn uninstall_ack_means_done_no_poll_no_activation_after() {
    let mut w = world(EngineConfig::fast(), 101, 1);
    w.sim.run_until(SimTime::from_secs(5));
    let ack = w.apply(LifecycleEvent::UninstallApplet(AppletId(1)));
    assert_eq!(ack, Ok(LifecycleAck::Uninstalled(AppletId(1))));
    let at_uninstall = w.stats();
    // Events emitted after the ack must never activate.
    w.emit(0, 0);
    w.sim.run_until(SimTime::from_secs(90));
    let after = w.stats();
    // Timing-wheel entry gone: 1-second polling would have added dozens.
    assert_eq!(
        after.polls_sent, at_uninstall.polls_sent,
        "pending poll survived the uninstall"
    );
    assert_eq!(after.events_new, 0, "activation after uninstall ack");
    assert_eq!(after.actions_sent, 0);
    assert_conserved(&after);
    // A second uninstall of the same id is a clean error, not a panic.
    assert_eq!(
        w.apply(LifecycleEvent::UninstallApplet(AppletId(1))),
        Err(LifecycleError::UnknownApplet(AppletId(1)))
    );
}

#[test]
fn uninstall_clears_realtime_state_and_identity_routing() {
    // Long cadence so any poll in the window is attributable: either the
    // leaked wheel entry (120 s tick) or a leaked realtime arm.
    let mut cfg = EngineConfig::fast().allow_realtime(ServiceSlug::new(SLUG));
    cfg.polling = engine::PollPolicy::fixed(120.0);
    let mut w = world(cfg, 102, 1);
    let engine = w.engine;
    w.sim
        .with_node::<LifeService, _>(w.svc, |s, _| s.core.enable_realtime(engine));
    w.sim.run_until(SimTime::from_secs(10));
    // First hint: honored, one out-of-cadence poll, one delivery.
    w.emit(0, 0);
    w.sim.run_until(SimTime::from_secs(30));
    let before = w.stats();
    assert_eq!(before.realtime_notifications, 1, "{before:?}");
    assert_eq!(before.realtime_polls, 1, "{before:?}");
    assert_eq!(before.events_new, 1, "{before:?}");
    let ack = w.apply(LifecycleEvent::UninstallApplet(AppletId(1)));
    assert_eq!(ack, Ok(LifecycleAck::Uninstalled(AppletId(1))));
    let at_uninstall = w.stats();
    // A hint after the ack resolves through identity routing — pruned, so
    // it neither arms a poll nor counts as suppressed-against-a-live-arm.
    w.emit(0, 1);
    // Run through two full 120 s cadence periods.
    w.sim.run_until(SimTime::from_secs(280));
    let after = w.stats();
    assert_eq!(
        after.polls_sent, at_uninstall.polls_sent,
        "cadence wheel entry survived the uninstall: {after:?}"
    );
    assert_eq!(
        after.realtime_polls, before.realtime_polls,
        "a hint armed a poll on a tombstone: {after:?}"
    );
    assert_eq!(
        after.realtime_suppressed, before.realtime_suppressed,
        "a hint matched a tombstoned slot: {after:?}"
    );
    assert_eq!(after.events_new, before.events_new);
    assert_conserved(&after);
}

/// Satellite regression: uninstalling one member of a two-applet
/// coalescing group must evict the group's cached batch body and revert
/// the survivor's `grouped` hint — the survivor returns to the singleton
/// fast path instead of replaying a stale two-member batch forever.
#[test]
fn uninstalling_a_grouped_member_reverts_the_survivor_to_solo() {
    let cfg = EngineConfig::fast().with_batch_polling(true);
    let mut w = world(cfg, 103, 2);
    w.sim.run_until(SimTime::from_secs(30));
    let before = w.stats();
    assert!(before.polls_batched > 0, "pair never coalesced: {before:?}");
    let ack = w.apply(LifecycleEvent::UninstallApplet(AppletId(1)));
    assert_eq!(ack, Ok(LifecycleAck::Uninstalled(AppletId(1))));
    w.sim.run_until(SimTime::from_secs(90));
    let mid = w.stats();
    assert_eq!(
        mid.polls_batched, before.polls_batched,
        "survivor kept batch-polling solo (stale cached body): {mid:?}"
    );
    assert!(
        mid.polls_sent > before.polls_sent + 30,
        "survivor stopped polling entirely: {mid:?}"
    );
    // The survivor still delivers: an event on its trigger activates.
    w.emit(1, 0);
    w.sim.run_until(SimTime::from_secs(120));
    let after = w.stats();
    assert_eq!(after.events_new, mid.events_new + 1, "{after:?}");
    assert_eq!(after.actions_ok, mid.actions_ok + 1, "{after:?}");
    assert_eq!(
        w.sim
            .node_ref::<LifeService>(w.svc)
            .received
            .get(&1)
            .copied(),
        Some(1),
        "survivor's action arrived"
    );
    assert_conserved(&after);
}

#[test]
fn retirement_drains_in_flight_dispatches_to_dead_letters() {
    let mut w = world(EngineConfig::fast(), 104, 2);
    w.sim
        .with_node::<LifeService, _>(w.svc, |s, _| s.blackhole_actions = true);
    w.sim.run_until(SimTime::from_secs(5));
    // One activation whose dispatch the service swallows: in flight, and
    // with a 10 s request timeout still far from its retry.
    w.emit(0, 0);
    w.sim.run_until(SimTime::from_secs(8));
    let before = w.stats();
    assert_eq!(before.actions_sent, 1, "{before:?}");
    assert_eq!(before.actions_ok, 0, "{before:?}");
    let ack = w.apply(LifecycleEvent::RetireService(ServiceSlug::new(SLUG)));
    assert_eq!(
        ack,
        Ok(LifecycleAck::Retired {
            service: ServiceSlug::new(SLUG),
            applets_removed: 2,
        })
    );
    let at_retire = w.stats();
    assert_eq!(at_retire.dead_letters, 1, "{at_retire:?}");
    assert_conserved(&at_retire);
    // Run far past the request timeout: the late timeout fires against a
    // reclaimed slab handle and must miss — no retry, no double count.
    w.sim.run_until(SimTime::from_secs(120));
    let after = w.stats();
    assert_eq!(after.dead_letters, at_retire.dead_letters, "{after:?}");
    assert_eq!(after.actions_retried, 0, "{after:?}");
    assert_eq!(
        after.polls_sent, at_retire.polls_sent,
        "a retired service is still being polled: {after:?}"
    );
    assert_conserved(&after);
    // Retiring it again is a clean error.
    assert_eq!(
        w.apply(LifecycleEvent::RetireService(ServiceSlug::new(SLUG))),
        Err(LifecycleError::UnknownService(ServiceSlug::new(SLUG)))
    );
}

#[test]
fn onboard_service_opens_installs_and_realtime_mid_run() {
    let mut w = world(EngineConfig::fast(), 105, 1);
    w.sim.run_until(SimTime::from_secs(5));
    // A second partner exists as a node but was never registered: an
    // install referencing it is rejected.
    let late = w
        .sim
        .add_node("latesvc", LifeService::new("late", "sk_late"));
    w.sim.link(w.engine, late, LinkSpec::datacenter());
    let user = w.user.clone();
    let token = w.sim.with_node::<LifeService, _>(late, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    let mut orphan = applet(0, 50, &user);
    orphan.trigger.service = ServiceSlug::new("late");
    orphan.action.service = ServiceSlug::new("late");
    let err = w.apply(LifecycleEvent::InstallApplet(orphan.clone()));
    assert!(
        matches!(err, Err(LifecycleError::Install(_))),
        "install against an unonboarded service must fail: {err:?}"
    );
    // Onboard it mid-run (realtime-honored), connect the user, reinstall.
    let ack = w.apply(LifecycleEvent::OnboardService {
        slug: ServiceSlug::new("late"),
        node: late,
        key: ServiceKey("sk_late".into()),
        realtime: true,
    });
    assert_eq!(ack, Ok(LifecycleAck::Onboarded(ServiceSlug::new("late"))));
    let engine = w.engine;
    w.sim.with_node::<TapEngine, _>(engine, |e, _| {
        e.set_token(user.clone(), ServiceSlug::new("late"), token);
    });
    w.sim
        .with_node::<LifeService, _>(late, |s, _| s.core.enable_realtime(engine));
    assert_eq!(
        w.apply(LifecycleEvent::InstallApplet(orphan)),
        Ok(LifecycleAck::Installed(AppletId(50)))
    );
    w.sim.run_until(SimTime::from_secs(12));
    // Its realtime hints are honored (the onboard added the allowlist
    // entry), and its trigger activates end to end.
    let user2 = w.user.clone();
    w.sim.with_node::<LifeService, _>(late, |s, ctx| {
        let ev = TriggerEvent::new("late01", ctx.now().as_secs_f64() as u64)
            .with_ingredient("id", "late01");
        s.core
            .record_event(ctx, &TriggerSlug::new("t0"), &user2, ev, |_| true);
    });
    w.sim.run_until(SimTime::from_secs(40));
    let stats = w.stats();
    assert!(stats.hints_honored >= 1, "{stats:?}");
    assert_eq!(stats.hints_ignored, 0, "{stats:?}");
    assert!(stats.events_new >= 1, "{stats:?}");
    assert_conserved(&stats);
}

/// One churn run: install SLOTS applets, then per round emit on every
/// live slot and toggle one applet (uninstall if live, fresh install if
/// not) so slab handles are freed and reused mid-traffic. Returns the
/// full observable event stream.
fn churn_run(seed: u64, ops: &[usize], reference: bool) -> Vec<ObsEvent> {
    let cfg = EngineConfig::fast().with_batch_polling(true);
    let mut w = world(cfg, seed, SLOTS);
    if reference {
        w.sim
            .node_mut::<TapEngine>(w.engine)
            .use_reference_storage();
    }
    let flight = Arc::new(FlightRecorder::new(1 << 20));
    w.sim
        .node_mut::<TapEngine>(w.engine)
        .set_sink(flight.clone());
    w.sim.run_until(SimTime::from_secs(5));
    // installed[k] holds slot k's current applet id, None while churned
    // out; fresh installs take ids from 100 up so they never collide.
    let mut installed: Vec<Option<u32>> = (0..SLOTS).map(|k| Some(k as u32 + 1)).collect();
    let mut next_id = 100u32;
    let mut eid = 0u32;
    for (round, &k) in ops.iter().enumerate() {
        for (slot, state) in installed.iter().enumerate() {
            if state.is_some() {
                w.emit(slot, eid);
            }
            eid += 1;
        }
        match installed[k] {
            Some(id) => {
                w.apply(LifecycleEvent::UninstallApplet(AppletId(id)))
                    .expect("live applet uninstalls");
                installed[k] = None;
            }
            None => {
                let id = next_id;
                next_id += 1;
                let user = w.user.clone();
                w.apply(LifecycleEvent::InstallApplet(applet(k, id, &user)))
                    .expect("fresh applet installs");
                installed[k] = Some(id);
            }
        }
        w.sim
            .run_until(SimTime::from_secs(5 + (round as u64 + 1) * 7));
    }
    let base = w.sim.now();
    w.sim.run_until(base + SimDuration::from_secs(60));
    assert_conserved(&w.stats());
    flight.events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Slab-handle reuse across churn bursts is storage-invariant: the
    /// slab and reference arenas hand out the same handles in the same
    /// order through any install/uninstall interleaving, so the full
    /// observable event stream matches element for element.
    #[test]
    fn churn_bursts_reuse_handles_identically_across_storage_modes(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(0usize..SLOTS, 1..6),
    ) {
        let slab = churn_run(seed, &ops, false);
        let refr = churn_run(seed, &ops, true);
        prop_assert_eq!(slab.len(), refr.len(), "stream lengths diverge");
        for (i, (a, b)) in slab.iter().zip(refr.iter()).enumerate() {
            prop_assert_eq!(a, b, "streams diverge at event {}", i);
        }
    }
}
