//! Engine resilience under deterministic fault injection.
//!
//! Three recovery scenarios, each driven by a declarative fault plan
//! rather than hand-rolled link flips:
//!
//! * **Conservation** — with link loss and periodic server outages, every
//!   trigger event is eventually delivered or dead-lettered; none vanish.
//! * **Circuit breaking** — a sustained `ServiceCore` outage trips the
//!   per-service breaker (which sheds polls) and the breaker recovers once
//!   the service heals, after which delivery resumes.
//! * **Batch degradation** — a failed batch poll demotes its group to
//!   singleton polls for a cycle, and the group re-coalesces after the
//!   outage passes.
//!
//! The seed comes from `CHAOS_SEED` (default 2017) so CI can sweep a seed
//! matrix over the same invariants.

use devices::service_core::{Processed, ServiceCore};
use engine::{ActionRef, Applet, AppletId, EngineConfig, TapEngine, TriggerRef};
use simnet::chaos::{FaultPlan, ServerFault, ServerFaultPlan};
use simnet::net::LinkId;
use simnet::prelude::*;
use std::collections::HashSet;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

const SLOTS: usize = 4;
const SLUG: &str = "chaotic";

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2017)
}

/// A service that records the `eid` ingredient of every action request it
/// executes (duplicates possible when an action response is lost and the
/// engine retries a request the service already served).
struct ChaoticService {
    core: ServiceCore,
    received: Vec<String>,
}

impl Node for ChaoticService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { fields, .. } => {
                self.received
                    .push(fields.get("eid").cloned().unwrap_or_default());
                HandlerResult::Reply(ServiceEndpoint::action_ok("ok"))
            }
            Processed::Query { fields, .. } => {
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

struct Harness {
    sim: Sim,
    engine: NodeId,
    svc: NodeId,
    link: LinkId,
    next_eid: u32,
}

/// Engine + service with `SLOTS` subscriptions of one user, fast polling,
/// the full resilience stack, and subscriptions established before any
/// fault is applied.
fn harness(batch_polling: bool, breaker: bool) -> Harness {
    harness_with(batch_polling, breaker, false)
}

fn harness_with(batch_polling: bool, breaker: bool, realtime: bool) -> Harness {
    let mut cfg = EngineConfig::fast().resilient();
    cfg.batch_polling = batch_polling;
    if !breaker {
        cfg.breaker = None;
    }
    if realtime {
        cfg = cfg.allow_realtime(ServiceSlug::new(SLUG));
    }
    let mut sim = Sim::new(chaos_seed());
    let mut ep = ServiceEndpoint::new(ServiceSlug::new(SLUG), ServiceKey("sk_chaos".into()));
    for k in 0..SLOTS {
        ep = ep
            .with_trigger(format!("t{k}").as_str())
            .with_action(format!("act{k}").as_str());
    }
    let svc = sim.add_node(
        SLUG,
        ChaoticService {
            core: ServiceCore::new(ep),
            received: Vec::new(),
        },
    );
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    if realtime {
        sim.with_node::<ChaoticService, _>(svc, |s, _| s.core.enable_realtime(engine));
    }
    let link = sim.link(engine, svc, LinkSpec::datacenter());

    let user = UserId::new("u");
    let token = sim.with_node::<ChaoticService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_chaos".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for k in 0..SLOTS {
            let mut action_fields = FieldMap::new();
            action_fields.insert("eid".into(), "{{id}}".into());
            e.install_applet(
                ctx,
                Applet::new(
                    AppletId(k as u32 + 1),
                    format!("chaos slot {k}"),
                    user.clone(),
                    TriggerRef {
                        service: ServiceSlug::new(SLUG),
                        trigger: TriggerSlug::new(format!("t{k}")),
                        fields: FieldMap::new(),
                    },
                    ActionRef {
                        service: ServiceSlug::new(SLUG),
                        action: ActionSlug::new(format!("act{k}")),
                        fields: action_fields,
                    },
                ),
            )
            .expect("applet installs");
        }
    });
    // Clean settle: every subscription is learned before faults start.
    sim.run_until(SimTime::from_secs(5));
    Harness {
        sim,
        engine,
        svc,
        link,
        next_eid: 0,
    }
}

impl Harness {
    /// Fire slot `k`'s trigger now; the emit must match the (established)
    /// subscription. Returns the event id.
    fn emit(&mut self, k: usize) -> String {
        let eid = format!("e{:04}", self.next_eid);
        self.next_eid += 1;
        let id = eid.clone();
        self.sim.with_node::<ChaoticService, _>(self.svc, |s, ctx| {
            let ev = TriggerEvent::new(id.clone(), ctx.now().as_secs_f64() as u64)
                .with_ingredient("id", id);
            let matched = s.core.record_event(
                ctx,
                &TriggerSlug::new(format!("t{k}")),
                &UserId::new("u"),
                ev,
                |_| true,
            );
            assert_eq!(matched, 1, "subscription t{k} is established");
        });
        eid
    }

    fn stats(&self) -> engine::EngineStats {
        self.sim.node_ref::<TapEngine>(self.engine).stats
    }

    fn received(&self) -> Vec<String> {
        self.sim
            .node_ref::<ChaoticService>(self.svc)
            .received
            .clone()
    }
}

/// (a) Under 2% link loss plus periodic 503 outages and an injected
/// server-side timeout window, every emitted event is either delivered or
/// dead-lettered — the engine never silently drops one.
#[test]
fn every_event_is_delivered_or_dead_lettered() {
    let mut h = harness(false, true);
    let horizon = SimTime::from_secs(300);
    let plan = FaultPlan::new().link_loss(h.link, 0.02, SimTime::from_secs(5), horizon);
    h.sim.apply_fault_plan(&plan);
    let outages = ServerFaultPlan::new()
        .periodic(
            ServerFault::Http503 {
                retry_after_secs: 2,
            },
            SimTime::from_secs(10),
            SimDuration::from_secs(30),
            SimDuration::from_secs(8),
            SimTime::from_secs(120),
        )
        .window(
            ServerFault::Timeout,
            SimTime::from_secs(95),
            SimTime::from_secs(100),
        );
    h.sim.with_node::<ChaoticService, _>(h.svc, move |s, _| {
        s.core.fault_plan = Some(outages);
    });

    // 24 events on a fixed 2 s schedule, straddling every fault window.
    let mut emitted = Vec::new();
    for i in 0..24u64 {
        h.sim.run_until(SimTime::from_secs(6 + 2 * i));
        let slot = (i as usize) % SLOTS;
        emitted.push(h.emit(slot));
    }
    // Faults end at 120 s; leave ample room for backoff chains to finish.
    h.sim.run_until(SimTime::from_secs(300));

    let stats = h.stats();
    assert_eq!(
        stats.events_new, 24,
        "every buffered event is eventually fetched: {stats:?}"
    );
    assert_eq!(
        stats.actions_ok + stats.dead_letters,
        24,
        "delivered + dead-lettered == triggered: {stats:?}"
    );
    assert_eq!(stats.actions_failed, stats.dead_letters);
    // Everything not dead-lettered reached the service (duplicates from
    // lost action responses are allowed; silent loss is not).
    let unique: HashSet<String> = h.received().into_iter().collect();
    assert!(
        unique.len() as u64 >= 24 - stats.dead_letters,
        "{} unique actions received, {} dead-lettered",
        unique.len(),
        stats.dead_letters
    );
    // The faults actually exercised the retry machinery.
    assert!(stats.polls_failed > 0, "faults were injected: {stats:?}");
    assert!(stats.polls_retried > 0, "poll retries engaged: {stats:?}");
}

/// (b) A sustained outage trips the per-service circuit breaker, polls are
/// shed while it is open, and delivery resumes once the service heals.
#[test]
fn breaker_trips_during_outage_and_recovers() {
    let mut h = harness(false, true);
    // Total outage: every request 500s from t=10 s to t=70 s.
    let outage = ServerFaultPlan::new().window(
        ServerFault::Http500,
        SimTime::from_secs(10),
        SimTime::from_secs(70),
    );
    h.sim.with_node::<ChaoticService, _>(h.svc, move |s, _| {
        s.core.fault_plan = Some(outage);
    });

    // One event mid-outage (buffered server-side, invisible to the engine
    // until polls succeed again) and one after recovery.
    h.sim.run_until(SimTime::from_secs(30));
    h.emit(0);
    let mid = h.stats();
    assert!(mid.breaker_trips >= 1, "outage trips the breaker: {mid:?}");
    assert!(mid.polls_shed > 0, "open breaker sheds polls: {mid:?}");
    assert_eq!(mid.actions_ok, 0, "nothing delivered during the outage");

    h.sim.run_until(SimTime::from_secs(90));
    h.emit(1);
    h.sim.run_until(SimTime::from_secs(150));

    let stats = h.stats();
    assert_eq!(
        stats.events_new, 2,
        "both events fetched after recovery: {stats:?}"
    );
    assert_eq!(stats.actions_ok, 2, "both delivered: {stats:?}");
    assert_eq!(stats.dead_letters, 0);
    // Recovery is real: polls succeed again after the breaker's probe, so
    // shedding stops growing. (A still-open breaker would shed every poll
    // between t=90 and t=150.)
    let healthy_window_polls = stats.polls_sent - mid.polls_sent;
    assert!(
        healthy_window_polls > 30,
        "polling resumed post-outage: {healthy_window_polls} polls in 120 s"
    );
}

/// (d) An immediate poll armed by a realtime notification that fires into
/// an open circuit breaker is shed like any other poll, and the
/// subscription falls back to cadence polling — the hinted event is still
/// delivered once the service heals, with no breaker bypass.
#[test]
fn realtime_poll_into_open_breaker_is_shed_and_falls_back_to_cadence() {
    let mut h = harness_with(false, true, true);
    // Total outage from t=10 s to t=70 s; plenty to trip the breaker.
    let outage = ServerFaultPlan::new().window(
        ServerFault::Http500,
        SimTime::from_secs(10),
        SimTime::from_secs(70),
    );
    h.sim.with_node::<ChaoticService, _>(h.svc, move |s, _| {
        s.core.fault_plan = Some(outage);
    });

    // Wait until the breaker is open, then fire a trigger: the service
    // pushes a notification, the engine honors it and arms an immediate
    // poll — which the open breaker must shed.
    h.sim.run_until(SimTime::from_secs(30));
    let pre = h.stats();
    assert!(pre.breaker_trips >= 1, "breaker is open: {pre:?}");
    h.emit(0);
    h.sim.run_until(SimTime::from_secs(40));
    let mid = h.stats();
    assert_eq!(
        mid.realtime_notifications, 1,
        "the hint was honored: {mid:?}"
    );
    assert_eq!(
        mid.realtime_polls, 0,
        "the armed poll was shed, not sent: {mid:?}"
    );
    assert!(mid.polls_shed > pre.polls_shed, "shed count grew: {mid:?}");
    assert_eq!(mid.events_new, 0, "nothing fetched through an open breaker");

    // After the outage the ordinary cadence (plus breaker probes) fetches
    // the buffered event — the realtime path stayed out of the way.
    h.sim.run_until(SimTime::from_secs(150));
    let stats = h.stats();
    assert_eq!(stats.events_new, 1, "cadence polling recovered: {stats:?}");
    assert_eq!(stats.actions_ok, 1, "the event was delivered: {stats:?}");
    assert_eq!(stats.dead_letters, 0);
    assert_eq!(
        stats.realtime_polls, 0,
        "no realtime poll ever bypassed the breaker: {stats:?}"
    );
}

/// (c) A failed batch poll demotes the group to singleton polls for a
/// cycle; the group re-coalesces once the outage passes.
#[test]
fn batch_polling_degrades_to_singleton_and_recoalesces() {
    // Breaker off so the short outage exercises the batch fallback path
    // instead of tripping into shed mode.
    let mut h = harness(true, false);
    let outage = ServerFaultPlan::new().window(
        ServerFault::Http500,
        SimTime::from_secs(10),
        SimTime::from_secs(14),
    );
    h.sim.with_node::<ChaoticService, _>(h.svc, move |s, _| {
        s.core.fault_plan = Some(outage);
    });

    let before = h.stats();
    assert!(
        before.polls_batched > 0,
        "group coalesces before the outage"
    );
    assert_eq!(before.batch_fallbacks, 0);

    h.sim.run_until(SimTime::from_secs(20));
    let after_outage = h.stats();
    assert!(
        after_outage.batch_fallbacks >= 1,
        "batch failure demotes the group: {after_outage:?}"
    );

    // Post-outage: the group re-coalesces and delivers through batches.
    h.sim.run_until(SimTime::from_secs(40));
    h.emit(2);
    h.sim.run_until(SimTime::from_secs(80));
    let stats = h.stats();
    assert!(
        stats.polls_batched > after_outage.polls_batched + 20,
        "group re-coalesced after the outage: {stats:?}"
    );
    assert_eq!(stats.batch_fallbacks, after_outage.batch_fallbacks);
    assert_eq!(stats.events_new, 1);
    assert_eq!(stats.actions_ok, 1, "delivery works through batches again");
}
