//! Property-based tests for engine components.

use engine::applet::substitute_fields;
use engine::loopdetect::{RuntimeLoopDetector, StaticLoopDetector};
use engine::{
    ActionRef, Applet, AppletId, BackoffPolicy, Condition, PollPolicy, RetryPolicy, TriggerRef,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::time::{SimDuration, SimTime};
use tap_protocol::FailureClass;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

fn arb_fields() -> impl Strategy<Value = FieldMap> {
    proptest::collection::btree_map("[a-z_]{1,10}", "[ -~]{0,30}", 0..5)
}

proptest! {
    /// Substitution never panics and is a no-op when the template has no
    /// placeholders.
    #[test]
    fn substitution_total(template in "[ -~]{0,60}", ing in arb_fields()) {
        let fields: FieldMap =
            [("k".to_string(), template.clone())].into_iter().collect();
        let out = substitute_fields(&fields, &ing);
        if !template.contains("{{") {
            prop_assert_eq!(&out["k"], &template);
        }
        // Output never contains a *resolved* placeholder for a known key.
        for key in ing.keys() {
            let pat = format!("{{{{{key}}}}}");
            prop_assert!(!out["k"].contains(&pat));
        }
    }

    /// Poll gaps are always positive and bounded by the model.
    #[test]
    fn poll_gaps_positive(seed in any::<u64>(), add_count in 0u64..10_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let applet = applet_with(add_count);
        for policy in [
            PollPolicy::ifttt_like(),
            PollPolicy::fixed(1.0),
            PollPolicy::smart(1_000),
        ] {
            for _ in 0..16 {
                let gap = policy.next_gap(&applet, &mut rng);
                prop_assert!(gap > SimDuration::ZERO);
                prop_assert!(gap <= SimDuration::from_secs(901), "gap {gap}");
            }
        }
    }

    /// Condition combinator laws: Not(Not(c)) ≡ c, All([c]) ≡ c, Any([c]) ≡ c.
    #[test]
    fn condition_laws(ing in arb_fields(), key in "[a-z_]{1,10}", value in "[ -~]{0,20}") {
        let c = Condition::Equals { key, value };
        let double_not = Condition::Not(Box::new(Condition::Not(Box::new(c.clone()))));
        prop_assert_eq!(double_not.eval(&ing), c.eval(&ing));
        prop_assert_eq!(Condition::All(vec![c.clone()]).eval(&ing), c.eval(&ing));
        prop_assert_eq!(Condition::Any(vec![c.clone()]).eval(&ing), c.eval(&ing));
        // De Morgan on a pair.
        let d = Condition::Has { key: "x".into() };
        let lhs = Condition::Not(Box::new(Condition::All(vec![c.clone(), d.clone()])));
        let rhs = Condition::Any(vec![
            Condition::Not(Box::new(c.clone())),
            Condition::Not(Box::new(d)),
        ]);
        prop_assert_eq!(lhs.eval(&ing), rhs.eval(&ing));
    }

    /// The runtime loop detector flags iff more than `max` executions land
    /// in the window, for any execution schedule.
    #[test]
    fn runtime_detector_threshold_exact(
        gaps in proptest::collection::vec(0u64..200, 1..40),
        max in 1usize..10,
        window in 10u64..500,
    ) {
        let mut det = RuntimeLoopDetector::new(max, SimDuration::from_secs(window));
        let id = AppletId(1);
        let mut t = 0u64;
        let mut times: Vec<u64> = Vec::new();
        let mut expected_flag = false;
        for g in gaps {
            t += g;
            times.push(t);
            let in_window =
                times.iter().filter(|x| **x + window >= t && **x <= t).count();
            if in_window > max {
                expected_flag = true;
            }
            det.record(id, SimTime::from_secs(t));
        }
        prop_assert_eq!(det.is_flagged(id), expected_flag);
    }

    /// Static cycle detection is invariant under applet order.
    #[test]
    fn cycle_detection_order_invariant(perm_seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        let mut d = StaticLoopDetector::new();
        d.declare_feed(engine::FeedRule {
            action_service: ServiceSlug::new("s1"),
            action: ActionSlug::new("a1"),
            trigger_service: ServiceSlug::new("s2"),
            trigger: TriggerSlug::new("t2"),
        });
        d.declare_feed(engine::FeedRule {
            action_service: ServiceSlug::new("s2"),
            action: ActionSlug::new("a2"),
            trigger_service: ServiceSlug::new("s1"),
            trigger: TriggerSlug::new("t1"),
        });
        let mut applets = vec![
            chain_applet(1, "s1", "t1", "s1", "a1"),
            chain_applet(2, "s2", "t2", "s2", "a2"),
            chain_applet(3, "s1", "t1", "s2", "a_unrelated"),
        ];
        let baseline: Vec<Vec<AppletId>> = d.find_cycles(&applets);
        let mut rng = StdRng::seed_from_u64(perm_seed);
        applets.shuffle(&mut rng);
        let mut shuffled = d.find_cycles(&applets);
        let mut base = baseline;
        base.sort();
        shuffled.sort();
        prop_assert_eq!(base, shuffled);
    }

    /// The nominal backoff schedule is monotone non-decreasing and capped
    /// for any policy with `factor >= 1`.
    #[test]
    fn backoff_nominal_monotone_up_to_cap(
        base in 0.01f64..30.0,
        factor in 1.0f64..4.0,
        cap in 0.01f64..120.0,
    ) {
        let b = BackoffPolicy { base_secs: base, factor, cap_secs: cap, jitter: 0.25 };
        let mut prev = 0.0f64;
        for retry in 0..64u32 {
            let n = b.nominal_secs(retry);
            prop_assert!(n >= prev - 1e-12, "schedule decreased at retry {retry}: {n} < {prev}");
            prop_assert!(n <= cap + 1e-12, "retry {retry} exceeded cap: {n} > {cap}");
            prev = n;
        }
        // Once capped, the schedule stays exactly at the cap.
        prop_assert_eq!(b.nominal_secs(200), b.nominal_secs(201));
    }

    /// Sampled delays stay inside the jitter band for any seed: jitter
    /// only shortens, by at most the configured fraction, and the cap
    /// bounds every draw.
    #[test]
    fn backoff_jitter_within_bounds(
        seed in any::<u64>(),
        jitter in 0.0f64..=1.0,
        retry in 0u32..40,
    ) {
        let b = BackoffPolicy { jitter, ..BackoffPolicy::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let nominal = b.nominal_secs(retry);
        for _ in 0..8 {
            let d = b.delay(retry, &mut rng).as_secs_f64();
            prop_assert!(d <= nominal + 1e-9, "delay {d} above nominal {nominal}");
            prop_assert!(d >= nominal * (1.0 - jitter) - 1e-9, "delay {d} below jitter floor");
            prop_assert!(d <= b.cap_secs + 1e-9, "delay {d} above cap {}", b.cap_secs);
        }
    }

    /// Driving a retry loop with `should_retry` never exceeds the
    /// configured budget: at most `1 + max_retries` attempts for retryable
    /// failures, exactly 1 for terminal client errors.
    #[test]
    fn retry_budget_never_exceeded(
        max_retries in 0u32..10,
        class_idx in 0usize..4,
    ) {
        let classes = [
            FailureClass::Timeout,
            FailureClass::ServerError,
            FailureClass::Transport,
            FailureClass::ClientError,
        ];
        let class = classes[class_idx];
        let p = RetryPolicy { max_retries, ..RetryPolicy::none() };
        // Every attempt fails; count how many the policy authorizes.
        let mut attempts = 1u32;
        while p.should_retry(attempts, class) {
            attempts += 1;
            prop_assert!(attempts <= max_retries + 1, "attempt {attempts} over budget");
        }
        if class.is_retryable() {
            prop_assert_eq!(attempts, max_retries + 1);
        } else {
            prop_assert_eq!(attempts, 1, "client errors are terminal");
        }
    }
}

fn applet_with(add_count: u64) -> Applet {
    let mut a = chain_applet(1, "s", "t", "s2", "a");
    a.add_count = add_count;
    a
}

fn chain_applet(id: u32, ts: &str, t: &str, as_: &str, a: &str) -> Applet {
    Applet::new(
        AppletId(id),
        format!("applet {id}"),
        UserId::new("u"),
        TriggerRef {
            service: ServiceSlug::new(ts),
            trigger: TriggerSlug::new(t),
            fields: FieldMap::new(),
        },
        ActionRef {
            service: ServiceSlug::new(as_),
            action: ActionSlug::new(a),
            fields: FieldMap::new(),
        },
    )
}
