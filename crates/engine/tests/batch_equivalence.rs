//! Batched vs unbatched polling must be observably equivalent.
//!
//! Coalescing is a transport optimization: which subscriptions share an
//! HTTP request must not change *what* each subscription delivers. This
//! suite runs the same fixed emission schedule against an engine with
//! `batch_polling` on and off and asserts every action slot received the
//! same event ids in the same per-subscription FIFO order.

use devices::service_core::{Processed, ServiceCore};
use engine::{ActionRef, Applet, AppletId, EngineConfig, EngineStats, TapEngine, TriggerRef};
use simnet::prelude::*;
use std::collections::HashMap;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

const SLOTS: usize = 4;
const SLUG: &str = "echo";

/// A service that remembers, per action slot, the `eid` field of every
/// action request in arrival order.
struct EchoService {
    core: ServiceCore,
    received: HashMap<usize, Vec<String>>,
}

impl Node for EchoService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { action, fields, .. } => {
                let slot: usize = action
                    .as_str()
                    .strip_prefix("act")
                    .and_then(|s| s.parse().ok())
                    .expect("action slot");
                self.received
                    .entry(slot)
                    .or_default()
                    .push(fields.get("eid").cloned().unwrap_or_default());
                HandlerResult::Reply(ServiceEndpoint::action_ok("ok"))
            }
            Processed::Query { fields, .. } => {
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

/// One user, four subscriptions on one service, a fixed emission schedule
/// (including some back-to-back pairs that must stay in FIFO order).
/// Returns the per-slot eid sequences and the engine stats.
fn run_scenario(batch_polling: bool) -> (Vec<Vec<String>>, EngineStats) {
    let mut cfg = EngineConfig::fast();
    cfg.batch_polling = batch_polling;
    let mut sim = Sim::new(42);
    let mut ep = ServiceEndpoint::new(ServiceSlug::new(SLUG), ServiceKey("sk_echo".into()));
    for k in 0..SLOTS {
        ep = ep
            .with_trigger(format!("t{k}").as_str())
            .with_action(format!("act{k}").as_str());
    }
    let svc = sim.add_node(
        SLUG,
        EchoService {
            core: ServiceCore::new(ep),
            received: HashMap::new(),
        },
    );
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    sim.link(engine, svc, LinkSpec::datacenter());

    let user = UserId::new("u");
    let token = sim.with_node::<EchoService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_echo".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for k in 0..SLOTS {
            let mut action_fields = FieldMap::new();
            action_fields.insert("eid".into(), "{{id}}".into());
            e.install_applet(
                ctx,
                Applet::new(
                    AppletId(k as u32 + 1),
                    format!("echo slot {k}"),
                    user.clone(),
                    TriggerRef {
                        service: ServiceSlug::new(SLUG),
                        trigger: TriggerSlug::new(format!("t{k}")),
                        fields: FieldMap::new(),
                    },
                    ActionRef {
                        service: ServiceSlug::new(SLUG),
                        action: ActionSlug::new(format!("act{k}")),
                        fields: action_fields,
                    },
                ),
            )
            .expect("applet installs");
        }
    });

    // Let the initial polls establish every subscription.
    sim.run_until(SimTime::from_secs(5));

    // Fixed schedule, independent of how the engine consumes randomness:
    // every 3 s a subset of triggers fires; step 0 fires a back-to-back
    // pair on each active trigger so one poll returns two events.
    let mut eid = 0u32;
    for step in 0..6u64 {
        sim.run_until(SimTime::from_secs(6 + step * 3));
        sim.with_node::<EchoService, _>(svc, |s, ctx| {
            for k in 0..SLOTS {
                if !(step as usize + k).is_multiple_of(2) {
                    continue;
                }
                let burst = if step == 0 { 2 } else { 1 };
                for _ in 0..burst {
                    let id = format!("e{eid:04}");
                    eid += 1;
                    let ev = TriggerEvent::new(id.clone(), ctx.now().as_secs_f64() as u64)
                        .with_ingredient("id", id);
                    let matched = s.core.record_event(
                        ctx,
                        &TriggerSlug::new(format!("t{k}")),
                        &UserId::new("u"),
                        ev,
                        |_| true,
                    );
                    assert_eq!(matched, 1, "subscription t{k} is established");
                }
            }
        });
    }

    // Drain: 1-second polling delivers everything well before this.
    sim.run_until(SimTime::from_secs(60));

    let received = {
        let s = sim.node_ref::<EchoService>(svc);
        (0..SLOTS)
            .map(|k| s.received.get(&k).cloned().unwrap_or_default())
            .collect()
    };
    (received, sim.node_ref::<TapEngine>(engine).stats)
}

#[test]
fn batching_delivers_the_same_events_in_the_same_order() {
    let (unbatched, stats_off) = run_scenario(false);
    let (batched, stats_on) = run_scenario(true);

    // Every slot saw events; the burst slots saw FIFO-ordered pairs.
    assert!(unbatched.iter().all(|v| !v.is_empty()));
    for (slot, (a, b)) in unbatched.iter().zip(&batched).enumerate() {
        assert_eq!(a, b, "slot {slot} differs between batched and unbatched");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(
            &sorted, a,
            "slot {slot} out of FIFO order (ids are emitted in sorted order)"
        );
    }

    // Same logical outcome…
    assert_eq!(stats_off.events_new, stats_on.events_new);
    assert_eq!(stats_off.actions_ok, stats_on.actions_ok);
    assert_eq!(stats_off.actions_failed, 0);
    assert_eq!(stats_on.actions_failed, 0);

    // …through a different transport: only the batched run coalesces.
    assert_eq!(stats_off.polls_batched, 0);
    assert_eq!(stats_off.polls_coalesced, 0);
    assert!(stats_on.polls_batched > 0, "groups coalesced");
    assert!(
        stats_on.polls_coalesced >= stats_on.polls_batched,
        "each batch saves at least one round trip"
    );
    // The coalesced round trips are real savings: fewer HTTP requests
    // for at least as many subscription polls.
    assert!(stats_on.polls_sent - stats_on.polls_coalesced < stats_off.polls_sent);
}

/// A realtime-notified member of a coalesced batch group polls out of band
/// exactly once, and the group's phase lock and membership survive the
/// preemption.
#[test]
fn realtime_member_splits_out_once_and_rejoins_its_group() {
    // Long fixed cadence so the out-of-band poll is unambiguous, batch
    // polling on, and the echo service allow-listed + realtime-enabled.
    let mut cfg = EngineConfig::fast().allow_realtime(ServiceSlug::new(SLUG));
    cfg.polling = engine::PollPolicy::fixed(120.0);
    cfg.batch_polling = true;
    let mut sim = Sim::new(77);
    let mut ep = ServiceEndpoint::new(ServiceSlug::new(SLUG), ServiceKey("sk_echo".into()));
    for k in 0..SLOTS {
        ep = ep
            .with_trigger(format!("t{k}").as_str())
            .with_action(format!("act{k}").as_str());
    }
    let svc = sim.add_node(
        SLUG,
        EchoService {
            core: ServiceCore::new(ep),
            received: HashMap::new(),
        },
    );
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    sim.with_node::<EchoService, _>(svc, |s, _| s.core.enable_realtime(engine));
    sim.link(engine, svc, LinkSpec::datacenter());

    let user = UserId::new("u");
    let token = sim.with_node::<EchoService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_echo".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for k in 0..SLOTS {
            let mut action_fields = FieldMap::new();
            action_fields.insert("eid".into(), "{{id}}".into());
            e.install_applet(
                ctx,
                Applet::new(
                    AppletId(k as u32 + 1),
                    format!("echo slot {k}"),
                    user.clone(),
                    TriggerRef {
                        service: ServiceSlug::new(SLUG),
                        trigger: TriggerSlug::new(format!("t{k}")),
                        fields: FieldMap::new(),
                    },
                    ActionRef {
                        service: ServiceSlug::new(SLUG),
                        action: ActionSlug::new(format!("act{k}")),
                        fields: action_fields,
                    },
                ),
            )
            .expect("applet installs");
        }
    });

    // Initial polls establish the subscriptions well before the first
    // 120 s cadence tick.
    sim.run_until(SimTime::from_secs(10));
    let t_emit = sim.now();
    sim.with_node::<EchoService, _>(svc, |s, ctx| {
        let ev =
            TriggerEvent::new("rt01", ctx.now().as_secs_f64() as u64).with_ingredient("id", "rt01");
        let matched = s
            .core
            .record_event(ctx, &TriggerSlug::new("t0"), &user, ev, |_| true);
        assert_eq!(matched, 1, "subscription t0 is established");
    });

    // Within seconds — not the 110 s left on the cadence — the hinted
    // member has polled out of band and its event is delivered.
    sim.run_until(SimTime::from_secs(25));
    let mid = sim.node_ref::<TapEngine>(engine).stats;
    assert_eq!(mid.realtime_notifications, 1, "{mid:?}");
    assert_eq!(mid.realtime_polls, 1, "exactly one immediate poll: {mid:?}");
    assert_eq!(mid.events_new, 1, "the hinted event arrived early: {mid:?}");
    assert_eq!(
        sim.node_ref::<EchoService>(svc)
            .received
            .get(&0)
            .map(Vec::len),
        Some(1),
        "one action, no double-poll duplicate"
    );
    let _ = t_emit;

    // Run through two full cadence cycles: the preempted member rejoined
    // its group at the preempted instant, so every subsequent batch still
    // coalesces all four members (3 coalesced riders per batch request).
    let before = sim.node_ref::<TapEngine>(engine).stats;
    sim.run_until(SimTime::from_secs(10 + 2 * 120 + 30));
    let after = sim.node_ref::<TapEngine>(engine).stats;
    let batched = after.polls_batched - before.polls_batched;
    let coalesced = after.polls_coalesced - before.polls_coalesced;
    assert!(batched >= 2, "two cadence cycles batched: {after:?}");
    assert_eq!(
        coalesced,
        (SLOTS as u64 - 1) * batched,
        "full {SLOTS}-member batches — membership survived the preemption: {after:?}"
    );
    assert_eq!(
        after.realtime_polls, 1,
        "no further out-of-band polls: {after:?}"
    );
}

#[test]
fn batched_groups_phase_lock_and_stay_coalesced() {
    let (_, stats) = run_scenario(true);
    // Four subscriptions of one (user, service) group under 1 s fixed
    // polling: after the first coalesced request the group is phase-locked,
    // so nearly every subscription poll after the initial staggered ones
    // rides a batch. 4 members per batch → coalesced ≈ 3/4 of polls sent.
    let ratio = stats.polls_coalesced as f64 / stats.polls_sent as f64;
    assert!(ratio > 0.70, "coalesced ratio {ratio:.2} (want ≈ 0.75)");
}
