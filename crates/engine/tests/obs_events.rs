//! Ordering and replay invariants of the typed observation stream.
//!
//! A [`FlightRecorder`] with sampling disabled captures every event the
//! engine emits during an end-to-end run; this suite then checks that the
//! stream is a faithful causal record:
//!
//! * events are recorded in non-decreasing virtual time;
//! * every `ActionFinished` is preceded by a matching `ActionSent`, which
//!   is preceded by the `DispatchEnqueued` that opened the dispatch, and
//!   attempt numbers count up from 1;
//! * every `PollDelivered` carries a send stamp no later than its receive
//!   stamp;
//! * replaying the stream through [`EngineStats::apply`] reproduces the
//!   engine's own counters exactly — the events are not a parallel
//!   bookkeeping system, they are the *only* one.

use devices::service_core::{Processed, ServiceCore};
use engine::{
    ActionRef, Applet, AppletId, EngineConfig, EngineStats, FlightRecorder, ObsEvent, TapEngine,
    TriggerRef,
};
use simnet::chaos::{FaultPlan, ServerFault, ServerFaultPlan};
use simnet::net::LinkId;
use simnet::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

const SLOTS: usize = 3;
const SLUG: &str = "observed";

struct EchoService {
    core: ServiceCore,
}

impl Node for EchoService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { .. } => HandlerResult::Reply(ServiceEndpoint::action_ok("ok")),
            Processed::Query { fields, .. } => {
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

struct World {
    sim: Sim,
    engine: NodeId,
    svc: NodeId,
    link: LinkId,
    flight: Arc<FlightRecorder>,
}

fn world(seed: u64, resilient: bool) -> World {
    let cfg = if resilient {
        EngineConfig::fast().resilient()
    } else {
        EngineConfig::fast()
    };
    let mut sim = Sim::new(seed);
    let mut ep = ServiceEndpoint::new(ServiceSlug::new(SLUG), ServiceKey("sk_obs".into()));
    for k in 0..SLOTS {
        ep = ep
            .with_trigger(format!("t{k}").as_str())
            .with_action(format!("act{k}").as_str());
    }
    let svc = sim.add_node(
        SLUG,
        EchoService {
            core: ServiceCore::new(ep),
        },
    );
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    let link = sim.link(engine, svc, LinkSpec::datacenter());
    let flight = Arc::new(FlightRecorder::new(1 << 20));
    sim.node_mut::<TapEngine>(engine).set_sink(flight.clone());

    let user = UserId::new("u");
    let token = sim.with_node::<EchoService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_obs".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for k in 0..SLOTS {
            e.install_applet(
                ctx,
                Applet::new(
                    AppletId(k as u32 + 1),
                    format!("obs slot {k}"),
                    user.clone(),
                    TriggerRef {
                        service: ServiceSlug::new(SLUG),
                        trigger: TriggerSlug::new(format!("t{k}")),
                        fields: FieldMap::new(),
                    },
                    ActionRef {
                        service: ServiceSlug::new(SLUG),
                        action: ActionSlug::new(format!("act{k}")),
                        fields: FieldMap::new(),
                    },
                ),
            )
            .expect("applet installs");
        }
    });
    sim.run_until(SimTime::from_secs(5));
    World {
        sim,
        engine,
        svc,
        link,
        flight,
    }
}

impl World {
    fn emit(&mut self, k: usize, eid: u32) {
        self.sim.with_node::<EchoService, _>(self.svc, |s, ctx| {
            let id = format!("e{eid:04}");
            let ev = TriggerEvent::new(id.clone(), ctx.now().as_secs_f64() as u64)
                .with_ingredient("id", id);
            s.core.record_event(
                ctx,
                &TriggerSlug::new(format!("t{k}")),
                &UserId::new("u"),
                ev,
                |_| true,
            );
        });
    }

    fn drive(&mut self, rounds: u32, horizon_secs: u64) {
        for r in 0..rounds {
            self.emit((r as usize) % SLOTS, r);
            let base = self.sim.now();
            self.sim.run_until(base + SimDuration::from_secs(7));
        }
        let base = self.sim.now();
        self.sim
            .run_until(base + SimDuration::from_secs(horizon_secs));
    }
}

/// Assert the causal structure of a recorded stream.
fn assert_causal_order(events: &[ObsEvent]) {
    let mut last = SimTime::ZERO;
    // dispatch id → (enqueued?, last attempt seen, finished?)
    let mut dispatches: HashMap<u64, (bool, u32, bool)> = HashMap::new();
    for ev in events {
        assert!(ev.at() >= last, "stream went back in time: {ev:?}");
        last = ev.at();
        match ev {
            ObsEvent::PollDelivered { sent_at, at, .. } => {
                assert!(sent_at <= at, "poll delivered before it was sent: {ev:?}");
            }
            ObsEvent::DispatchEnqueued { dispatch, .. } => {
                let d = dispatches.entry(*dispatch).or_default();
                assert!(!d.0, "dispatch {dispatch} enqueued twice");
                d.0 = true;
            }
            ObsEvent::ActionSent {
                dispatch, attempt, ..
            } => {
                let d = dispatches
                    .get_mut(dispatch)
                    .unwrap_or_else(|| panic!("ActionSent for unopened dispatch {dispatch}"));
                assert!(d.0, "ActionSent before DispatchEnqueued");
                assert!(!d.2, "ActionSent after ActionFinished");
                assert_eq!(*attempt, d.1 + 1, "attempts not consecutive: {ev:?}");
                d.1 = *attempt;
            }
            ObsEvent::ActionFinished { dispatch, .. } => {
                let d = dispatches
                    .get_mut(dispatch)
                    .unwrap_or_else(|| panic!("ActionFinished for unopened dispatch {dispatch}"));
                assert!(
                    d.0 && d.1 >= 1,
                    "ActionFinished without a preceding ActionSent"
                );
                if let ObsEvent::ActionFinished { ok: true, .. } = ev {
                    d.2 = true;
                }
            }
            _ => {}
        }
    }
}

#[test]
fn clean_run_stream_is_causally_ordered_and_replays_to_the_stats() {
    let mut w = world(2017, false);
    w.drive(12, 60);
    let events = w.flight.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObsEvent::ActionFinished { ok: true, .. })),
        "actions completed"
    );
    assert_causal_order(&events);
    // Replay: folding the stream through the same mapping the engine uses
    // must land on the engine's own counters, field for field.
    let mut replayed = EngineStats::default();
    for ev in &events {
        replayed.apply(ev);
    }
    let live = w.sim.node_ref::<TapEngine>(w.engine).stats;
    assert_eq!(replayed, live, "replayed stats diverge from the engine's");
}

#[test]
fn chaotic_run_stream_keeps_its_causal_order() {
    let mut w = world(31337, true);
    let horizon = SimTime::from_secs(400);
    let plan = FaultPlan::new().link_loss(w.link, 0.05, SimTime::from_secs(5), horizon);
    w.sim.apply_fault_plan(&plan);
    let outages = ServerFaultPlan::new().periodic(
        ServerFault::Http503 {
            retry_after_secs: 2,
        },
        SimTime::from_secs(10),
        SimDuration::from_secs(30),
        SimDuration::from_secs(8),
        horizon,
    );
    w.sim
        .with_node::<EchoService, _>(w.svc, |s, _| s.core.fault_plan = Some(outages));
    w.drive(20, 200);
    let events = w.flight.events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ObsEvent::ActionRetried { .. } | ObsEvent::PollRetried { .. }
        )),
        "chaos caused retries"
    );
    assert_causal_order(&events);
    let mut replayed = EngineStats::default();
    for ev in &events {
        replayed.apply(ev);
    }
    let live = w.sim.node_ref::<TapEngine>(w.engine).stats;
    assert_eq!(replayed, live, "replayed stats diverge under chaos");
}
