//! Differential test for the slab-backed in-flight stores.
//!
//! The engine keeps dispatches, DAG runs, and pending batch polls in
//! generation-checked slab arenas ([`mem::Arena`]); the arena also ships a
//! `HashMap` reference implementation that hands out the same handle
//! sequence from associative storage. Storage strategy must be completely
//! unobservable: the same seeded world driven through both backends has to
//! produce the *identical* [`ObsEvent`] stream — not just matching
//! counters, but the same events with the same ids, attempts, and stamps,
//! in the same order.
//!
//! The worlds here exercise every arena on both its hot path and its churn
//! path: sibling subscriptions coalesce into batch polls
//! (`pending_batches`), a multi-step query → action applet opens DAG runs
//! (`dag_runs`), and a 503 outage window forces retries so dispatch slots
//! are recycled across generations (`dispatches`).

use devices::service_core::{Processed, ServiceCore};
use engine::{
    ActionRef, Applet, AppletId, EngineConfig, FlightRecorder, ObsEvent, TapEngine, TriggerRef,
};
use simnet::chaos::{ServerFault, ServerFaultPlan};
use simnet::net::LinkId;
use simnet::prelude::*;
use std::sync::Arc;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, StepNode, StepSpec, TriggerSlug, UserId};

const SLUG: &str = "diffsvc";
/// Classic applets t0..t2 share one (user, service) poll group; t3 carries
/// the DAG.
const CLASSIC: usize = 3;

struct DiffService {
    core: ServiceCore,
}

impl Node for DiffService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { .. } => HandlerResult::Reply(ServiceEndpoint::action_ok("ok")),
            Processed::Query { fields, .. } => {
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

struct World {
    sim: Sim,
    engine: NodeId,
    svc: NodeId,
    #[allow(dead_code)]
    link: LinkId,
    flight: Arc<FlightRecorder>,
}

/// Build the world; `reference` selects the `HashMap` storage backend
/// before any applet is installed (the arenas must be empty at the swap).
fn world(seed: u64, reference: bool) -> World {
    let cfg = EngineConfig::fast().resilient().with_batch_polling(true);
    let mut sim = Sim::new(seed);
    let mut ep = ServiceEndpoint::new(ServiceSlug::new(SLUG), ServiceKey("sk_diff".into()));
    for k in 0..=CLASSIC {
        ep = ep
            .with_trigger(format!("t{k}").as_str())
            .with_action(format!("act{k}").as_str());
    }
    ep = ep.with_query("look");
    let svc = sim.add_node(
        SLUG,
        DiffService {
            core: ServiceCore::new(ep),
        },
    );
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    if reference {
        sim.node_mut::<TapEngine>(engine).use_reference_storage();
    }
    let link = sim.link(engine, svc, LinkSpec::datacenter());
    let flight = Arc::new(FlightRecorder::new(1 << 20));
    sim.node_mut::<TapEngine>(engine).set_sink(flight.clone());

    let user = UserId::new("u");
    let token = sim.with_node::<DiffService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_diff".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for k in 0..=CLASSIC {
            let mut action_fields = FieldMap::new();
            action_fields.insert("eid".into(), "{{id}}".into());
            let mut applet = Applet::new(
                AppletId(k as u32 + 1),
                format!("diff slot {k}"),
                user.clone(),
                TriggerRef {
                    service: ServiceSlug::new(SLUG),
                    trigger: TriggerSlug::new(format!("t{k}")),
                    fields: FieldMap::new(),
                },
                ActionRef {
                    service: ServiceSlug::new(SLUG),
                    action: ActionSlug::new(format!("act{k}")),
                    fields: action_fields,
                },
            );
            if k == CLASSIC {
                // Slot 3 is a real two-node DAG: query → action, so every
                // activation opens a `dag_runs` entry.
                applet = applet.with_steps(vec![
                    StepNode::new(StepSpec::Query {
                        query: "look".into(),
                        prefix: "ctx".into(),
                        fields: {
                            let mut f = FieldMap::new();
                            f.insert("q".into(), "{{id}}".into());
                            f
                        },
                    }),
                    StepNode::new(StepSpec::Action {
                        action: format!("act{k}"),
                        fields: {
                            let mut f = FieldMap::new();
                            f.insert("eid".into(), "{{ctx.q}}".into());
                            f
                        },
                    })
                    .after(&[0]),
                ]);
            }
            e.install_applet(ctx, applet).expect("applet installs");
        }
    });
    sim.run_until(SimTime::from_secs(5));
    World {
        sim,
        engine,
        svc,
        link,
        flight,
    }
}

impl World {
    fn emit(&mut self, k: usize, eid: u32) {
        self.sim.with_node::<DiffService, _>(self.svc, |s, ctx| {
            let id = format!("e{eid:04}");
            let ev = TriggerEvent::new(id.clone(), ctx.now().as_secs_f64() as u64)
                .with_ingredient("id", id);
            s.core.record_event(
                ctx,
                &TriggerSlug::new(format!("t{k}")),
                &UserId::new("u"),
                ev,
                |_| true,
            );
        });
    }

    /// One 503 outage window so dispatches retry and slab slots recycle.
    fn inject_outage(&mut self, horizon: SimTime) {
        let outages = ServerFaultPlan::new().periodic(
            ServerFault::Http503 {
                retry_after_secs: 2,
            },
            SimTime::from_secs(20),
            SimDuration::from_secs(25),
            SimDuration::from_secs(10),
            horizon,
        );
        self.sim
            .with_node::<DiffService, _>(self.svc, |s, _| s.core.fault_plan = Some(outages));
    }

    /// Interleave events on every slot with sim progress, then drain.
    fn drive(&mut self, rounds: u32, horizon_secs: u64) {
        for r in 0..rounds {
            self.emit((r as usize) % (CLASSIC + 1), r);
            let base = self.sim.now();
            self.sim.run_until(base + SimDuration::from_secs(7));
        }
        let base = self.sim.now();
        self.sim
            .run_until(base + SimDuration::from_secs(horizon_secs));
    }
}

/// Run the identical schedule on both backends and return the two streams
/// plus the slab-backed engine's stats for liveness assertions.
fn run_pair(seed: u64, chaotic: bool) -> (Vec<ObsEvent>, Vec<ObsEvent>, engine::EngineStats) {
    let mut slab = world(seed, false);
    let mut refr = world(seed, true);
    if chaotic {
        let horizon = SimTime::from_secs(120);
        slab.inject_outage(horizon);
        refr.inject_outage(horizon);
    }
    slab.drive(24, 120);
    refr.drive(24, 120);
    let stats = slab.sim.node_ref::<TapEngine>(slab.engine).stats;
    (slab.flight.events(), refr.flight.events(), stats)
}

/// Clean run: batch polls, DAG runs, and dispatches all engage, and the
/// two storage backends produce the same event stream, element for
/// element.
#[test]
fn slab_and_reference_storage_streams_are_identical() {
    let (slab, refr, stats) = run_pair(2017, false);
    // The workload exercised all three arenas.
    assert!(stats.polls_batched > 0, "no batch polls: {stats:?}");
    assert!(stats.dag_runs > 0, "no DAG runs: {stats:?}");
    assert!(stats.actions_ok > 0, "no deliveries: {stats:?}");
    assert_eq!(slab.len(), refr.len(), "stream lengths diverge");
    for (i, (a, b)) in slab.iter().zip(refr.iter()).enumerate() {
        assert_eq!(a, b, "streams diverge at event {i}");
    }
}

/// Chaotic run: the 503 window forces retries, so dispatch slots are
/// freed and recycled across generations on both backends — handle
/// allocation order must still match exactly.
#[test]
fn storage_streams_stay_identical_under_retries() {
    let (slab, refr, stats) = run_pair(31337, true);
    assert!(
        stats.actions_retried > 0 || stats.polls_retried > 0,
        "outage caused no retries: {stats:?}"
    );
    assert_eq!(slab, refr, "streams diverge under chaos");
}

/// Different seeds genuinely change the stream (the equality above is not
/// vacuous).
#[test]
fn different_seeds_produce_different_streams() {
    let (a, _, _) = run_pair(2017, false);
    let (b, _, _) = run_pair(2018, false);
    assert_ne!(a, b, "seed change left the stream untouched");
}
