//! Multi-step DAG execution semantics.
//!
//! The PR-7 satellite suite for the trigger → [filter|transform|query]* →
//! [action]+ generalization:
//!
//! * **Degenerate differential** — a classic applet and the same applet
//!   wrapped in a one-node action DAG produce byte-identical [`ObsEvent`]
//!   streams and engine stats (the fast path really is the same path).
//! * **Isolation** — a failing filter cuts downstream nodes without a
//!   dead letter; a transform's output feeds the next node's payload; a
//!   query node's result keys land under its prefix.
//! * **Policy split** — `IftttLike` continues past a terminally failed
//!   query where `ZapierLike` halts and dead-letters, and a per-node
//!   `on_failure` override beats the engine default.
//! * **Chaos** — query/action nodes ride the same breaker/retry stack as
//!   polls, and activation conservation holds under fault injection.
//! * **Proptest** — arbitrary ≤ 6-node DAGs under arbitrary fault windows
//!   conserve activations and never execute a node before all of its
//!   predecessors.
//!
//! The seed comes from `CHAOS_SEED` (default 2017) so CI can sweep a seed
//! matrix over the same invariants.

use devices::service_core::{Processed, ServiceCore};
use engine::{
    ActionRef, Applet, AppletId, EngineConfig, EnginePolicy, EngineStats, FlightRecorder, ObsEvent,
    TapEngine, TriggerRef,
};
use proptest::prelude::*;
use rand::Rng;
use simnet::chaos::{FaultPlan, ServerFault, ServerFaultPlan};
use simnet::net::LinkId;
use simnet::prelude::*;
use std::sync::Arc;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{
    ActionSlug, FieldMap, ServiceSlug, StepFailurePolicy, StepNode, StepPredicate, StepSpec,
    TriggerSlug, UserId,
};

const SLUG: &str = "dagsvc";

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2017)
}

/// A service that records the `eid` ingredient of every action request it
/// executes and echoes the substituted request fields back from queries
/// (so a query node's output is observable downstream).
struct DagService {
    core: ServiceCore,
    received: Vec<String>,
    queries_served: u64,
}

impl Node for DagService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { fields, .. } => {
                self.received
                    .push(fields.get("eid").cloned().unwrap_or_default());
                HandlerResult::Reply(ServiceEndpoint::action_ok("ok"))
            }
            Processed::Query { fields, .. } => {
                self.queries_served += 1;
                HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

struct Harness {
    sim: Sim,
    engine: NodeId,
    svc: NodeId,
    link: LinkId,
    recorder: Arc<FlightRecorder>,
    next_eid: u32,
}

/// Engine + service with one subscription per entry of `slot_steps`
/// (trigger `t{k}` → action `act{k}`), the given engine config, a flight
/// recorder sink, and subscriptions established before any fault applies.
/// An empty step list installs the classic single-step applet; a
/// non-empty one attaches the DAG. Every applet's base action carries
/// `eid = {{id}}` so deliveries are observable either way.
fn dag_harness(cfg: EngineConfig, slot_steps: &[Vec<StepNode>]) -> Harness {
    let mut sim = Sim::new(chaos_seed());
    let mut ep = ServiceEndpoint::new(ServiceSlug::new(SLUG), ServiceKey("sk_dag".into()));
    for k in 0..slot_steps.len() {
        ep = ep
            .with_trigger(format!("t{k}").as_str())
            .with_action(format!("act{k}").as_str());
    }
    ep = ep.with_action("aux").with_query("look");
    let svc = sim.add_node(
        SLUG,
        DagService {
            core: ServiceCore::new(ep),
            received: Vec::new(),
            queries_served: 0,
        },
    );
    let engine = sim.add_node("engine", TapEngine::new(cfg));
    let recorder = Arc::new(FlightRecorder::new(200_000));
    let sink = recorder.clone();
    let link = sim.link(engine, svc, LinkSpec::datacenter());

    let user = UserId::new("u");
    let token = sim.with_node::<DagService, _>(svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(user.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, ctx| {
        e.set_sink(sink);
        e.register_service(ServiceSlug::new(SLUG), svc, ServiceKey("sk_dag".into()));
        e.set_token(user.clone(), ServiceSlug::new(SLUG), token);
        for (k, steps) in slot_steps.iter().enumerate() {
            let mut action_fields = FieldMap::new();
            action_fields.insert("eid".into(), "{{id}}".into());
            let mut applet = Applet::new(
                AppletId(k as u32 + 1),
                format!("dag slot {k}"),
                user.clone(),
                TriggerRef {
                    service: ServiceSlug::new(SLUG),
                    trigger: TriggerSlug::new(format!("t{k}")),
                    fields: FieldMap::new(),
                },
                ActionRef {
                    service: ServiceSlug::new(SLUG),
                    action: ActionSlug::new(format!("act{k}")),
                    fields: action_fields,
                },
            );
            if !steps.is_empty() {
                applet = applet.with_steps(steps.clone());
            }
            e.install_applet(ctx, applet).expect("applet installs");
        }
    });
    // Clean settle: every subscription is learned before faults start.
    sim.run_until(SimTime::from_secs(5));
    Harness {
        sim,
        engine,
        svc,
        link,
        recorder,
        next_eid: 0,
    }
}

impl Harness {
    /// Fire slot `k`'s trigger now; the emit must match the (established)
    /// subscription. Returns the event id.
    fn emit(&mut self, k: usize) -> String {
        let eid = format!("e{:04}", self.next_eid);
        self.next_eid += 1;
        let id = eid.clone();
        self.sim.with_node::<DagService, _>(self.svc, |s, ctx| {
            let ev = TriggerEvent::new(id.clone(), ctx.now().as_secs_f64() as u64)
                .with_ingredient("id", id);
            let matched = s.core.record_event(
                ctx,
                &TriggerSlug::new(format!("t{k}")),
                &UserId::new("u"),
                ev,
                |_| true,
            );
            assert_eq!(matched, 1, "subscription t{k} is established");
        });
        eid
    }

    fn stats(&self) -> EngineStats {
        self.sim.node_ref::<TapEngine>(self.engine).stats
    }

    fn received(&self) -> Vec<String> {
        self.sim.node_ref::<DagService>(self.svc).received.clone()
    }

    fn queries_served(&self) -> u64 {
        self.sim.node_ref::<DagService>(self.svc).queries_served
    }

    /// `events_new == actions_ok + actions_filtered + dead_letters` —
    /// every fetched event concludes exactly once, DAG or not.
    fn assert_conservation(&self) {
        let s = self.stats();
        assert_eq!(
            s.events_new,
            s.actions_ok + s.actions_filtered + s.dead_letters,
            "conservation: new {} ok {} filtered {} dead {}",
            s.events_new,
            s.actions_ok,
            s.actions_filtered,
            s.dead_letters
        );
    }
}

fn act(slug: &str) -> StepNode {
    StepNode::new(StepSpec::Action {
        action: slug.into(),
        fields: {
            let mut f = FieldMap::new();
            f.insert("eid".into(), "{{id}}".into());
            f
        },
    })
}

// ---------------------------------------------------------------------
// Degenerate differential: wrapped single-action DAG == classic applet.
// ---------------------------------------------------------------------

/// The same population and emission schedule through the legacy
/// single-step path and through degenerate one-node DAGs produces
/// byte-identical observable event streams, stats, and deliveries — the
/// install-time normalization really lands on the same code path.
#[test]
fn degenerate_dag_matches_legacy_event_for_event() {
    let legacy: Vec<Vec<StepNode>> = vec![Vec::new(); 3];
    let wrapped: Vec<Vec<StepNode>> = (0..3).map(|k| vec![act(&format!("act{k}"))]).collect();
    let mut a = dag_harness(EngineConfig::fast().resilient(), &legacy);
    let mut b = dag_harness(EngineConfig::fast().resilient(), &wrapped);
    for round in 0..3u64 {
        let at = SimTime::from_secs(10 + round * 15);
        a.sim.run_until(at);
        b.sim.run_until(at);
        for k in 0..3 {
            a.emit(k);
            b.emit(k);
        }
    }
    let horizon = SimTime::from_secs(120);
    a.sim.run_until(horizon);
    b.sim.run_until(horizon);

    assert_eq!(a.stats(), b.stats(), "engine stats diverge");
    assert_eq!(a.received(), b.received(), "deliveries diverge");
    let (ea, eb) = (a.recorder.events(), b.recorder.events());
    assert_eq!(ea.len(), eb.len(), "event stream length diverges");
    assert_eq!(ea, eb, "observable event streams diverge");
    // And the wrapped run never took the DAG machinery at all.
    assert_eq!(b.stats().dag_runs, 0, "degenerate DAG must not start runs");
    assert_eq!(a.stats().actions_ok, 9);
    a.assert_conservation();
}

// ---------------------------------------------------------------------
// Isolation: filter short-circuit, transform feed, query enrichment.
// ---------------------------------------------------------------------

/// A filter whose predicate fails cuts everything downstream: the run
/// ends `filtered`, no action request leaves the engine, and no dead
/// letter is recorded. A sibling slot whose filter passes still delivers.
#[test]
fn filter_cut_short_circuits_without_dead_letter() {
    let cut = vec![
        StepNode::new(StepSpec::Filter {
            predicate: StepPredicate::Has {
                key: "never_set".into(),
            },
        }),
        act("act0").after(&[0]),
    ];
    let pass = vec![
        StepNode::new(StepSpec::Filter {
            predicate: StepPredicate::NotHas {
                key: "never_set".into(),
            },
        }),
        act("act1").after(&[0]),
    ];
    let mut h = dag_harness(EngineConfig::fast(), &[cut, pass]);
    h.sim.run_until(SimTime::from_secs(10));
    let cut_eid = h.emit(0);
    let pass_eid = h.emit(1);
    h.sim.run_until(SimTime::from_secs(60));

    let s = h.stats();
    assert_eq!(s.events_new, 2);
    assert_eq!(s.dag_runs, 2);
    assert_eq!(s.dag_nodes_filter, 2, "both filters executed");
    assert_eq!(s.actions_filtered, 1, "the cut run ends filtered");
    assert_eq!(s.dead_letters, 0, "a cut is not a failure");
    assert_eq!(s.actions_ok, 1, "the passing run delivers");
    assert_eq!(s.dag_nodes_action, 1, "only the passing action ran");
    assert_eq!(h.received(), vec![pass_eid.clone()]);
    assert_ne!(cut_eid, pass_eid);
    h.assert_conservation();
}

/// A transform's substituted output overlays the trigger payload for its
/// successors: the action's `eid` template reads the transform's key, and
/// the service receives the rewritten value.
#[test]
fn transform_output_feeds_downstream_payload() {
    let steps = vec![
        StepNode::new(StepSpec::Transform {
            fields: {
                let mut f = FieldMap::new();
                f.insert("tag".into(), "on-{{id}}".into());
                f
            },
        }),
        StepNode::new(StepSpec::Action {
            action: "act0".into(),
            fields: {
                let mut f = FieldMap::new();
                f.insert("eid".into(), "{{tag}}".into());
                f
            },
        })
        .after(&[0]),
    ];
    let mut h = dag_harness(EngineConfig::fast(), &[steps]);
    h.sim.run_until(SimTime::from_secs(10));
    let eid = h.emit(0);
    h.sim.run_until(SimTime::from_secs(60));

    assert_eq!(h.received(), vec![format!("on-{eid}")]);
    let s = h.stats();
    assert_eq!(s.dag_nodes_transform, 1);
    assert_eq!(s.actions_ok, 1);
    h.assert_conservation();
}

/// A query node's result keys are merged under its prefix and visible to
/// downstream templates — the multi-step analogue of the single-step
/// pre-dispatch query.
#[test]
fn query_result_lands_under_its_prefix() {
    let steps = vec![
        StepNode::new(StepSpec::Query {
            query: "look".into(),
            prefix: "ctx".into(),
            fields: {
                let mut f = FieldMap::new();
                f.insert("q".into(), "{{id}}".into());
                f
            },
        }),
        StepNode::new(StepSpec::Action {
            action: "act0".into(),
            fields: {
                let mut f = FieldMap::new();
                f.insert("eid".into(), "{{ctx.q}}".into());
                f
            },
        })
        .after(&[0]),
    ];
    let mut h = dag_harness(EngineConfig::fast(), &[steps]);
    h.sim.run_until(SimTime::from_secs(10));
    let eid = h.emit(0);
    h.sim.run_until(SimTime::from_secs(60));

    // The service echoes the substituted request fields, so the action's
    // `{{ctx.q}}` template resolves back to the event id.
    assert_eq!(h.received(), vec![eid]);
    assert_eq!(h.queries_served(), 1);
    let s = h.stats();
    assert_eq!(s.dag_nodes_query, 1);
    assert_eq!(s.actions_ok, 1);
    h.assert_conservation();
}

// ---------------------------------------------------------------------
// Policy split: IftttLike continues, ZapierLike halts.
// ---------------------------------------------------------------------

/// The three-slot probe DAG: a query against an unregistered slug (404 —
/// terminal, never retried), an action gated on it, and an independent
/// action.
fn failing_query_dag() -> Vec<StepNode> {
    vec![
        StepNode::new(StepSpec::Query {
            query: "missing".into(),
            prefix: "ctx".into(),
            fields: FieldMap::new(),
        }),
        act("act0").after(&[0]),
        act("aux"),
    ]
}

/// Under `IftttLike` a terminally failed query resolves empty and both
/// actions still run (the single-step engine's historical treatment);
/// under `ZapierLike` the run halts and dead-letters with no delivery.
/// A per-node `Continue` override restores delivery even under Zapier.
#[test]
fn ifttt_continues_where_zapier_halts() {
    let ifttt = EngineConfig::fast().with_policy(EnginePolicy::IftttLike);
    let zapier = EngineConfig::fast().with_policy(EnginePolicy::ZapierLike);

    let mut a = dag_harness(ifttt, &[failing_query_dag()]);
    a.sim.run_until(SimTime::from_secs(10));
    let eid = a.emit(0);
    a.sim.run_until(SimTime::from_secs(90));
    let s = a.stats();
    assert_eq!(s.actions_ok, 1, "the run concludes ok");
    assert_eq!(s.dead_letters, 0);
    assert_eq!(s.queries_failed, 1, "the 404 is counted");
    assert_eq!(s.dag_nodes_action, 2, "both actions executed");
    assert_eq!(
        a.received(),
        vec![eid.clone(), eid.clone()],
        "both actions delivered under IftttLike"
    );
    a.assert_conservation();

    let mut b = dag_harness(zapier.clone(), &[failing_query_dag()]);
    b.sim.run_until(SimTime::from_secs(10));
    b.emit(0);
    b.sim.run_until(SimTime::from_secs(90));
    let s = b.stats();
    assert_eq!(s.dead_letters, 1, "Zapier halts and dead-letters");
    assert_eq!(s.actions_ok, 0);
    assert_eq!(s.dag_nodes_action, 0, "no action ran after the halt");
    assert!(
        b.received().is_empty(),
        "nothing delivered under ZapierLike"
    );
    b.assert_conservation();

    // Per-node override: marking the query `Continue` beats the engine
    // default, so the Zapier run delivers like the IFTTT one.
    let mut dag = failing_query_dag();
    dag[0] = dag[0].clone().on_failure(StepFailurePolicy::Continue);
    let mut c = dag_harness(zapier, &[dag]);
    c.sim.run_until(SimTime::from_secs(10));
    c.emit(0);
    c.sim.run_until(SimTime::from_secs(90));
    let s = c.stats();
    assert_eq!(s.actions_ok, 1, "per-node Continue overrides Halt default");
    assert_eq!(s.dead_letters, 0);
    assert_eq!(s.dag_nodes_action, 2);
    c.assert_conservation();
}

// ---------------------------------------------------------------------
// Chaos: query/action nodes ride the breaker/retry stack like polls.
// ---------------------------------------------------------------------

/// Under link loss plus a sustained 503 outage, DAG query/action nodes
/// retry on the backoff schedule (through the same per-service breaker
/// that polls trip), and every fetched event still concludes exactly
/// once — delivered, filtered, or dead-lettered.
#[test]
fn dag_nodes_retry_through_the_breaker_under_chaos() {
    let steps = vec![
        StepNode::new(StepSpec::Query {
            query: "look".into(),
            prefix: "ctx".into(),
            fields: {
                let mut f = FieldMap::new();
                f.insert("q".into(), "{{id}}".into());
                f
            },
        }),
        StepNode::new(StepSpec::Action {
            action: "act0".into(),
            fields: {
                let mut f = FieldMap::new();
                f.insert("eid".into(), "{{ctx.q}}".into());
                f
            },
        })
        .after(&[0]),
    ];
    let mut h = dag_harness(EngineConfig::fast().resilient(), &[steps]);
    let horizon = SimTime::from_secs(420);
    let plan = FaultPlan::new().link_loss(h.link, 0.25, SimTime::from_secs(5), horizon);
    h.sim.apply_fault_plan(&plan);
    let outages = ServerFaultPlan::new().periodic(
        ServerFault::Http503 {
            retry_after_secs: 2,
        },
        SimTime::from_secs(10),
        SimDuration::from_secs(40),
        SimDuration::from_secs(12),
        SimTime::from_secs(200),
    );
    h.sim.with_node::<DagService, _>(h.svc, move |s, _| {
        s.core.fault_plan = Some(outages);
    });
    for i in 0..12u64 {
        h.sim.run_until(SimTime::from_secs(12 + i * 15));
        h.emit(0);
    }
    // Long drain: loss has ended, retries and breaker probes settle.
    h.sim.run_until(SimTime::from_secs(900));

    let s = h.stats();
    assert_eq!(s.events_new, 12, "every event is eventually fetched");
    assert!(s.dag_runs >= 12, "every fetched event starts a run");
    assert!(
        s.dag_node_retries > 0,
        "chaos must force at least one node retry: {s:?}"
    );
    assert!(
        s.breaker_trips > 0,
        "the sustained outage trips the shared breaker: {s:?}"
    );
    h.assert_conservation();
    // Anything that did land carries a real event id (query output fed
    // the action payload even across retries).
    for eid in h.received() {
        assert!(eid.starts_with('e'), "delivered payload {eid:?}");
    }
}

// ---------------------------------------------------------------------
// Proptest: arbitrary DAGs conserve activations & respect dependencies.
// ---------------------------------------------------------------------

/// One generated node: spec choice, dependencies on lower indices, and a
/// failure-policy/retry override.
#[derive(Debug, Clone)]
struct NodePlan {
    kind: u8,
    pred: u8,
    deps: Vec<u16>,
    on_failure: u8,
    max_retries: Option<u32>,
}

/// Strategy for a well-formed plan: 1–6 nodes, each depending only on
/// lower indices, with at least one action node (so `validate_steps`
/// always accepts the built DAG).
struct DagPlanStrategy;

impl Strategy for DagPlanStrategy {
    type Value = Vec<NodePlan>;
    fn generate(&self, rng: &mut rand::StdRng) -> Vec<NodePlan> {
        let n = rng.gen_range(1usize..=6);
        let mut nodes: Vec<NodePlan> = (0..n)
            .map(|i| NodePlan {
                kind: rng.gen_range(0u8..4),
                pred: rng.gen_range(0u8..5),
                deps: (0..i as u16).filter(|_| rng.gen_bool(0.4)).collect(),
                on_failure: rng.gen_range(0u8..3),
                max_retries: if rng.gen_bool(0.3) {
                    Some(rng.gen_range(0u32..3))
                } else {
                    None
                },
            })
            .collect();
        // Every applet needs at least one action so the run can conclude
        // ok; force the last node when none was drawn.
        if !nodes.iter().any(|p| p.kind == 3) {
            nodes.last_mut().expect("n >= 1").kind = 3;
        }
        nodes
    }
}

fn build_steps(plan: &[NodePlan]) -> Vec<StepNode> {
    plan.iter()
        .enumerate()
        .map(|(i, p)| {
            let spec = match p.kind {
                0 => StepSpec::Filter {
                    predicate: match p.pred {
                        0 => StepPredicate::Always,
                        1 => StepPredicate::Has { key: "id".into() },
                        2 => StepPredicate::NotHas { key: "id".into() },
                        3 => StepPredicate::Equals {
                            key: "id".into(),
                            value: "nope".into(),
                        },
                        _ => StepPredicate::Contains {
                            key: "id".into(),
                            needle: "e".into(),
                        },
                    },
                },
                1 => StepSpec::Transform {
                    fields: {
                        let mut f = FieldMap::new();
                        f.insert(format!("x{i}"), "{{id}}".into());
                        f
                    },
                },
                2 => StepSpec::Query {
                    query: "look".into(),
                    prefix: format!("p{i}"),
                    fields: {
                        let mut f = FieldMap::new();
                        f.insert("q".into(), "{{id}}".into());
                        f
                    },
                },
                _ => StepSpec::Action {
                    action: "act0".into(),
                    fields: {
                        let mut f = FieldMap::new();
                        f.insert("eid".into(), "{{id}}".into());
                        f
                    },
                },
            };
            let mut node = StepNode::new(spec).after(&p.deps);
            node = match p.on_failure {
                1 => node.on_failure(StepFailurePolicy::Continue),
                2 => node.on_failure(StepFailurePolicy::Halt),
                _ => node,
            };
            if let Some(r) = p.max_retries {
                node = node.with_max_retries(r);
            }
            node
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed DAG, under any of these fault plans and either
    /// engine policy, (a) conserves activations — every fetched event
    /// concludes exactly once — and (b) never executes a node before all
    /// of its predecessors.
    #[test]
    fn arbitrary_dags_conserve_activations_and_respect_deps(
        plan in DagPlanStrategy,
        loss in 0.0f64..0.3,
        outage_len in 0u64..40,
        zapier in any::<bool>(),
    ) {
        let steps = build_steps(&plan);
        prop_assert!(tap_protocol::validate_steps(&steps).is_ok(), "{plan:?}");
        let mut cfg = EngineConfig::fast().resilient();
        if zapier {
            cfg = cfg.with_policy(EnginePolicy::ZapierLike);
        }
        let mut h = dag_harness(cfg, std::slice::from_ref(&steps));
        let fault_end = SimTime::from_secs(100);
        if loss > 0.0 {
            let fp = FaultPlan::new().link_loss(h.link, loss, SimTime::from_secs(5), fault_end);
            h.sim.apply_fault_plan(&fp);
        }
        if outage_len > 0 {
            let sp = ServerFaultPlan::new().window(
                ServerFault::Http503 { retry_after_secs: 2 },
                SimTime::from_secs(10),
                SimTime::from_secs(10 + outage_len),
            );
            h.sim.with_node::<DagService, _>(h.svc, move |s, _| {
                s.core.fault_plan = Some(sp);
            });
        }
        for i in 0..3u64 {
            h.sim.run_until(SimTime::from_secs(6 + i * 17));
            h.emit(0);
        }
        // Faults end by t=100; a long drain lets every retry chain and
        // breaker probe resolve.
        h.sim.run_until(SimTime::from_secs(600));

        let s = h.stats();
        prop_assert_eq!(s.events_new, 3, "all events fetched once loss ends: {:?}", s);
        prop_assert_eq!(
            s.events_new,
            s.actions_ok + s.actions_filtered + s.dead_letters,
            "conservation: {:?}", s
        );

        // Topology: within one run, a node's DagNodeExecuted must come
        // after its predecessor's. A predecessor with no execution event
        // at all is legitimate — it failed terminally and resolved under
        // a Continue policy (or was cut/skipped, in which case the
        // successor never runs) — but a *later* one is an ordering bug.
        let events = h.recorder.events();
        for (i, ev) in events.iter().enumerate() {
            if let ObsEvent::DagNodeExecuted { dispatch, node, .. } = ev {
                for &dep in &steps[*node as usize].deps {
                    let dep_after = events[i..].iter().any(|e| matches!(
                        e,
                        ObsEvent::DagNodeExecuted { dispatch: d, node: n, .. }
                            if d == dispatch && *n == dep
                    ));
                    prop_assert!(
                        !dep_after,
                        "node {} executed before predecessor {} in run {:x}",
                        node, dep, dispatch
                    );
                }
            }
        }
    }
}
