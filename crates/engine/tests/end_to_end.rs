//! End-to-end engine tests against real simulated services and devices:
//! the full applet-execution pipeline of §2.2.

use devices::hue::{install_hue, HueHub, HueLamp};
use devices::services::alexa_service::AlexaService;
use devices::services::hue_service::{HueAccount, HueService};
use devices::services::wemo_service::WemoService;
use devices::wemo::WemoSwitch;
use engine::{
    ActionRef, Applet, AppletId, EngineConfig, InstallError, PollPolicy, TapEngine, TriggerRef,
};
use simnet::prelude::*;
use tap_protocol::auth::ServiceKey;
use tap_protocol::{FieldMap, ServiceSlug, TriggerSlug, UserId};

/// The full A2 world: wemo switch (trigger) → hue light (action), official
/// services, one engine.
struct A2World {
    sim: Sim,
    engine: NodeId,
    switch: NodeId,
    lamp: NodeId,
}

fn build_a2(config: EngineConfig, seed: u64) -> A2World {
    let mut sim = Sim::new(seed);
    // Home devices.
    let (hub, lamps) = install_hue(&mut sim, "hueuser", "author", 1);
    let switch = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
    // Vendor clouds.
    let hue_svc = sim.add_node("hue_service", HueService::new(ServiceKey("sk_hue".into())));
    let wemo_svc = sim.add_node(
        "wemo_service",
        WemoService::new(ServiceKey("sk_wemo".into())),
    );
    // Engine.
    let engine = sim.add_node("engine", TapEngine::new(config));
    // Topology: home gateway links devices to the WAN clouds.
    let router = sim.add_node("router", Passive);
    sim.link(hub, router, LinkSpec::lan());
    sim.link(switch, router, LinkSpec::lan());
    sim.link(router, hue_svc, LinkSpec::wan());
    sim.link(router, wemo_svc, LinkSpec::wan());
    sim.link(engine, hue_svc, LinkSpec::datacenter());
    sim.link(engine, wemo_svc, LinkSpec::datacenter());
    // Vendor pairings.
    sim.node_mut::<HueHub>(hub).allow_only(vec![hue_svc]);
    sim.node_mut::<WemoSwitch>(switch)
        .allow_only(vec![wemo_svc]);
    sim.node_mut::<WemoSwitch>(switch).observe(wemo_svc);
    sim.with_node::<HueService, _>(hue_svc, |s, _| {
        s.add_account(
            UserId::new("author"),
            HueAccount {
                hub,
                username: "hueuser".into(),
                lamp_device: "hue_lamp_1".into(),
            },
        );
    });
    sim.with_node::<WemoService, _>(wemo_svc, |s, _| {
        s.add_switch(UserId::new("author"), switch);
    });
    // Engine-side registration + user connections (pre-minted tokens).
    let author = UserId::new("author");
    let hue_token = sim.with_node::<HueService, _>(hue_svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(author.clone(), ctx.rng())
    });
    let wemo_token = sim.with_node::<WemoService, _>(wemo_svc, |s, ctx| {
        s.core.endpoint.oauth.mint_token(author.clone(), ctx.rng())
    });
    sim.with_node::<TapEngine, _>(engine, |e, _| {
        e.register_service(
            ServiceSlug::new(HueService::SLUG),
            hue_svc,
            ServiceKey("sk_hue".into()),
        );
        e.register_service(
            ServiceSlug::new(WemoService::SLUG),
            wemo_svc,
            ServiceKey("sk_wemo".into()),
        );
        e.set_token(
            author.clone(),
            ServiceSlug::new(HueService::SLUG),
            hue_token,
        );
        e.set_token(
            author.clone(),
            ServiceSlug::new(WemoService::SLUG),
            wemo_token,
        );
    });
    A2World {
        sim,
        engine,
        switch,
        lamp: lamps[0],
    }
}

struct Passive;
impl Node for Passive {}

fn a2_applet() -> Applet {
    Applet::new(
        AppletId(2),
        "Turn on my Hue light from the Wemo light switch",
        UserId::new("author"),
        TriggerRef {
            service: ServiceSlug::new(WemoService::SLUG),
            trigger: TriggerSlug::new("switch_activated"),
            fields: FieldMap::new(),
        },
        ActionRef {
            service: ServiceSlug::new(HueService::SLUG),
            action: tap_protocol::ActionSlug::new("turn_on_lights"),
            fields: FieldMap::new(),
        },
    )
}

#[test]
fn a2_executes_end_to_end_with_fast_polling() {
    let mut w = build_a2(EngineConfig::fast(), 7);
    let installed = w
        .sim
        .with_node::<TapEngine, _>(w.engine, |e, ctx| e.install_applet(ctx, a2_applet()));
    assert!(installed.is_ok());
    // Let the first poll learn the subscription.
    w.sim.run_until(SimTime::from_secs(5));
    assert!(!w.sim.node_ref::<HueLamp>(w.lamp).state.on);
    // Activate the trigger.
    w.sim
        .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
    // With 1-second polling the light must be on within a few seconds.
    w.sim.run_until(SimTime::from_secs(10));
    assert!(
        w.sim.node_ref::<HueLamp>(w.lamp).state.on,
        "lamp should be on"
    );
    let stats = w.sim.node_ref::<TapEngine>(w.engine).stats;
    assert_eq!(stats.events_new, 1);
    assert_eq!(stats.actions_ok, 1);
    assert_eq!(stats.actions_failed, 0);
}

#[test]
fn trigger_to_action_latency_is_poll_bound() {
    // With fixed 10-second polling, T2A lands in (0, 10s] + dispatch.
    let mut cfg = EngineConfig::fast();
    cfg.polling = PollPolicy::fixed(10.0);
    let mut w = build_a2(cfg, 8);
    w.sim.with_node::<TapEngine, _>(w.engine, |e, ctx| {
        e.install_applet(ctx, a2_applet()).unwrap();
    });
    w.sim.run_until(SimTime::from_secs(30));
    let t_trigger = w.sim.now();
    w.sim
        .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
    w.sim.run_until(SimTime::from_secs(60));
    let lamp_on = w
        .sim
        .trace()
        .events()
        .iter()
        .find(|e| e.kind == "lamp.state" && e.at > t_trigger)
        .expect("lamp changed state")
        .at;
    let t2a = lamp_on.since(t_trigger);
    assert!(
        t2a > SimDuration::ZERO && t2a < SimDuration::from_secs(13),
        "t2a = {t2a}"
    );
}

#[test]
fn duplicate_events_are_not_redispatched() {
    // The buffer returns events repeatedly (polls do not consume); the
    // engine's seen-set must dedup across polls.
    let mut w = build_a2(EngineConfig::fast(), 9);
    w.sim.with_node::<TapEngine, _>(w.engine, |e, ctx| {
        e.install_applet(ctx, a2_applet()).unwrap();
    });
    w.sim.run_until(SimTime::from_secs(5));
    w.sim
        .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
    // Many poll rounds at 1-second interval.
    w.sim.run_until(SimTime::from_secs(60));
    let stats = w.sim.node_ref::<TapEngine>(w.engine).stats;
    assert_eq!(stats.actions_sent, 1, "exactly one action for one press");
    assert!(stats.polls_sent > 30);
}

#[test]
fn install_requires_registration_and_connection() {
    let mut w = build_a2(EngineConfig::fast(), 10);
    // Unknown service.
    let mut bad = a2_applet();
    bad.trigger.service = ServiceSlug::new("nonexistent");
    let err = w
        .sim
        .with_node::<TapEngine, _>(w.engine, |e, ctx| e.install_applet(ctx, bad))
        .unwrap_err();
    assert!(matches!(err, InstallError::UnknownService(_)));
    // Known service, but a user who never connected.
    let mut unconnected = a2_applet();
    unconnected.owner = UserId::new("stranger");
    let err = w
        .sim
        .with_node::<TapEngine, _>(w.engine, |e, ctx| e.install_applet(ctx, unconnected))
        .unwrap_err();
    assert!(matches!(err, InstallError::NotConnected(_)));
}

#[test]
fn disabled_applet_stops_executing() {
    let mut w = build_a2(EngineConfig::fast(), 11);
    let id = w
        .sim
        .with_node::<TapEngine, _>(w.engine, |e, ctx| e.install_applet(ctx, a2_applet()))
        .unwrap();
    w.sim.run_until(SimTime::from_secs(5));
    w.sim
        .with_node::<TapEngine, _>(w.engine, |e, ctx| e.set_enabled(ctx, id, false));
    w.sim
        .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
    w.sim.run_until(SimTime::from_secs(30));
    assert!(!w.sim.node_ref::<HueLamp>(w.lamp).state.on);
    assert_eq!(w.sim.node_ref::<TapEngine>(w.engine).stats.actions_sent, 0);
}

#[test]
fn oauth_connect_flow_stores_a_working_token() {
    let mut w = build_a2(EngineConfig::fast(), 12);
    let user = UserId::new("newbie");
    w.sim.with_node::<TapEngine, _>(w.engine, |e, ctx| {
        e.connect_service(ctx, user.clone(), ServiceSlug::new(HueService::SLUG));
    });
    w.sim.run_until(SimTime::from_secs(5));
    assert!(w
        .sim
        .node_ref::<TapEngine>(w.engine)
        .is_connected(&user, &ServiceSlug::new(HueService::SLUG)));
}

#[test]
fn alexa_realtime_hints_cut_latency() {
    // Build an Alexa → Hue world (applet A5 style, but turn_on for
    // observability) and compare hint-honored vs hint-ignored latency.
    fn run(allowlist: bool, seed: u64) -> (SimDuration, engine::EngineStats) {
        let mut sim = Sim::new(seed);
        let (hub, lamps) = install_hue(&mut sim, "hueuser", "author", 1);
        let hue_svc = sim.add_node("hue_service", HueService::new(ServiceKey("sk_hue".into())));
        let alexa = sim.add_node("alexa", AlexaService::new(ServiceKey("sk_alexa".into())));
        let mut config = EngineConfig::ifttt_like();
        if !allowlist {
            config.realtime_allowlist.clear();
        }
        // Keep regular polls long so the hint effect is unambiguous.
        config.polling = PollPolicy::fixed(120.0);
        let engine = sim.add_node("engine", TapEngine::new(config));
        sim.link(hub, hue_svc, LinkSpec::wan());
        sim.link(engine, hue_svc, LinkSpec::datacenter());
        sim.link(engine, alexa, LinkSpec::datacenter());
        sim.node_mut::<HueHub>(hub).allow_only(vec![hue_svc]);
        sim.with_node::<HueService, _>(hue_svc, |s, _| {
            s.add_account(
                UserId::new("author"),
                HueAccount {
                    hub,
                    username: "hueuser".into(),
                    lamp_device: "hue_lamp_1".into(),
                },
            );
        });
        let author = UserId::new("author");
        let hue_token = sim.with_node::<HueService, _>(hue_svc, |s, ctx| {
            s.core.endpoint.oauth.mint_token(author.clone(), ctx.rng())
        });
        let alexa_token = sim.with_node::<AlexaService, _>(alexa, |s, ctx| {
            s.core.enable_realtime(engine);
            s.core.endpoint.oauth.mint_token(author.clone(), ctx.rng())
        });
        sim.with_node::<TapEngine, _>(engine, |e, _| {
            e.register_service(
                ServiceSlug::new(HueService::SLUG),
                hue_svc,
                ServiceKey("sk_hue".into()),
            );
            e.register_service(
                ServiceSlug::new(AlexaService::SLUG),
                alexa,
                ServiceKey("sk_alexa".into()),
            );
            e.set_token(
                author.clone(),
                ServiceSlug::new(HueService::SLUG),
                hue_token,
            );
            e.set_token(
                author.clone(),
                ServiceSlug::new(AlexaService::SLUG),
                alexa_token,
            );
        });
        let mut fields = FieldMap::new();
        fields.insert("phrase".into(), "movie time".into());
        let applet = Applet::new(
            AppletId(5),
            "Use Alexa's voice control to turn on the Hue light",
            author.clone(),
            TriggerRef {
                service: ServiceSlug::new(AlexaService::SLUG),
                trigger: TriggerSlug::new("say_a_phrase"),
                fields,
            },
            ActionRef {
                service: ServiceSlug::new(HueService::SLUG),
                action: tap_protocol::ActionSlug::new("turn_on_lights"),
                fields: FieldMap::new(),
            },
        );
        sim.with_node::<TapEngine, _>(engine, |e, ctx| {
            e.install_applet(ctx, applet).unwrap();
        });
        // Let the initial poll pass, then speak.
        sim.run_until(SimTime::from_secs(10));
        let t0 = sim.now();
        sim.with_node::<AlexaService, _>(alexa, |s, ctx| {
            s.handle_utterance(ctx, &author, "alexa trigger movie time");
        });
        sim.run_until(SimTime::from_secs(250));
        let lamp_on = sim
            .trace()
            .events()
            .iter()
            .find(|e| e.kind == "lamp.state" && e.at > t0)
            .map(|e| e.at)
            .unwrap_or(SimTime::MAX);
        let _ = lamps;
        (lamp_on.since(t0), sim.node_ref::<TapEngine>(engine).stats)
    }
    let (hinted, honored) = run(true, 21);
    let (unhinted, ignored) = run(false, 22);
    assert!(hinted < SimDuration::from_secs(10), "hinted t2a = {hinted}");
    assert!(
        unhinted > SimDuration::from_secs(30),
        "unhinted t2a = {unhinted}"
    );
    // The fast path is the realtime scheduler, visibly: the notification
    // was honored and produced exactly one out-of-cadence poll.
    assert_eq!(honored.realtime_notifications, 1, "{honored:?}");
    assert_eq!(honored.realtime_polls, 1, "{honored:?}");
    assert_eq!(honored.realtime_malformed, 0);
    // Off the allowlist the hint is acknowledged and dropped; the poll
    // cadence is untouched.
    assert_eq!(ignored.hints_ignored, 1, "{ignored:?}");
    assert_eq!(ignored.realtime_notifications, 0);
    assert_eq!(ignored.realtime_polls, 0);
}

/// A hint sender for exercising the notification endpoint directly: fires
/// one POST at the engine on start and remembers the response.
struct HintSender {
    engine: NodeId,
    body: Vec<u8>,
    key: &'static str,
    status: Option<u16>,
}

impl Node for HintSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let req = Request::post(tap_protocol::endpoints::REALTIME_NOTIFY_PATH)
            .with_header(tap_protocol::auth::SERVICE_KEY_HEADER, self.key)
            .with_body(self.body.clone());
        ctx.send_request(self.engine, req, Token(1), RequestOpts::default());
    }

    fn on_response(&mut self, _ctx: &mut Context<'_>, _token: Token, resp: Response) {
        self.status = Some(resp.status);
    }
}

/// Drive one realtime notification with `body` into an A2-style engine
/// (authenticated as the wemo service) and return the HTTP status plus the
/// engine stats.
fn drive_hint(body: Vec<u8>, seed: u64) -> (u16, engine::EngineStats) {
    let mut w = build_a2(
        EngineConfig::fast().allow_realtime(ServiceSlug::new(WemoService::SLUG)),
        seed,
    );
    let sender = w.sim.add_node(
        "hint_sender",
        HintSender {
            engine: w.engine,
            body,
            key: "sk_wemo",
            status: None,
        },
    );
    w.sim.link(sender, w.engine, LinkSpec::datacenter());
    w.sim.run_until(SimTime::from_secs(2));
    let status = w
        .sim
        .node_ref::<HintSender>(sender)
        .status
        .expect("hint answered");
    (status, w.sim.node_ref::<TapEngine>(w.engine).stats)
}

#[test]
fn malformed_realtime_notification_is_a_counted_400() {
    // Garbage bytes: not a v1 notification, not a legacy one.
    let (status, stats) = drive_hint(b"{\"not\": \"a notification\"}".to_vec(), 31);
    assert_eq!(
        status, 400,
        "malformed body must be rejected, not swallowed"
    );
    assert_eq!(stats.realtime_malformed, 1, "{stats:?}");
    assert_eq!(stats.hints_received, 1);
    assert_eq!(stats.realtime_polls, 0);

    // A well-formed v1 body claiming a service other than the
    // authenticated sender is equally malformed.
    let spoofed = tap_protocol::wire::RealtimeNotificationV1::single(
        ServiceSlug::new("somebody_else"),
        TriggerSlug::new("switch_activated"),
        tap_protocol::TriggerIdentity("spoof".into()),
    );
    let (status, stats) = drive_hint(tap_protocol::wire::to_bytes(&spoofed).to_vec(), 32);
    assert_eq!(status, 400, "service mismatch is a counted 400");
    assert_eq!(stats.realtime_malformed, 1, "{stats:?}");

    // An unknown wire version is refused rather than half-understood.
    let mut future = tap_protocol::wire::RealtimeNotificationV1::single(
        ServiceSlug::new(WemoService::SLUG),
        TriggerSlug::new("switch_activated"),
        tap_protocol::TriggerIdentity("future".into()),
    );
    future.version = 99;
    let (status, stats) = drive_hint(tap_protocol::wire::to_bytes(&future).to_vec(), 33);
    assert_eq!(status, 400, "unknown version is a counted 400");
    assert_eq!(stats.realtime_malformed, 1, "{stats:?}");
}

#[test]
fn conditions_filter_dispatches() {
    use engine::Condition;
    // A2 variant that only fires when the switch event came from the
    // physical button (ingredient source == "physical").
    let mut w = build_a2(EngineConfig::fast(), 14);
    let applet = a2_applet().with_condition(Condition::Equals {
        key: "source".into(),
        value: "physical".into(),
    });
    w.sim.with_node::<TapEngine, _>(w.engine, |e, ctx| {
        e.install_applet(ctx, applet).unwrap();
    });
    w.sim.run_until(SimTime::from_secs(5));
    // Physical press: the condition holds, the lamp turns on.
    w.sim
        .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
    w.sim.run_until(SimTime::from_secs(15));
    assert!(w.sim.node_ref::<HueLamp>(w.lamp).state.on);
    let stats = w.sim.node_ref::<TapEngine>(w.engine).stats;
    assert_eq!(stats.actions_sent, 1);
    assert_eq!(stats.actions_filtered, 0);
}

#[test]
fn failing_condition_suppresses_the_action() {
    use engine::Condition;
    let mut w = build_a2(EngineConfig::fast(), 15);
    let applet = a2_applet().with_condition(Condition::Equals {
        key: "source".into(),
        value: "never_matches".into(),
    });
    w.sim.with_node::<TapEngine, _>(w.engine, |e, ctx| {
        e.install_applet(ctx, applet).unwrap();
    });
    w.sim.run_until(SimTime::from_secs(5));
    w.sim
        .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
    w.sim.run_until(SimTime::from_secs(15));
    assert!(
        !w.sim.node_ref::<HueLamp>(w.lamp).state.on,
        "action must be filtered"
    );
    let stats = w.sim.node_ref::<TapEngine>(w.engine).stats;
    assert_eq!(stats.actions_sent, 0);
    assert_eq!(stats.actions_filtered, 1);
    // The event is consumed, not retried forever.
    w.sim.run_until(SimTime::from_secs(60));
    assert_eq!(
        w.sim.node_ref::<TapEngine>(w.engine).stats.actions_filtered,
        1
    );
}
