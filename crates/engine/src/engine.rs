//! The TAP engine node (❼ in the paper's Figure 1).
//!
//! Reproduces the applet-execution behaviour the paper observes from
//! production IFTTT (§2.2, §4):
//!
//! * per-subscription **polling** of trigger services with an HTTPS POST
//!   carrying the service key, the user's access token, a random request
//!   id, and a `limit` (50 by default);
//! * **batched** trigger-event responses: every new event in a poll
//!   response is dispatched as one action execution, back-to-back — the
//!   mechanism behind the clustered actions of Figure 6;
//! * **realtime-API hints** that are accepted but ignored unless the
//!   sending service is on a per-service allowlist (the paper infers IFTTT
//!   "processes the real-time API hints for some services (such as
//!   Alexa)");
//! * **OAuth2 token caching** per (user, service) "to make future applet
//!   execution fully automated";
//! * **coarse service-level permissions** (§6), with the fine-grained
//!   alternative available behind [`crate::permissions::Granularity`];
//! * **no loop detection by default** — the paper experimentally confirms
//!   IFTTT performs no syntax check; both the static check and a runtime
//!   detector can be switched on to evaluate the §6 recommendations.

use crate::applet::{substitute_fields, Applet, AppletId};
use crate::loopdetect::{RuntimeLoopDetector, RuntimeVerdict, StaticLoopDetector};
use crate::obs::{ObsEvent, ObsSink};
use crate::permissions::{Capability, Granularity, PermissionManager};
use crate::polling::PollPolicy;
use crate::resilience::{BreakerPolicy, CircuitBreaker, RetryPolicy};
use mem::{Arena, FxHashMap, FxHashSet};
use rand::Rng;
use simnet::prelude::*;
use simnet::rng::Dist;
use std::borrow::Cow;
use std::collections::HashSet;
use tap_protocol::auth::{
    AccessToken, ServiceKey, AUTHORIZATION_HEADER, REQUEST_ID_HEADER, RETRY_AFTER_HEADER,
    SERVICE_KEY_HEADER,
};
use tap_protocol::endpoints::query_path;
use tap_protocol::endpoints::{action_path, trigger_path, BATCH_POLL_PATH, REALTIME_NOTIFY_PATH};
use tap_protocol::error::FailureClass;
use tap_protocol::wire::{
    self, ActionRequestBody, BatchPollEntry, BatchPollRequestBody, BatchPollResponseBody,
    BatchPollResult, ErrorBody, PollRequestBody, PollResponseBody, QueryRequestBody,
    QueryResponseBody, RealtimeAckBody, RealtimeNotification, TriggerEvent, DEFAULT_POLL_LIMIT,
};
use tap_protocol::{
    is_degenerate, validate_steps, ActionSlug, FieldMap, Interner, QuerySlug, ServiceSlug,
    StepFailurePolicy, StepKind, StepNode, StepSpec, Symbol, TriggerIdentity, UserId,
};

// Correlation-token tags (top byte).
const TAG_SHIFT: u64 = 56;
const TAG_POLL: u64 = 1 << TAG_SHIFT;
const TAG_ACTION: u64 = 2 << TAG_SHIFT;
const TAG_OAUTH_AUTH: u64 = 3 << TAG_SHIFT;
const TAG_OAUTH_TOKEN: u64 = 4 << TAG_SHIFT;
const TAG_QUERY: u64 = 5 << TAG_SHIFT;
const TAG_BATCH: u64 = 6 << TAG_SHIFT;
const TAG_DAG: u64 = 7 << TAG_SHIFT;
const TAG_MASK: u64 = 0xFF << TAG_SHIFT;
/// Query tokens pack (dispatch << 4 | query index); 16 queries per applet.
const QUERY_IDX_BITS: u64 = 4;

// Timer-key tags.
const TK_POLL: u64 = 1 << TAG_SHIFT;
const TK_DISPATCH: u64 = 2 << TAG_SHIFT;
const TK_DAG: u64 = 3 << TAG_SHIFT;

/// DAG tokens and timers pack `(run << 6) | node index`; the all-ones
/// node sentinel marks a run-start timer rather than a node retry.
const DAG_NODE_BITS: u64 = 6;
const DAG_NODE_MASK: u64 = (1 << DAG_NODE_BITS) - 1;
const DAG_RUN_START: u64 = DAG_NODE_MASK;
/// Dispatch ids of DAG runs carry this bit, keeping the id space (and the
/// attribution chains keyed on it) disjoint from single-step dispatches.
const DAG_DISPATCH_BIT: u64 = 1 << 63;

/// A partner service as the engine knows it.
#[derive(Debug, Clone)]
pub struct ServiceRegistration {
    pub slug: ServiceSlug,
    pub node: NodeId,
    pub key: ServiceKey,
}

/// Runtime loop-detection configuration.
#[derive(Debug, Clone)]
pub struct RuntimeLoopConfig {
    /// Flag when more than this many executions…
    pub max_executions: usize,
    /// …occur within this window.
    pub window: SimDuration,
    /// Disable a flagged applet automatically.
    pub auto_disable: bool,
}

/// Which TAP ecosystem's execution semantics the engine mimics for
/// multi-step applet DAGs. Single-step applets behave identically under
/// both policies, so the switch never perturbs a classic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePolicy {
    /// IFTTT-style: network steps of a run launch as soon as their
    /// predecessors complete (parallel where the DAG allows), and a
    /// terminally failed step defaults to resolving empty while the rest
    /// of the run continues.
    #[default]
    IftttLike,
    /// Zapier-style: network steps run strictly one at a time in node
    /// order, and a terminally failed step defaults to halting the run —
    /// remaining nodes are skipped and the run dead-letters.
    ZapierLike,
}

/// Engine behaviour knobs. Defaults reproduce production IFTTT as measured
/// by the paper; experiment E3 swaps `polling` for `PollPolicy::fixed(1.0)`.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Poll scheduling policy.
    pub polling: PollPolicy,
    /// Multi-step execution semantics (see [`EnginePolicy`]).
    pub policy: EnginePolicy,
    /// Services whose realtime hints are honored (the paper: Alexa).
    pub realtime_allowlist: HashSet<ServiceSlug>,
    /// Delay between an honored hint and the prompt poll it schedules (s).
    pub hint_processing: Dist,
    /// Debounce window armed after a realtime-scheduled poll resolves:
    /// further notifications for the same subscription inside the window
    /// are absorbed (counted as `realtime_suppressed`), so a burst of
    /// service events costs at most one out-of-cadence poll per window.
    pub realtime_debounce: SimDuration,
    /// Engine-internal delay between a poll response with events and the
    /// first action request (Table 5 measures ≈1 s).
    pub dispatch_overhead: Dist,
    /// Gap between successive actions of one batch (s).
    pub inter_action_gap: Dist,
    /// Delay of the first poll after installing an applet (s).
    pub initial_poll_delay: Dist,
    /// Timeout for polls and action requests.
    pub request_timeout: SimDuration,
    /// Retry budget + backoff for failed action dispatches. Disabled by
    /// default (give up immediately), which is what the paper's black-box
    /// view of IFTTT suggests.
    pub action_retry: RetryPolicy,
    /// Retry budget + backoff for failed subscription polls, on top of the
    /// regular cadence. Disabled by default: historically a failed poll
    /// just waited for the next cycle.
    pub poll_retry: RetryPolicy,
    /// Per-trigger-service circuit breaker; `None` (default) never sheds.
    pub breaker: Option<BreakerPolicy>,
    /// Permission model granularity.
    pub permission_granularity: Granularity,
    /// Reject applet installs that would create a (statically visible) loop.
    pub static_loop_check: bool,
    /// Runtime loop detection, if any.
    pub runtime_loop: Option<RuntimeLoopConfig>,
    /// Coalesce sibling subscriptions — same (user, trigger service,
    /// cadence class) — into one multi-trigger batch poll request. Off by
    /// default so E3 and the IftttLike calibration stay comparable with
    /// earlier revisions; the fleet workload turns it on.
    pub batch_polling: bool,
    /// How far ahead (seconds) a sibling's scheduled poll may be and still
    /// ride the current batch request. Jittered per batch.
    pub coalesce_window: Dist,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            polling: PollPolicy::ifttt_like(),
            policy: EnginePolicy::IftttLike,
            realtime_allowlist: HashSet::new(),
            hint_processing: Dist::Uniform { lo: 0.5, hi: 1.5 },
            realtime_debounce: SimDuration::from_secs(5),
            dispatch_overhead: Dist::LogNormal {
                mu: 0.0,
                sigma: 0.35,
                cap: 5.0,
            },
            inter_action_gap: Dist::Uniform { lo: 0.05, hi: 0.3 },
            initial_poll_delay: Dist::Uniform { lo: 1.0, hi: 5.0 },
            request_timeout: SimDuration::from_secs(30),
            action_retry: RetryPolicy::none(),
            poll_retry: RetryPolicy::none(),
            breaker: None,
            permission_granularity: Granularity::ServiceLevel,
            static_loop_check: false,
            runtime_loop: None,
            batch_polling: false,
            // Wide enough to capture the initial-poll stagger (1–5 s);
            // after the first batch the group is phase-locked anyway.
            coalesce_window: Dist::Uniform { lo: 4.0, hi: 6.0 },
        }
    }
}

impl EngineConfig {
    /// Production-like config with Alexa on the realtime allowlist, as the
    /// paper infers from the low latency of A5–A7.
    pub fn ifttt_like() -> Self {
        EngineConfig::default().allow_realtime(ServiceSlug::new("amazon_alexa"))
    }

    /// The authors' fast engine of E3: 1-second polling.
    pub fn fast() -> Self {
        EngineConfig {
            polling: PollPolicy::fixed(1.0),
            dispatch_overhead: Dist::Uniform { lo: 0.05, hi: 0.2 },
            initial_poll_delay: Dist::Uniform { lo: 0.1, hi: 1.0 },
            ..EngineConfig::default()
        }
    }

    /// Turn on the full resilience stack (retries with exponential
    /// backoff, poll retry, circuit breaking) on top of `self`. Used by
    /// chaos experiments; leaves every scheduling distribution untouched,
    /// so a fault-free run behaves identically to the base config.
    pub fn resilient(self) -> Self {
        self.with_action_retry(RetryPolicy::retries(3))
            .with_poll_retry(RetryPolicy::retries(2))
            .with_breaker(BreakerPolicy::default())
            // A lost response stalls its chain for a whole request timeout
            // before the retry machinery can react; under injected loss the
            // default 30 s dominates recovery latency, so tighten it.
            .with_request_timeout(SimDuration::from_secs(10))
    }

    /// Replace the poll scheduling policy.
    pub fn with_polling(mut self, polling: PollPolicy) -> Self {
        self.polling = polling;
        self
    }

    /// Select the multi-step execution semantics.
    pub fn with_policy(mut self, policy: EnginePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Turn sibling-subscription batch polling on or off.
    pub fn with_batch_polling(mut self, on: bool) -> Self {
        self.batch_polling = on;
        self
    }

    /// Set the poll/action request timeout.
    pub fn with_request_timeout(mut self, timeout: SimDuration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Set the retry budget for failed action dispatches.
    pub fn with_action_retry(mut self, policy: RetryPolicy) -> Self {
        self.action_retry = policy;
        self
    }

    /// Set the retry budget for failed subscription polls.
    pub fn with_poll_retry(mut self, policy: RetryPolicy) -> Self {
        self.poll_retry = policy;
        self
    }

    /// Install a per-trigger-service circuit-breaker policy.
    pub fn with_breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = Some(policy);
        self
    }

    /// Set the permission model granularity (§6).
    pub fn with_permission_granularity(mut self, granularity: Granularity) -> Self {
        self.permission_granularity = granularity;
        self
    }

    /// Enable or disable the static install-time loop check (§6).
    pub fn with_static_loop_check(mut self, on: bool) -> Self {
        self.static_loop_check = on;
        self
    }

    /// Install a runtime loop-detection configuration (§6).
    pub fn with_runtime_loop(mut self, cfg: RuntimeLoopConfig) -> Self {
        self.runtime_loop = Some(cfg);
        self
    }

    /// Add a service to the realtime-hint allowlist.
    pub fn allow_realtime(mut self, slug: ServiceSlug) -> Self {
        self.realtime_allowlist.insert(slug);
        self
    }

    /// Set the post-poll debounce window for realtime notifications.
    pub fn with_realtime_debounce(mut self, window: SimDuration) -> Self {
        self.realtime_debounce = window;
        self
    }
}

/// Why an applet install was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    UnknownService(ServiceSlug),
    /// The user has not connected (OAuth-authorized) this service.
    NotConnected(ServiceSlug),
    /// Static loop check rejected the applet.
    LoopDetected(Vec<AppletId>),
    /// The applet's multi-step DAG failed validation.
    InvalidSteps(String),
}

/// One applet- or service-lifecycle transition, applied through the
/// single [`TapEngine::apply_lifecycle`] entry point. This is the churn
/// op the fleet's live-world driver speaks: every install path the engine
/// ever had (legacy single-step, degenerate-DAG wrap, multi-step) and
/// every teardown the static workload never needed route through here.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // transient op value, consumed immediately
pub enum LifecycleEvent {
    /// Install and enable an applet (schedules its first trigger poll).
    /// Degenerate one-node action DAGs fold onto the single-step path
    /// exactly as the legacy constructor did.
    InstallApplet(Applet),
    /// Remove an applet permanently: cancel its pending poll timer, shrink
    /// its coalescing group (evicting the cached batch body and reverting
    /// the survivor's `grouped` hint when membership drops to 1), clear
    /// realtime state, prune identity routing, and dead-letter its
    /// in-flight dispatches and DAG runs. The slot is tombstoned, never
    /// compacted, so in-flight tokens and timers miss instead of aliasing.
    UninstallApplet(AppletId),
    /// Register a partner service mid-run (what service publication does),
    /// optionally adding it to the realtime allowlist.
    OnboardService {
        /// Service slug new installs will reference.
        slug: ServiceSlug,
        /// Simulation node serving the partner API.
        node: NodeId,
        /// Service key presented on every request.
        key: ServiceKey,
        /// Honor this service's realtime hints (§4's Alexa treatment).
        realtime: bool,
    },
    /// A service dies permanently — a terminal outage, distinct from a
    /// chaos blip: every applet touching it (as trigger or action) is
    /// uninstalled with full unwind, its tokens and breaker state are
    /// dropped, and its realtime allowlist entry is revoked.
    RetireService(ServiceSlug),
}

/// Successful outcome of one [`TapEngine::apply_lifecycle`] application.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleAck {
    Installed(AppletId),
    Uninstalled(AppletId),
    Onboarded(ServiceSlug),
    Retired {
        service: ServiceSlug,
        /// Live applets uninstalled by the retirement cascade.
        applets_removed: u32,
    },
}

/// Why a lifecycle event was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// An install was rejected (see [`InstallError`]).
    Install(InstallError),
    /// Uninstall of an applet id that is not installed (or already gone).
    UnknownApplet(AppletId),
    /// Retirement of a service that was never registered (or already
    /// retired).
    UnknownService(ServiceSlug),
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub polls_sent: u64,
    pub polls_empty: u64,
    pub polls_failed: u64,
    pub events_received: u64,
    pub events_new: u64,
    pub actions_sent: u64,
    pub actions_ok: u64,
    pub actions_failed: u64,
    pub hints_received: u64,
    pub hints_honored: u64,
    pub hints_ignored: u64,
    pub loops_flagged: u64,
    /// Dispatches suppressed by an applet condition.
    pub actions_filtered: u64,
    /// Pre-dispatch queries sent.
    pub queries_sent: u64,
    /// Pre-dispatch queries that failed (treated as empty results).
    pub queries_failed: u64,
    /// Action dispatches retried after a failure.
    pub actions_retried: u64,
    /// Coalesced batch poll requests sent (each carries ≥ 2 entries).
    pub polls_batched: u64,
    /// Subscription polls that rode a sibling's batch request instead of
    /// costing their own round trip (batch members minus initiators).
    pub polls_coalesced: u64,
    /// Failed polls re-sent on the backoff schedule (subset of
    /// `polls_failed`).
    pub polls_retried: u64,
    /// Polls shed by an open circuit breaker (deferred to the next cycle).
    pub polls_shed: u64,
    /// Breaker transitions into `Open` (including failed half-open probes).
    pub breaker_trips: u64,
    /// Action dispatches permanently abandoned: retries exhausted or a
    /// terminal client error. Always incremented alongside
    /// `actions_failed`, so `events_new == actions_ok + actions_filtered +
    /// dead_letters` once the engine is idle.
    pub dead_letters: u64,
    /// Batch poll failures that dropped their group to singleton polls for
    /// a cycle.
    pub batch_fallbacks: u64,
    /// Realtime notifications accepted into the immediate-poll scheduler
    /// (equals `hints_honored`; one per honored notification request).
    pub realtime_notifications: u64,
    /// Out-of-cadence polls sent because a realtime notification preempted
    /// the subscription's pending cadence entry (subset of `polls_sent`).
    pub realtime_polls: u64,
    /// Hinted subscriptions whose notification was absorbed: an immediate
    /// poll already outstanding, the debounce window open, or a cadence
    /// poll in flight.
    pub realtime_suppressed: u64,
    /// Realtime notification bodies that failed to parse (answered 400).
    pub realtime_malformed: u64,
    /// Multi-step DAG runs started.
    pub dag_runs: u64,
    /// Filter nodes executed (both predicate outcomes count).
    pub dag_nodes_filter: u64,
    /// Transform nodes executed.
    pub dag_nodes_transform: u64,
    /// Query nodes completed successfully.
    pub dag_nodes_query: u64,
    /// Action nodes completed successfully.
    pub dag_nodes_action: u64,
    /// Failed DAG query/action attempts re-sent on the backoff schedule.
    pub dag_node_retries: u64,
}

/// Dense per-applet index: slots are assigned sequentially at install and
/// never reused — an uninstalled applet leaves a tombstone, not a hole —
/// so hot paths index straight into the engine's `tasks`/`applets`
/// vectors instead of hashing an [`AppletId`].
type Slot = u32;

#[derive(Debug)]
struct PollTask {
    /// The public applet id this slot was assigned to (observability
    /// events and traces speak applet ids, not slots).
    id: AppletId,
    /// Interned symbols for the hot (user, service) token lookups — the
    /// strings are hashed once at install, never per poll.
    owner: Symbol,
    trigger_service: Symbol,
    action_service: Symbol,
    /// Cached request constants: the trigger endpoint path and the fully
    /// serialized poll body (identity, fields, user, limit are all fixed
    /// per applet), so a poll clones a `Bytes` handle instead of
    /// re-serializing JSON.
    poll_path: String,
    poll_body: bytes::Bytes,
    /// Cached action endpoint path.
    action_path: String,
    /// Serialized action body, cached when the applet's action fields are
    /// empty (then ingredient substitution cannot change the payload).
    /// `None` means the body depends on the triggering event.
    action_body: Option<bytes::Bytes>,
    /// Event ids already dispatched, as interned symbols.
    seen: FxHashSet<Symbol>,
    enabled: bool,
    next_poll: Option<TimerId>,
    /// Absolute time the pending poll timer fires (meaningful only while
    /// `next_poll` is `Some`); lets a sibling's batch decide whether this
    /// subscription's poll is close enough to coalesce.
    next_poll_at: SimTime,
    /// Coalescing-group key: (owner, trigger service, cadence class).
    group: (Symbol, Symbol, u8),
    /// Whether the coalescing group ever had a sibling. Most users install
    /// one applet per service, so most poll timers can skip the batch
    /// machinery (group scan, window jitter draw, member collection)
    /// entirely. Purely a fast-path hint: `send_batch_poll` still falls
    /// back to a single poll when no sibling is actually coalescible.
    grouped: bool,
    /// Cached wire entry this subscription contributes to a batch poll.
    batch_entry: BatchPollEntry,
    /// Consecutive failed polls for this subscription (resets on success;
    /// bounds the poll-retry budget).
    retries: u32,
    /// When the in-flight poll (single or batched) left the engine. The
    /// engine keeps at most one poll in flight per subscription, so the
    /// value read at response time is the matching request's send time —
    /// attribution sinks use it to split cadence wait from poll RTT.
    poll_sent_at: SimTime,
    /// A realtime notification preempted this subscription's cadence
    /// timer: an immediate poll is armed or in flight, and further hints
    /// are absorbed until its response (or shed) clears the flag. The
    /// timer-XOR-in-flight invariant means the flag never faces two
    /// outstanding polls.
    rt_pending: bool,
    /// Where the preempted cadence entry would have fired, kept for a
    /// grouped member split out of its batch: the out-of-band poll's
    /// response restores this schedule so the group's phase lock survives
    /// the detour. `None` (solo subscriptions) draws a fresh cadence gap.
    rt_resume_at: Option<SimTime>,
    /// End of the debounce window armed when a realtime poll resolves;
    /// notifications arriving before this are absorbed.
    rt_debounce_until: SimTime,
    /// The applet was uninstalled: the slot is a tombstone. It stays
    /// allocated (in-flight tokens and timer keys carry slot numbers, so
    /// compaction would alias them) but is removed from every routing
    /// structure, and late poll responses for it are discarded.
    uninstalled: bool,
}

#[derive(Debug)]
struct DispatchJob {
    slot: Slot,
    event: TriggerEvent,
    /// Query responses still outstanding before the action can go out.
    pending_queries: usize,
    /// Query results merged under their prefixes.
    extra: tap_protocol::FieldMap,
    /// Set once the queries (if any) have been issued.
    queries_issued: bool,
    /// Action attempts already made (for retry accounting).
    attempts: u32,
}

/// Execution state of one DAG node within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum NodeStatus {
    /// Not started; waiting on predecessors (or a free launch slot).
    #[default]
    Pending,
    /// A network request (or retry timer) is outstanding.
    InFlight,
    /// Completed successfully; `out` holds its contribution.
    Done,
    /// A filter predicate evaluated false: downstream nodes are skipped
    /// without any failure being recorded.
    Cut,
    /// Never ran because a predecessor was cut, skipped, or failed.
    Skipped,
    /// Failed terminally under a halting failure policy.
    Failed,
}

#[derive(Debug, Default)]
struct RunNode {
    status: NodeStatus,
    /// Network attempts already sent (query/action nodes only).
    attempts: u32,
    /// Ingredients this node contributes to its dependents: a transform's
    /// substituted fields, or a query's prefixed result keys.
    out: FieldMap,
}

/// One activation walking a multi-step applet DAG — the multi-step
/// counterpart of [`DispatchJob`]. A run ends with exactly one terminal
/// event (ok / dead letter / filtered), so the single-step conservation
/// invariant extends unchanged to multi-step applets.
#[derive(Debug)]
struct DagRun {
    slot: Slot,
    event: TriggerEvent,
    nodes: Vec<RunNode>,
    /// Network requests (or pending retry timers) outstanding.
    outstanding: usize,
    /// A halting node failure marked the whole run failed.
    failed: bool,
    any_action_ok: bool,
    /// An action node failed terminally under a `Continue` policy.
    any_action_failed: bool,
    /// ZapierLike step semantics: at most one network node in flight,
    /// lowest index first.
    serial: bool,
}

/// The engine node.
#[derive(Debug)]
pub struct TapEngine {
    /// Behaviour configuration.
    pub config: EngineConfig,
    /// Engine-local interner for service slugs, user ids, trigger
    /// identities, and event ids. Symbols never leave the engine: stats,
    /// traces, and wire bodies all use the resolved strings.
    syms: Interner,
    services: FxHashMap<Symbol, ServiceRegistration>,
    /// Service keys are interned at registration, so the per-notification
    /// authentication lookup hashes a `Symbol`, not the key string.
    service_by_key: FxHashMap<Symbol, ServiceSlug>,
    /// Per-(user, service) `Authorization` header values, precomputed
    /// at token install so poll/action/query sends clone a string
    /// instead of formatting one.
    tokens: FxHashMap<(Symbol, Symbol), String>,
    pending_oauth: FxHashMap<u64, (UserId, ServiceSlug)>,
    next_oauth: u64,
    /// [`AppletId`] → dense slot, consulted only on the public id-keyed
    /// API; internal paths carry slots.
    slot_of: FxHashMap<u32, Slot>,
    /// Applet catalog, indexed by slot (install order; never removed).
    applets: Vec<Applet>,
    /// Per-applet polling state, indexed by slot parallel to `applets`.
    tasks: Vec<PollTask>,
    by_identity: FxHashMap<Symbol, Vec<Slot>>,
    /// Coalescing groups, in install order (the order batch entries are
    /// listed on the wire and demuxed back).
    poll_groups: FxHashMap<(Symbol, Symbol, u8), Vec<Slot>>,
    /// In-flight batch polls: the arena handle is the wire sequence
    /// number; the value is the member slots, in entry order.
    pending_batches: Arena<Vec<Slot>>,
    /// Serialized batch request body per group, reused verbatim while the
    /// group's membership is unchanged — after the first response
    /// phase-locks a group this is every round, so a steady-state batch
    /// poll clones a `Bytes` handle exactly like a single poll does.
    batch_bodies: FxHashMap<(Symbol, Symbol, u8), (Vec<Slot>, bytes::Bytes)>,
    /// In-flight single-step dispatches; the generation-checked arena
    /// handle is the dispatch id carried by tokens and timer keys.
    dispatches: Arena<DispatchJob>,
    /// In-flight multi-step runs; the arena handle is the run id (the low
    /// bits of the run's tagged dispatch id).
    dag_runs: Arena<DagRun>,
    /// Permission manager (service-level by default, §6).
    pub permissions: PermissionManager,
    /// Static loop detector (consulted only if configured).
    pub static_detector: StaticLoopDetector,
    runtime_detector: Option<RuntimeLoopDetector>,
    /// Aggregate counters.
    pub stats: EngineStats,
    /// Per-trigger-service circuit breakers (allocated lazily; only
    /// consulted when `config.breaker` is set).
    breakers: FxHashMap<Symbol, CircuitBreaker>,
    /// Groups temporarily demoted to singleton polls after a batch poll
    /// failure, until the stored instant.
    degraded_until: FxHashMap<(Symbol, Symbol, u8), SimTime>,
    /// Optional instrumentation sink (see [`crate::obs`]).
    sink: Option<std::sync::Arc<dyn ObsSink>>,
    /// Recycled batch member lists: popped when a batch poll assembles its
    /// members, pushed back (cleared, capacity kept) when the batch
    /// resolves. Steady-state batch polling allocates no member vectors.
    member_pool: Vec<Vec<Slot>>,
    /// Recycled fresh-event scratch for `ingest_poll_events`.
    event_pool: Vec<Vec<TriggerEvent>>,
    /// Parsed non-empty poll replies keyed by exact body bytes. Polls do
    /// not consume the service's buffer, so an active subscription returns
    /// the same body every cycle until a new event arrives; one parse then
    /// serves every repeat. Cleared wholesale when it outgrows the live
    /// working set of distinct bodies.
    poll_parse_cache: FxHashMap<bytes::Bytes, std::sync::Arc<ParsedPollBody>>,
}

/// Upper bound on distinct memoized poll reply bodies. Bodies churn as new
/// events arrive, so the cache is cleared (capacity kept) at the cap; the
/// steady-state working set — subscriptions currently re-serving buffered
/// events — re-fills it within one poll cycle.
const POLL_PARSE_CACHE_MAX: usize = 4096;

/// A memoized parse of a non-empty poll reply body.
#[derive(Debug)]
enum ParsedPollBody {
    Single(Vec<TriggerEvent>),
    Batch(Vec<BatchPollResult>),
}

impl TapEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let runtime_detector = config
            .runtime_loop
            .as_ref()
            .map(|c| RuntimeLoopDetector::new(c.max_executions, c.window));
        let permissions = PermissionManager::new(config.permission_granularity);
        TapEngine {
            config,
            syms: Interner::new(),
            services: FxHashMap::default(),
            service_by_key: FxHashMap::default(),
            tokens: FxHashMap::default(),
            pending_oauth: FxHashMap::default(),
            next_oauth: 1,
            slot_of: FxHashMap::default(),
            applets: Vec::new(),
            tasks: Vec::new(),
            by_identity: FxHashMap::default(),
            poll_groups: FxHashMap::default(),
            pending_batches: Arena::new(),
            batch_bodies: FxHashMap::default(),
            dispatches: Arena::new(),
            dag_runs: Arena::new(),
            permissions,
            static_detector: StaticLoopDetector::new(),
            runtime_detector,
            stats: EngineStats::default(),
            breakers: FxHashMap::default(),
            degraded_until: FxHashMap::default(),
            sink: None,
            member_pool: Vec::new(),
            event_pool: Vec::new(),
            poll_parse_cache: FxHashMap::default(),
        }
    }

    /// Swap the slab-backed in-flight stores for their `HashMap` reference
    /// implementation (identical handle sequences, associative storage).
    /// Differential tests use this to assert the slab migration is
    /// behaviour-preserving; must be called before any applet activity.
    #[doc(hidden)]
    pub fn use_reference_storage(&mut self) {
        assert!(
            self.dispatches.is_empty()
                && self.dag_runs.is_empty()
                && self.pending_batches.is_empty(),
            "reference storage must be selected before any in-flight state exists"
        );
        self.pending_batches = Arena::new_reference();
        self.dispatches = Arena::new_reference();
        self.dag_runs = Arena::new_reference();
    }

    /// Attach an instrumentation sink. One sink may be shared by many
    /// engines (fleet shards do exactly that).
    pub fn set_sink(&mut self, sink: std::sync::Arc<dyn ObsSink>) {
        self.sink = Some(sink);
    }

    /// Emit one instrumentation event: apply its counter increments to
    /// [`TapEngine::stats`] and forward it to the sink, if any. Every
    /// stats mutation in the engine goes through here.
    fn obs(&mut self, ev: ObsEvent) {
        self.stats.apply(&ev);
        if let Some(sink) = &self.sink {
            sink.on_event(&ev);
        }
    }

    /// Register a partner service (what service publication does).
    ///
    /// Deprecated surface for new code: prefer applying a
    /// [`LifecycleEvent::OnboardService`] through
    /// [`TapEngine::apply_lifecycle`], which also covers the realtime
    /// allowlist and pairs with [`LifecycleEvent::RetireService`] for the
    /// teardown path. This method remains as the shared implementation
    /// both surfaces call.
    pub fn register_service(&mut self, slug: ServiceSlug, node: NodeId, key: ServiceKey) {
        let key_sym = self.syms.intern(&key.0);
        self.service_by_key.insert(key_sym, slug.clone());
        let sym = self.syms.intern(slug.as_str());
        self.services
            .insert(sym, ServiceRegistration { slug, node, key });
    }

    fn service_sym(&self, slug: &ServiceSlug) -> Option<Symbol> {
        // Services are interned at registration; an unknown string cannot
        // name a registered service.
        self.syms.get(slug.as_str())
    }

    /// Install a cached token directly (the state *after* an OAuth dance).
    pub fn set_token(&mut self, user: UserId, service: ServiceSlug, token: AccessToken) {
        let u = self.syms.intern(user.as_str());
        let s = self.syms.intern(service.as_str());
        self.tokens.insert((u, s), token.bearer());
    }

    /// Is the user connected to the service?
    pub fn is_connected(&self, user: &UserId, service: &ServiceSlug) -> bool {
        match (
            self.syms.get(user.as_str()),
            self.syms.get(service.as_str()),
        ) {
            (Some(u), Some(s)) => self.tokens.contains_key(&(u, s)),
            _ => false,
        }
    }

    /// Run the OAuth2 authorization-code flow against the service's hosted
    /// pages. Completion is observable via [`TapEngine::is_connected`].
    pub fn connect_service(&mut self, ctx: &mut Context<'_>, user: UserId, service: ServiceSlug) {
        let Some(reg) = self
            .service_sym(&service)
            .and_then(|s| self.services.get(&s))
        else {
            return;
        };
        let seq = self.next_oauth;
        self.next_oauth += 1;
        self.pending_oauth
            .insert(seq, (user.clone(), service.clone()));
        let mut body = String::with_capacity(user.0.len() + 12);
        body.push_str("{\"user\":");
        serde_json::write_json_str(&mut body, &user.0);
        body.push('}');
        let req = Request::post("/oauth2/authorize").with_body(body);
        ctx.send_request(
            reg.node,
            req,
            Token(TAG_OAUTH_AUTH | seq),
            RequestOpts {
                timeout: Some(self.config.request_timeout),
            },
        );
    }

    /// The applet catalog.
    pub fn applet(&self, id: AppletId) -> Option<&Applet> {
        self.slot_of.get(&id.0).map(|&s| &self.applets[s as usize])
    }

    /// Apply one lifecycle transition — the single entry point for every
    /// install, uninstall, onboarding, and retirement the engine supports.
    /// The legacy constructors ([`TapEngine::install_applet`],
    /// [`TapEngine::register_service`]) are thin wrappers over this.
    ///
    /// Determinism contract: an event sequence that is never applied
    /// consumes no randomness and perturbs no state, and applying events
    /// draws RNG only where the equivalent legacy path already did (the
    /// initial-poll delay of an install), so a churn-free run is
    /// byte-identical to one built through the legacy surface.
    pub fn apply_lifecycle(
        &mut self,
        ctx: &mut Context<'_>,
        ev: LifecycleEvent,
    ) -> Result<LifecycleAck, LifecycleError> {
        match ev {
            LifecycleEvent::InstallApplet(applet) => self
                .do_install(ctx, applet)
                .map(LifecycleAck::Installed)
                .map_err(LifecycleError::Install),
            LifecycleEvent::UninstallApplet(id) => self.do_uninstall(ctx, id),
            LifecycleEvent::OnboardService {
                slug,
                node,
                key,
                realtime,
            } => {
                if realtime {
                    self.config.realtime_allowlist.insert(slug.clone());
                }
                self.register_service(slug.clone(), node, key);
                ctx.trace("engine.service_onboarded", slug.0.clone());
                Ok(LifecycleAck::Onboarded(slug))
            }
            LifecycleEvent::RetireService(slug) => self.do_retire(ctx, slug),
        }
    }

    /// Install and enable an applet. Schedules its first trigger poll.
    ///
    /// Deprecated: thin compatibility wrapper over
    /// [`TapEngine::apply_lifecycle`] with
    /// [`LifecycleEvent::InstallApplet`] — new code should apply a
    /// lifecycle event so installs and uninstalls go through one surface.
    pub fn install_applet(
        &mut self,
        ctx: &mut Context<'_>,
        applet: Applet,
    ) -> Result<AppletId, InstallError> {
        match self.apply_lifecycle(ctx, LifecycleEvent::InstallApplet(applet)) {
            Ok(LifecycleAck::Installed(id)) => Ok(id),
            Ok(ack) => unreachable!("install acked {ack:?}"),
            Err(LifecycleError::Install(e)) => Err(e),
            Err(e) => unreachable!("install failed with {e:?}"),
        }
    }

    fn do_install(
        &mut self,
        ctx: &mut Context<'_>,
        mut applet: Applet,
    ) -> Result<AppletId, InstallError> {
        // Degenerate-DAG fast path: a one-node action DAG *is* a classic
        // applet, so fold it back onto the single-step path at install
        // time. Everything downstream — cached bodies, dispatch timers,
        // RNG draw order — is then byte-identical to an applet that never
        // had steps.
        if is_degenerate(&applet.steps) {
            let node = applet.steps.pop().expect("degenerate DAG has one node");
            if let StepSpec::Action { action, fields } = node.spec {
                applet.action.action = ActionSlug::new(action);
                applet.action.fields = fields;
            }
        }
        if !applet.steps.is_empty() {
            validate_steps(&applet.steps).map_err(|e| InstallError::InvalidSteps(e.to_string()))?;
        }
        for service in [&applet.trigger.service, &applet.action.service] {
            if !self
                .service_sym(service)
                .is_some_and(|s| self.services.contains_key(&s))
            {
                return Err(InstallError::UnknownService(service.clone()));
            }
            if !self.is_connected(&applet.owner, service) {
                return Err(InstallError::NotConnected(service.clone()));
            }
        }
        if self.config.static_loop_check {
            let mut all: Vec<Applet> = self.applets.clone();
            all.push(applet.clone());
            let cycles = self.static_detector.find_cycles(&all);
            let involved: Vec<AppletId> = cycles
                .into_iter()
                .flatten()
                .filter(|id| *id == applet.id || self.slot_of.contains_key(&id.0))
                .collect();
            if involved.contains(&applet.id) {
                return Err(InstallError::LoopDetected(involved));
            }
        }
        // Coarse or fine permission grants for both halves (§6).
        self.permissions.request(
            &applet.owner,
            &applet.trigger.service,
            Capability::new(format!("trigger:{}", applet.trigger.trigger)),
        );
        self.permissions.request(
            &applet.owner,
            &applet.action.service,
            Capability::new(format!("action:{}", applet.action.action)),
        );
        let identity = TriggerIdentity::derive(
            &applet.owner,
            &applet.trigger.service,
            &applet.trigger.trigger,
            &applet.trigger.fields,
        );
        let id = applet.id;
        let slot: Slot = self.tasks.len() as Slot;
        let identity_sym = self.syms.intern(identity.as_str());
        self.by_identity.entry(identity_sym).or_default().push(slot);
        let poll_body = wire::to_bytes(&PollRequestBody {
            trigger_identity: identity.clone(),
            trigger_fields: applet.trigger.fields.clone(),
            user: applet.owner.clone(),
            limit: DEFAULT_POLL_LIMIT,
        });
        let action_body = if applet.action.fields.is_empty() {
            Some(wire::to_bytes(&ActionRequestBody {
                action_fields: FieldMap::new(),
                user: applet.owner.clone(),
            }))
        } else {
            None
        };
        let owner_sym = self.syms.intern(applet.owner.as_str());
        let trigger_service_sym = self.syms.intern(applet.trigger.service.as_str());
        let group = (
            owner_sym,
            trigger_service_sym,
            self.config.polling.cadence_class(&applet),
        );
        let siblings = self.poll_groups.entry(group).or_default();
        siblings.push(slot);
        let grouped = siblings.len() >= 2;
        if siblings.len() == 2 {
            // The group just gained its first sibling: the existing member
            // was installed solo and must start taking the batch path too.
            let first = siblings[0];
            self.tasks[first as usize].grouped = true;
        }
        self.tasks.push(PollTask {
            id,
            owner: owner_sym,
            trigger_service: trigger_service_sym,
            action_service: self.syms.intern(applet.action.service.as_str()),
            poll_path: trigger_path(&applet.trigger.trigger),
            poll_body,
            action_path: action_path(&applet.action.action),
            action_body,
            seen: FxHashSet::default(),
            enabled: true,
            next_poll: None,
            next_poll_at: SimTime::ZERO,
            group,
            grouped,
            batch_entry: BatchPollEntry {
                trigger: applet.trigger.trigger.clone(),
                trigger_identity: identity,
                trigger_fields: applet.trigger.fields.clone(),
                limit: DEFAULT_POLL_LIMIT,
            },
            retries: 0,
            poll_sent_at: SimTime::ZERO,
            rt_pending: false,
            rt_resume_at: None,
            rt_debounce_until: SimTime::ZERO,
            uninstalled: false,
        });
        self.applets.push(applet);
        self.slot_of.insert(id.0, slot);
        let delay = SimDuration::from_secs_f64(self.config.initial_poll_delay.sample(ctx.rng()));
        self.schedule_poll(ctx, slot, delay);
        ctx.trace("engine.applet_installed", TraceDetail::Applet(id.0));
        Ok(id)
    }

    fn do_uninstall(
        &mut self,
        ctx: &mut Context<'_>,
        id: AppletId,
    ) -> Result<LifecycleAck, LifecycleError> {
        let Some(slot) = self.slot_of.remove(&id.0) else {
            return Err(LifecycleError::UnknownApplet(id));
        };
        self.retire_slot(ctx, slot);
        ctx.trace("engine.applet_uninstalled", TraceDetail::Applet(id.0));
        Ok(LifecycleAck::Uninstalled(id))
    }

    /// Tear down one slot's runtime state: the shared unwind behind both
    /// uninstall and the per-applet half of service retirement. The caller
    /// has already removed the public `slot_of` mapping.
    fn retire_slot(&mut self, ctx: &mut Context<'_>, slot: Slot) {
        // Timing wheel: the pending cadence (or realtime-armed) poll dies
        // with the applet, and every realtime flag is cleared so the
        // tombstone can never absorb or arm anything again.
        let task = &mut self.tasks[slot as usize];
        task.uninstalled = true;
        task.enabled = false;
        task.rt_pending = false;
        task.rt_resume_at = None;
        task.rt_debounce_until = SimTime::ZERO;
        if let Some(timer) = task.next_poll.take() {
            ctx.cancel_timer(timer);
        }
        // The seen-set is the slot's only unbounded allocation; a
        // tombstone does not need it.
        task.seen = FxHashSet::default();
        let group = task.group;
        let identity_sym = self.syms.get(task.batch_entry.trigger_identity.as_str());
        // Coalescing group: shrink the membership, evict the cached batch
        // body (it was serialized for the old member list and would
        // otherwise be replayed stale), and revert the survivor's
        // `grouped` hint when the group drops back to one member so it
        // returns to the singleton fast path.
        if let Some(members) = self.poll_groups.get_mut(&group) {
            members.retain(|&m| m != slot);
            self.batch_bodies.remove(&group);
            if members.len() == 1 {
                let survivor = members[0];
                self.tasks[survivor as usize].grouped = false;
            } else if members.is_empty() {
                self.poll_groups.remove(&group);
                self.degraded_until.remove(&group);
            }
        }
        // Identity routing: realtime notifications resolve through this,
        // so pruning it is what makes later hints miss.
        if let Some(sym) = identity_sym {
            if let Some(slots) = self.by_identity.get_mut(&sym) {
                slots.retain(|&m| m != slot);
                if slots.is_empty() {
                    self.by_identity.remove(&sym);
                }
            }
        }
        // In-flight work owned by the slot dead-letters now — the slab
        // handles are reclaimed and the conservation invariant
        // (`events_new == actions_ok + actions_filtered + dead_letters`)
        // holds through the teardown.
        self.dead_letter_in_flight(ctx, |s| s == slot);
    }

    /// Dead-letter every in-flight dispatch and DAG run whose slot
    /// matches, emitting the same terminal pair an exhausted retry budget
    /// would. Handles are drained in sorted order: arena iteration order
    /// is storage-dependent (slab vs reference map), the handle values are
    /// not.
    fn dead_letter_in_flight(&mut self, ctx: &mut Context<'_>, doomed: impl Fn(Slot) -> bool) {
        let mut jobs: Vec<u64> = self
            .dispatches
            .iter()
            .filter(|(_, job)| doomed(job.slot))
            .map(|(h, _)| h)
            .collect();
        jobs.sort_unstable();
        for dispatch in jobs {
            let job = self.dispatches.remove(dispatch).expect("collected live");
            let applet = self.tasks[job.slot as usize].id;
            self.obs(ObsEvent::ActionFinished {
                applet,
                dispatch,
                ok: false,
                at: ctx.now(),
            });
            self.obs(ObsEvent::ActionDeadLettered {
                applet,
                dispatch,
                at: ctx.now(),
            });
            ctx.trace(
                "engine.uninstall_dead_letter",
                TraceDetail::Applet(applet.0),
            );
        }
        let mut runs: Vec<u64> = self
            .dag_runs
            .iter()
            .filter(|(_, run)| doomed(run.slot))
            .map(|(h, _)| h)
            .collect();
        runs.sort_unstable();
        for run_id in runs {
            let run = self.dag_runs.remove(run_id).expect("collected live");
            let applet = self.tasks[run.slot as usize].id;
            let dispatch = DAG_DISPATCH_BIT | run_id;
            self.obs(ObsEvent::ActionFinished {
                applet,
                dispatch,
                ok: false,
                at: ctx.now(),
            });
            self.obs(ObsEvent::ActionDeadLettered {
                applet,
                dispatch,
                at: ctx.now(),
            });
            ctx.trace(
                "engine.uninstall_dead_letter",
                TraceDetail::Applet(applet.0),
            );
        }
    }

    fn do_retire(
        &mut self,
        ctx: &mut Context<'_>,
        slug: ServiceSlug,
    ) -> Result<LifecycleAck, LifecycleError> {
        let Some(sym) = self
            .service_sym(&slug)
            .filter(|s| self.services.contains_key(s))
        else {
            return Err(LifecycleError::UnknownService(slug));
        };
        // Every live applet touching the dying service — polling it or
        // dispatching to it — goes through the full uninstall unwind.
        let doomed: Vec<Slot> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !t.uninstalled && (t.trigger_service == sym || t.action_service == sym)
            })
            .map(|(i, _)| i as Slot)
            .collect();
        let applets_removed = doomed.len() as u32;
        for slot in doomed {
            let id = self.tasks[slot as usize].id;
            self.slot_of.remove(&id.0);
            self.retire_slot(ctx, slot);
        }
        let reg = self.services.remove(&sym).expect("registration checked");
        if let Some(key_sym) = self.syms.get(&reg.key.0) {
            self.service_by_key.remove(&key_sym);
        }
        self.tokens.retain(|&(_, s), _| s != sym);
        self.config.realtime_allowlist.remove(&slug);
        self.breakers.remove(&sym);
        ctx.trace("engine.service_retired", slug.0.clone());
        Ok(LifecycleAck::Retired {
            service: slug,
            applets_removed,
        })
    }

    /// Enable or disable an applet (disabled applets stop polling).
    pub fn set_enabled(&mut self, ctx: &mut Context<'_>, id: AppletId, enabled: bool) {
        let Some(&slot) = self.slot_of.get(&id.0) else {
            return;
        };
        let task = &mut self.tasks[slot as usize];
        task.enabled = enabled;
        if !enabled {
            // A disabled applet abandons any armed realtime poll; leaking
            // the flag would absorb every hint after a re-enable.
            task.rt_pending = false;
            task.rt_resume_at = None;
        }
        if enabled && task.next_poll.is_none() {
            self.schedule_poll(ctx, slot, SimDuration::from_secs(1));
        }
    }

    /// Is the applet currently enabled?
    pub fn is_enabled(&self, id: AppletId) -> bool {
        self.slot_of
            .get(&id.0)
            .is_some_and(|&s| self.tasks[s as usize].enabled)
    }

    fn schedule_poll(&mut self, ctx: &mut Context<'_>, slot: Slot, after: SimDuration) {
        let Some(task) = self.tasks.get_mut(slot as usize) else {
            return;
        };
        // A tombstoned slot never re-enters the timing wheel; without this
        // backstop a response racing the uninstall could revive the chain.
        if task.uninstalled {
            return;
        }
        if let Some(old) = task.next_poll.take() {
            ctx.cancel_timer(old);
        }
        task.next_poll_at = ctx.now() + after;
        task.next_poll = Some(ctx.set_timer(after, TK_POLL | slot as u64));
    }

    /// Consult the per-service breaker gate. `false` whenever breaking is
    /// not configured, without touching any state.
    fn breaker_sheds(&mut self, now: SimTime, service: Symbol) -> bool {
        let Some(policy) = &self.config.breaker else {
            return false;
        };
        !self.breakers.entry(service).or_default().allow(now, policy)
    }

    /// A poll the breaker refused: count it and keep the chain alive by
    /// rescheduling on the normal cadence. A shed *realtime* poll falls
    /// back the same way — a grouped member restores the schedule its
    /// hint preempted (keeping the batch group's phase lock), a solo one
    /// draws a fresh gap — and still arms the debounce window so a
    /// notifying service cannot hammer an open breaker.
    fn shed_poll(&mut self, ctx: &mut Context<'_>, slot: Slot) {
        let id = self.tasks[slot as usize].id;
        self.obs(ObsEvent::PollShed {
            applet: id,
            at: ctx.now(),
        });
        if ctx.tracing() {
            ctx.trace("engine.poll_shed", format!("{id:?} breaker open"));
        }
        if let Some(resume_at) = self.clear_realtime(ctx.now(), slot) {
            let after = if resume_at > ctx.now() {
                resume_at.since(ctx.now())
            } else {
                SimDuration::ZERO
            };
            self.schedule_poll(ctx, slot, after);
            return;
        }
        let gap = self
            .config
            .polling
            .next_gap(&self.applets[slot as usize], ctx.rng());
        self.schedule_poll(ctx, slot, gap);
    }

    /// Resolve a subscription's armed realtime poll, if any: clear the
    /// outstanding flag, arm the debounce window, and hand back the
    /// preempted cadence instant a grouped member should rejoin at.
    /// Returns `None` when no realtime poll was outstanding *or* the
    /// subscription is solo (callers then draw a fresh cadence gap).
    fn clear_realtime(&mut self, now: SimTime, slot: Slot) -> Option<SimTime> {
        let task = self.tasks.get_mut(slot as usize)?;
        if !task.rt_pending {
            return None;
        }
        task.rt_pending = false;
        task.rt_debounce_until = now + self.config.realtime_debounce;
        task.rt_resume_at.take()
    }

    /// Feed one poll/action outcome for `service` into its breaker (no-op
    /// without a breaker policy). Counts trips.
    fn breaker_record(&mut self, ctx: &mut Context<'_>, service: Symbol, ok: bool) {
        let Some(policy) = &self.config.breaker else {
            return;
        };
        let breaker = self.breakers.entry(service).or_default();
        let tripped = if ok {
            breaker.record_success();
            false
        } else {
            breaker.record_failure(ctx.now(), policy)
        };
        if tripped {
            self.obs(ObsEvent::BreakerTripped {
                service,
                at: ctx.now(),
            });
            if ctx.tracing() {
                ctx.trace("engine.breaker_tripped", String::new());
            }
        }
    }

    fn send_poll(&mut self, ctx: &mut Context<'_>, slot: Slot) {
        let task = &self.tasks[slot as usize];
        if !task.enabled {
            return;
        }
        let (owner, trigger_service) = (task.owner, task.trigger_service);
        if !self.services.contains_key(&trigger_service)
            || !self.tokens.contains_key(&(owner, trigger_service))
        {
            return;
        }
        if self.breaker_sheds(ctx.now(), trigger_service) {
            self.shed_poll(ctx, slot);
            return;
        }
        self.tasks[slot as usize].poll_sent_at = ctx.now();
        let applet = &self.applets[slot as usize];
        let task = &self.tasks[slot as usize];
        let id = task.id;
        let reg = &self.services[&trigger_service];
        let bearer = &self.tokens[&(owner, trigger_service)];
        let request_id: u64 = ctx.rng().gen();
        let req = Request::post(task.poll_path.clone())
            .with_header(SERVICE_KEY_HEADER, reg.key.0.clone())
            .with_header(AUTHORIZATION_HEADER, bearer.clone())
            .with_header(REQUEST_ID_HEADER, format!("{request_id:016x}"))
            .with_body(task.poll_body.clone());
        if ctx.tracing() {
            ctx.trace(
                "engine.poll_sent",
                format!("{id:?} {}", applet.trigger.trigger),
            );
        }
        let node = reg.node;
        let realtime = task.rt_pending;
        self.obs(ObsEvent::PollSent {
            applet: id,
            service: trigger_service,
            at: ctx.now(),
        });
        if realtime {
            self.obs(ObsEvent::RealtimePollSent {
                applet: id,
                at: ctx.now(),
            });
        }
        ctx.send_request(
            node,
            req,
            Token(TAG_POLL | slot as u64),
            RequestOpts {
                timeout: Some(self.config.request_timeout),
            },
        );
    }

    /// Poll-timer entry point when [`EngineConfig::batch_polling`] is on:
    /// coalesce every sibling subscription — same (owner, trigger service,
    /// cadence class) — whose next poll falls inside the jittered window
    /// into one multi-trigger request. Falls back to the plain single poll
    /// when no sibling is close enough.
    fn send_batch_poll(&mut self, ctx: &mut Context<'_>, slot: Slot) {
        let task = &self.tasks[slot as usize];
        if !task.enabled {
            return;
        }
        let group = task.group;
        let owner = task.owner;
        let trigger_service = task.trigger_service;
        let id = task.id;
        if !self.services.contains_key(&trigger_service)
            || !self.tokens.contains_key(&(owner, trigger_service))
        {
            return;
        }
        if self.breaker_sheds(ctx.now(), trigger_service) {
            // Shed only the initiator; siblings keep their own timers and
            // take their own gate decision when those fire.
            self.shed_poll(ctx, slot);
            return;
        }
        let window =
            SimDuration::from_secs_f64(self.config.coalesce_window.sample(ctx.rng()).max(0.0));
        let horizon = ctx.now() + window;
        // Members in install order: the initiator (whose timer just fired)
        // plus every sibling with a pending poll inside the window. The
        // list comes from (and returns to) the member pool, so the
        // steady-state batch path allocates nothing here.
        let mut members = self.member_pool.pop().unwrap_or_default();
        for &m in &self.poll_groups[&group] {
            // A member with an armed realtime poll keeps its out-of-band
            // timer: sweeping it into the batch would cancel the immediate
            // poll its notification paid for.
            let t = &self.tasks[m as usize];
            if m == slot
                || (t.enabled
                    && !t.rt_pending
                    && t.next_poll.is_some()
                    && t.next_poll_at <= horizon)
            {
                members.push(m);
            }
        }
        if members.len() < 2 {
            members.clear();
            self.member_pool.push(members);
            self.send_poll(ctx, slot);
            return;
        }
        for &m in &members {
            let task = &mut self.tasks[m as usize];
            if let Some(old) = task.next_poll.take() {
                ctx.cancel_timer(old);
            }
            task.poll_sent_at = ctx.now();
        }
        let reg = &self.services[&trigger_service];
        let bearer = &self.tokens[&(owner, trigger_service)];
        let cached = self
            .batch_bodies
            .get(&group)
            .filter(|(cached_for, _)| *cached_for == members)
            .map(|(_, bytes)| bytes.clone());
        let body = cached.unwrap_or_else(|| {
            let entries = members
                .iter()
                .map(|&m| self.tasks[m as usize].batch_entry.clone())
                .collect();
            let bytes = wire::to_bytes(&BatchPollRequestBody {
                user: self.applets[slot as usize].owner.clone(),
                entries,
            });
            self.batch_bodies
                .insert(group, (members.clone(), bytes.clone()));
            bytes
        });
        let n = members.len() as u64;
        let seq = self.pending_batches.insert(members);
        let request_id: u64 = ctx.rng().gen();
        let req = Request::post(BATCH_POLL_PATH)
            .with_header(SERVICE_KEY_HEADER, reg.key.0.clone())
            .with_header(AUTHORIZATION_HEADER, bearer.clone())
            .with_header(REQUEST_ID_HEADER, format!("{request_id:016x}"))
            .with_body(body);
        if ctx.tracing() {
            ctx.trace(
                "engine.batch_poll_sent",
                format!("{id:?} +{} riders", n - 1),
            );
        }
        let node = reg.node;
        self.obs(ObsEvent::BatchPollSent {
            service: trigger_service,
            members: n,
            at: ctx.now(),
        });
        ctx.send_request(
            node,
            req,
            Token(TAG_BATCH | seq),
            RequestOpts {
                timeout: Some(self.config.request_timeout),
            },
        );
    }

    fn on_batch_poll_response(&mut self, ctx: &mut Context<'_>, seq: u64, resp: Response) {
        let Some(mut members) = self.pending_batches.remove(seq) else {
            return;
        };
        self.handle_batch_response(ctx, &members, resp);
        members.clear();
        self.member_pool.push(members);
    }

    fn handle_batch_response(&mut self, ctx: &mut Context<'_>, members: &[Slot], resp: Response) {
        // Keep every member's polling chain alive with ONE shared gap draw.
        // Phase-locking the group is what keeps it coalescing round after
        // round, and because all members share a cadence class the draw has
        // exactly the per-subscription gap distribution the unbatched path
        // would give each of them — T2A quartiles are preserved.
        let gap = members
            .first()
            .map(|&m| {
                self.config
                    .polling
                    .next_gap(&self.applets[m as usize], ctx.rng())
            })
            .unwrap_or(SimDuration::from_secs(60));
        for &m in members {
            // Members uninstalled while the batch was in flight stay off
            // the wheel (schedule_poll also backstops this).
            if !self.tasks[m as usize].uninstalled {
                self.schedule_poll(ctx, m, gap);
            }
        }
        let n = members.len() as u64;
        if !resp.is_success() {
            self.obs(ObsEvent::PollFailed {
                polls: n,
                at: ctx.now(),
            });
            if ctx.tracing() {
                ctx.trace(
                    "engine.batch_poll_failed",
                    format!("{n} members, status {}", resp.status),
                );
            }
            let Some((group, service)) = members
                .first()
                .map(|&m| &self.tasks[m as usize])
                .map(|t| (t.group, t.trigger_service))
            else {
                return;
            };
            self.breaker_record(ctx, service, false);
            // Graceful degradation: the whole batch failed as one request,
            // so demote the group to singleton polls for the next cycle.
            // Each member then succeeds/fails (and retries) on its own, and
            // the group re-coalesces once the window passes.
            self.obs(ObsEvent::BatchDegraded {
                service,
                at: ctx.now(),
            });
            self.degraded_until
                .insert(group, ctx.now() + gap + SimDuration::from_secs(1));
            return;
        }
        if self.config.breaker.is_some() {
            if let Some(service) = members
                .first()
                .map(|&m| self.tasks[m as usize].trigger_service)
            {
                self.breaker_record(ctx, service, true);
            }
        }
        // Canonical all-empty reply, recognized by bytes like the single
        // poll's empty fast path.
        if *resp.body == *wire::EMPTY_BATCH_JSON {
            self.obs(ObsEvent::PollEmpty {
                polls: n,
                at: ctx.now(),
            });
            return;
        }
        let Some(parsed) = self.parse_poll_body(&resp.body, false) else {
            // A 200 with an unparseable body: the service is up (no breaker
            // signal) and the events stay buffered server-side, so the next
            // cycle re-fetches them — no retry needed for delivery.
            self.obs(ObsEvent::PollFailed {
                polls: n,
                at: ctx.now(),
            });
            return;
        };
        let ParsedPollBody::Batch(data) = &*parsed else {
            unreachable!("parse_poll_body(single=false) returns Batch");
        };
        // Results come back in entry order; demux by position. Entries are
        // ingested in member order and each entry's dispatch timers are set
        // immediately, so per-subscription FIFO is preserved. An entry for
        // a member uninstalled mid-flight is discarded, not ingested.
        for (&m, result) in members.iter().zip(data.iter()) {
            if self.tasks[m as usize].uninstalled {
                self.obs(ObsEvent::PollDiscarded {
                    received: result.data.len() as u64,
                    at: ctx.now(),
                });
            } else {
                self.ingest_poll_events(ctx, m, &result.data);
            }
        }
    }

    /// Look up (or parse and memoize) a non-empty poll reply body.
    /// `single` selects the expected shape; a cached entry of the other
    /// shape is impossible for bytes that parsed successfully (the two wire
    /// types have disjoint required fields), but is treated as a miss
    /// rather than trusted.
    fn parse_poll_body(
        &mut self,
        body: &bytes::Bytes,
        single: bool,
    ) -> Option<std::sync::Arc<ParsedPollBody>> {
        if let Some(hit) = self.poll_parse_cache.get(body) {
            let shape_matches = matches!(
                (&**hit, single),
                (ParsedPollBody::Single(_), true) | (ParsedPollBody::Batch(_), false)
            );
            if shape_matches {
                return Some(hit.clone());
            }
        }
        let parsed = if single {
            ParsedPollBody::Single(wire::from_bytes::<PollResponseBody>(body).ok()?.data)
        } else {
            ParsedPollBody::Batch(wire::from_bytes::<BatchPollResponseBody>(body).ok()?.data)
        };
        let parsed = std::sync::Arc::new(parsed);
        if self.poll_parse_cache.len() >= POLL_PARSE_CACHE_MAX {
            self.poll_parse_cache.clear();
        }
        self.poll_parse_cache.insert(body.clone(), parsed.clone());
        Some(parsed)
    }

    fn on_poll_response(&mut self, ctx: &mut Context<'_>, slot: Slot, resp: Response) {
        // A response racing the uninstall: drop the payload (counted, not
        // ingested) and never reschedule — the subscription is gone.
        if self.tasks[slot as usize].uninstalled {
            let received = if resp.is_success() && *resp.body != *wire::EMPTY_POLL_JSON {
                match self.parse_poll_body(&resp.body, true).as_deref() {
                    Some(ParsedPollBody::Single(data)) => data.len() as u64,
                    _ => 0,
                }
            } else {
                0
            };
            self.obs(ObsEvent::PollDiscarded {
                received,
                at: ctx.now(),
            });
            return;
        }
        // Always keep the polling chain alive. The response of a realtime
        // out-of-band poll restores the schedule its notification
        // preempted — a grouped member rejoins its batch group at the
        // saved phase instant (immediately, if the detour overran it) —
        // while everything else, including a solo realtime poll, draws a
        // fresh cadence gap.
        if let Some(resume_at) = self.clear_realtime(ctx.now(), slot) {
            let after = if resume_at > ctx.now() {
                resume_at.since(ctx.now())
            } else {
                SimDuration::ZERO
            };
            self.schedule_poll(ctx, slot, after);
        } else {
            let gap = self
                .config
                .polling
                .next_gap(&self.applets[slot as usize], ctx.rng());
            self.schedule_poll(ctx, slot, gap);
        }

        if !resp.is_success() {
            self.obs(ObsEvent::PollFailed {
                polls: 1,
                at: ctx.now(),
            });
            let task = &self.tasks[slot as usize];
            let id = task.id;
            if ctx.tracing() {
                ctx.trace(
                    "engine.poll_failed",
                    format!("{id:?} status {}", resp.status),
                );
            }
            let service = task.trigger_service;
            let retries_made = task.retries;
            self.breaker_record(ctx, service, false);
            let class = FailureClass::of_status(resp.status).unwrap_or(FailureClass::Transport);
            if class.is_retryable()
                && self.config.poll_retry.enabled()
                && retries_made < self.config.poll_retry.max_retries
            {
                // Pull the next poll forward onto the backoff schedule
                // instead of waiting a whole cadence gap. schedule_poll
                // cancels the cadence timer set above, so the chain still
                // carries exactly one pending poll.
                self.tasks[slot as usize].retries += 1;
                self.obs(ObsEvent::PollRetried {
                    applet: id,
                    at: ctx.now(),
                });
                let mut delay = self
                    .config
                    .poll_retry
                    .backoff
                    .delay(retries_made, ctx.rng());
                if let Some(ra) = retry_after_hint(&resp) {
                    delay = delay.max(ra);
                }
                self.schedule_poll(ctx, slot, delay);
            }
            return;
        }
        if self.config.poll_retry.enabled() {
            self.tasks[slot as usize].retries = 0;
        }
        if self.config.breaker.is_some() {
            let service = self.tasks[slot as usize].trigger_service;
            self.breaker_record(ctx, service, true);
        }
        // Recognize the canonical empty reply by bytes: no parse needed,
        // and nothing below observes anything an empty body would change.
        if *resp.body == *wire::EMPTY_POLL_JSON {
            self.obs(ObsEvent::PollEmpty {
                polls: 1,
                at: ctx.now(),
            });
            return;
        }
        let Some(parsed) = self.parse_poll_body(&resp.body, true) else {
            // 200 with garbage: counted, not retried — the events stay in
            // the service buffer and the next cycle re-fetches them.
            self.obs(ObsEvent::PollFailed {
                polls: 1,
                at: ctx.now(),
            });
            return;
        };
        let ParsedPollBody::Single(data) = &*parsed else {
            unreachable!("parse_poll_body(single=true) returns Single");
        };
        self.ingest_poll_events(ctx, slot, data);
    }

    /// Shared tail of the single and batched poll paths: dedupe one
    /// subscription's event list against its seen-set and enqueue a
    /// dispatch per fresh event, oldest first.
    fn ingest_poll_events(&mut self, ctx: &mut Context<'_>, slot: Slot, data: &[TriggerEvent]) {
        let received = data.len() as u64;
        if data.is_empty() {
            self.obs(ObsEvent::PollEmpty {
                polls: 1,
                at: ctx.now(),
            });
            return;
        }
        let (id, sent_at) = {
            let t = &self.tasks[slot as usize];
            (t.id, t.poll_sent_at)
        };
        // Newest-first on the wire; dispatch oldest-first. Seen event ids
        // are tracked as interned symbols: a repeat (the common case, since
        // polls do not consume the service's buffer) costs one string hash
        // and a u32 set probe. Only genuinely fresh events are cloned out
        // of the (possibly memoized) parsed body, and the scratch vector
        // comes from the engine's pool, so steady-state ingestion — all
        // repeats — allocates nothing here.
        let mut fresh = self.event_pool.pop().unwrap_or_default();
        {
            let task = &self.tasks[slot as usize];
            let syms = &self.syms;
            fresh.extend(
                data.iter()
                    .filter(|e| !syms.get(&e.meta.id).is_some_and(|s| task.seen.contains(&s)))
                    .cloned(),
            );
        }
        fresh.reverse();
        if fresh.is_empty() {
            self.event_pool.push(fresh);
            self.obs(ObsEvent::PollDelivered {
                applet: id,
                received,
                fresh: 0,
                sent_at,
                at: ctx.now(),
            });
            return;
        }
        {
            let task = &mut self.tasks[slot as usize];
            let syms = &mut self.syms;
            for e in &fresh {
                task.seen.insert(syms.intern(&e.meta.id));
            }
        }
        self.obs(ObsEvent::PollDelivered {
            applet: id,
            received,
            fresh: fresh.len() as u64,
            sent_at,
            at: ctx.now(),
        });
        if ctx.tracing() {
            ctx.trace(
                "engine.events_received",
                format!("{id:?} {} new events", fresh.len()),
            );
        }
        // Batch dispatch: one action (or one DAG run) per event,
        // back-to-back. Both branches draw the same overhead and gap
        // samples, so a population mixing multi-step and classic applets
        // keeps every classic applet's schedule untouched.
        let dag = !self.applets[slot as usize].steps.is_empty();
        let overhead = SimDuration::from_secs_f64(self.config.dispatch_overhead.sample(ctx.rng()));
        let mut at = overhead;
        for event in fresh.drain(..) {
            if dag {
                let n = self.applets[slot as usize].steps.len();
                let run = self.dag_runs.insert(DagRun {
                    slot,
                    event,
                    nodes: (0..n).map(|_| RunNode::default()).collect(),
                    outstanding: 0,
                    failed: false,
                    any_action_ok: false,
                    any_action_failed: false,
                    serial: self.config.policy == EnginePolicy::ZapierLike,
                });
                self.obs(ObsEvent::DispatchEnqueued {
                    applet: id,
                    dispatch: DAG_DISPATCH_BIT | run,
                    depth: (self.dispatches.len() + self.dag_runs.len()) as u64,
                    poll_sent_at: sent_at,
                    at: ctx.now(),
                });
                ctx.set_timer(at, TK_DAG | (run << DAG_NODE_BITS) | DAG_RUN_START);
            } else {
                let d = self.dispatches.insert(DispatchJob {
                    slot,
                    event,
                    pending_queries: 0,
                    extra: tap_protocol::FieldMap::new(),
                    queries_issued: false,
                    attempts: 0,
                });
                self.obs(ObsEvent::DispatchEnqueued {
                    applet: id,
                    dispatch: d,
                    depth: self.dispatches.len() as u64,
                    poll_sent_at: sent_at,
                    at: ctx.now(),
                });
                ctx.set_timer(at, TK_DISPATCH | d);
            }
            at += SimDuration::from_secs_f64(self.config.inter_action_gap.sample(ctx.rng()));
        }
        self.event_pool.push(fresh);
    }

    fn send_action(&mut self, ctx: &mut Context<'_>, dispatch: u64) {
        let Some(job) = self.dispatches.get(dispatch) else {
            return;
        };
        let slot = job.slot;
        let task = &self.tasks[slot as usize];
        let id = task.id;
        if !task.enabled {
            self.dispatches.remove(dispatch);
            return;
        }
        let (owner_sym, action_service_sym) = (task.owner, task.action_service);
        // Queries (the paper's future-work feature): resolve read-only
        // lookups before evaluating the condition or dispatching. This
        // happens before the loop detector so the query-driven re-entry
        // into this function does not double-count an execution.
        let job = self.dispatches.get(dispatch).expect("job exists");
        if !self.applets[slot as usize].queries.is_empty() && !job.queries_issued {
            let applet = self.applets[slot as usize].clone();
            self.issue_queries(ctx, dispatch, &applet);
            return;
        }
        if job.pending_queries > 0 {
            return; // responses still in flight; they re-enter here
        }
        // Runtime loop detection at execution time (§6). Retries of the
        // same dispatch count as one execution, not several.
        let first_attempt = job.attempts == 0;
        if first_attempt {
            let suspected = match &mut self.runtime_detector {
                Some(det) => det.record(id, ctx.now()) == RuntimeVerdict::LoopSuspected,
                None => false,
            };
            if suspected {
                self.obs(ObsEvent::LoopFlagged {
                    applet: id,
                    at: ctx.now(),
                });
                ctx.trace("engine.loop_flagged", TraceDetail::Applet(id.0));
                if self
                    .config
                    .runtime_loop
                    .as_ref()
                    .is_some_and(|c| c.auto_disable)
                {
                    self.tasks[slot as usize].enabled = false;
                    ctx.trace("engine.applet_disabled", format!("{id:?} (loop)"));
                    self.dispatches.remove(dispatch);
                    return;
                }
            }
        }
        if !self.services.contains_key(&action_service_sym)
            || !self.tokens.contains_key(&(owner_sym, action_service_sym))
        {
            return;
        }
        // Merge query results into the visible ingredient set.
        let merged = {
            let job = self.dispatches.get(dispatch).expect("job exists");
            let mut m = job.event.ingredients.clone();
            m.extend(job.extra.clone());
            m
        };
        // Conditions: evaluate against the merged ingredients.
        if !self.applets[slot as usize].condition.eval(&merged) {
            self.obs(ObsEvent::ActionFiltered {
                applet: id,
                dispatch,
                at: ctx.now(),
            });
            ctx.trace("engine.action_filtered", TraceDetail::Applet(id.0));
            self.dispatches.remove(dispatch);
            return;
        }
        let applet = &self.applets[slot as usize];
        let job = self.dispatches.get(dispatch).expect("job exists");
        let task = &self.tasks[slot as usize];
        let reg = &self.services[&action_service_sym];
        let bearer = &self.tokens[&(owner_sym, action_service_sym)];
        // The cached body is only present when the action has no fields to
        // substitute, in which case serializing per dispatch would produce
        // these exact bytes anyway.
        let body = match task.action_body.clone() {
            Some(cached) => cached,
            None => wire::to_bytes(&ActionRequestBody {
                action_fields: substitute_fields(&applet.action.fields, &merged),
                user: applet.owner.clone(),
            }),
        };
        let req = Request::post(task.action_path.clone())
            .with_header(SERVICE_KEY_HEADER, reg.key.0.clone())
            .with_header(AUTHORIZATION_HEADER, bearer.clone())
            .with_body(body);
        if ctx.tracing() {
            ctx.trace(
                "engine.action_sent",
                format!(
                    "{id:?} {} event {}",
                    applet.action.action, job.event.meta.id
                ),
            );
        }
        let node = reg.node;
        let attempt = {
            let job = self.dispatches.get_mut(dispatch).expect("exists");
            job.attempts += 1;
            job.attempts
        };
        self.obs(ObsEvent::ActionSent {
            applet: id,
            dispatch,
            attempt,
            at: ctx.now(),
        });
        ctx.send_request(
            node,
            req,
            Token(TAG_ACTION | dispatch),
            RequestOpts {
                timeout: Some(self.config.request_timeout),
            },
        );
    }

    /// Fire every query of `applet` for this dispatch; the action resumes
    /// when the last response (or failure) arrives.
    fn issue_queries(&mut self, ctx: &mut Context<'_>, dispatch: u64, applet: &Applet) {
        let ingredients = self
            .dispatches
            .get(dispatch)
            .expect("job exists")
            .event
            .ingredients
            .clone();
        let mut issued = 0usize;
        for (qidx, q) in applet.queries.iter().enumerate().take(1 << QUERY_IDX_BITS) {
            let Some(reg) = self
                .service_sym(&q.service)
                .and_then(|s| self.services.get(&s))
            else {
                continue;
            };
            let token = self
                .syms
                .get(applet.owner.as_str())
                .zip(self.syms.get(q.service.as_str()))
                .and_then(|key| self.tokens.get(&key));
            let Some(token) = token else {
                continue;
            };
            let fields = substitute_fields(&q.fields, &ingredients);
            let body = QueryRequestBody {
                query_fields: fields,
                user: applet.owner.clone(),
            };
            let req = Request::post(query_path(&q.query))
                .with_header(SERVICE_KEY_HEADER, reg.key.0.clone())
                .with_header(AUTHORIZATION_HEADER, token.clone())
                .with_body(wire::to_bytes(&body));
            let node = reg.node;
            self.obs(ObsEvent::QuerySent {
                applet: applet.id,
                dispatch,
                at: ctx.now(),
            });
            ctx.trace("engine.query_sent", format!("{:?} {}", applet.id, q.query));
            let timeout = self.config.request_timeout;
            ctx.send_request(
                node,
                req,
                Token(TAG_QUERY | (dispatch << QUERY_IDX_BITS) | qidx as u64),
                RequestOpts {
                    timeout: Some(timeout),
                },
            );
            issued += 1;
        }
        let job = self.dispatches.get_mut(dispatch).expect("job exists");
        job.queries_issued = true;
        job.pending_queries = issued;
        if issued == 0 {
            // Nothing to wait for (e.g. unresolvable services): proceed.
            self.send_action(ctx, dispatch);
        }
    }

    fn on_query_response(
        &mut self,
        ctx: &mut Context<'_>,
        dispatch: u64,
        qidx: usize,
        resp: Response,
    ) {
        let prefix = self
            .dispatches
            .get(dispatch)
            .and_then(|job| self.applets[job.slot as usize].queries.get(qidx))
            .map(|q| q.prefix.clone());
        let Some(prefix) = prefix else { return };
        let Some(job) = self.dispatches.get_mut(dispatch) else {
            return;
        };
        if resp.is_success() {
            if let Ok(body) = wire::from_bytes::<QueryResponseBody>(&resp.body) {
                for (k, v) in body.data {
                    job.extra.insert(format!("{prefix}.{k}"), v);
                }
            }
        } else {
            self.obs(ObsEvent::QueryFailed {
                dispatch,
                at: ctx.now(),
            });
            ctx.trace(
                "engine.query_failed",
                format!("dispatch {dispatch} q{qidx}"),
            );
        }
        let job = self.dispatches.get_mut(dispatch).expect("exists");
        job.pending_queries = job.pending_queries.saturating_sub(1);
        if job.pending_queries == 0 {
            self.send_action(ctx, dispatch);
        }
    }

    /// Drive one DAG run as far as it can go without waiting on the
    /// network: skip nodes whose predecessors were cut or failed, execute
    /// filter/transform nodes synchronously, launch ready query/action
    /// nodes (one at a time under ZapierLike serial semantics), and
    /// finish the run once nothing is pending or in flight.
    fn dag_advance(&mut self, ctx: &mut Context<'_>, run_id: u64) {
        enum Act {
            Skip(usize),
            Sync(usize),
            Launch(usize),
            Finish,
            Wait,
        }
        loop {
            let act = {
                let Some(run) = self.dag_runs.get(run_id) else {
                    return;
                };
                let steps = &self.applets[run.slot as usize].steps;
                let mut act = Act::Wait;
                for (i, node) in run.nodes.iter().enumerate() {
                    if node.status != NodeStatus::Pending {
                        continue;
                    }
                    if steps[i].deps.iter().any(|&d| {
                        matches!(
                            run.nodes[d as usize].status,
                            NodeStatus::Cut | NodeStatus::Skipped | NodeStatus::Failed
                        )
                    }) {
                        act = Act::Skip(i);
                        break;
                    }
                    if !steps[i]
                        .deps
                        .iter()
                        .all(|&d| run.nodes[d as usize].status == NodeStatus::Done)
                    {
                        continue;
                    }
                    match steps[i].spec {
                        StepSpec::Filter { .. } | StepSpec::Transform { .. } => {
                            act = Act::Sync(i);
                            break;
                        }
                        StepSpec::Query { .. } | StepSpec::Action { .. } => {
                            if run.serial && run.outstanding > 0 {
                                continue;
                            }
                            act = Act::Launch(i);
                            break;
                        }
                    }
                }
                if matches!(act, Act::Wait)
                    && run.outstanding == 0
                    && run.nodes.iter().all(|n| {
                        n.status != NodeStatus::Pending && n.status != NodeStatus::InFlight
                    })
                {
                    act = Act::Finish;
                }
                act
            };
            match act {
                Act::Wait => return,
                Act::Finish => {
                    self.dag_finish(ctx, run_id);
                    return;
                }
                Act::Skip(i) => {
                    let run = self.dag_runs.get_mut(run_id).expect("run checked above");
                    run.nodes[i].status = NodeStatus::Skipped;
                }
                Act::Sync(i) => {
                    let (applet_id, done, out, kind) = {
                        let run = self.dag_runs.get(run_id).expect("run checked above");
                        let applet = &self.applets[run.slot as usize];
                        let input = dag_node_input(run, &applet.steps, i);
                        match &applet.steps[i].spec {
                            StepSpec::Filter { predicate } => (
                                applet.id,
                                predicate.eval(&input),
                                FieldMap::new(),
                                StepKind::Filter,
                            ),
                            StepSpec::Transform { fields } => (
                                applet.id,
                                true,
                                substitute_fields(fields, &input),
                                StepKind::Transform,
                            ),
                            _ => unreachable!("scan yields Sync only for filter/transform"),
                        }
                    };
                    let run = self.dag_runs.get_mut(run_id).expect("run checked above");
                    run.nodes[i].status = if done {
                        NodeStatus::Done
                    } else {
                        NodeStatus::Cut
                    };
                    run.nodes[i].out = out;
                    self.obs(ObsEvent::DagNodeExecuted {
                        applet: applet_id,
                        dispatch: DAG_DISPATCH_BIT | run_id,
                        node: i as u16,
                        kind,
                        at: ctx.now(),
                    });
                }
                Act::Launch(i) => {
                    {
                        let run = self.dag_runs.get_mut(run_id).expect("run checked above");
                        run.nodes[i].status = NodeStatus::InFlight;
                        run.outstanding += 1;
                    }
                    self.dag_send(ctx, run_id, i);
                }
            }
        }
    }

    /// Send (or re-send, from a retry timer) the network request of one
    /// query/action node. The node is `InFlight` and counted in
    /// `outstanding`; a breaker shed is treated as a retryable transport
    /// failure that consumes an attempt, so query steps face the same
    /// breaker/retry stack polls do.
    fn dag_send(&mut self, ctx: &mut Context<'_>, run_id: u64, idx: usize) {
        let Some(run) = self.dag_runs.get(run_id) else {
            return;
        };
        if run.nodes.get(idx).map(|n| n.status) != Some(NodeStatus::InFlight) {
            return;
        }
        let slot = run.slot;
        let id = self.tasks[slot as usize].id;
        if run.failed {
            // The run halted while this node waited on a retry timer:
            // resolve it without wasting the request.
            let run = self.dag_runs.get_mut(run_id).expect("run checked above");
            run.outstanding -= 1;
            run.nodes[idx].status = NodeStatus::Failed;
            self.dag_advance(ctx, run_id);
            return;
        }
        let (owner, action_service) = {
            let t = &self.tasks[slot as usize];
            (t.owner, t.action_service)
        };
        {
            let run = self.dag_runs.get_mut(run_id).expect("run checked above");
            run.nodes[idx].attempts += 1;
        }
        if self.breaker_sheds(ctx.now(), action_service) {
            self.dag_node_failure(ctx, run_id, idx, FailureClass::Transport, None);
            return;
        }
        let (req, sent_ev, node) = {
            let Some(reg) = self.services.get(&action_service) else {
                return;
            };
            let Some(bearer) = self.tokens.get(&(owner, action_service)) else {
                return;
            };
            let run = self.dag_runs.get(run_id).expect("run checked above");
            let applet = &self.applets[slot as usize];
            let input = dag_node_input(run, &applet.steps, idx);
            let attempt = run.nodes[idx].attempts;
            match &applet.steps[idx].spec {
                StepSpec::Query { query, fields, .. } => (
                    Request::post(query_path(&QuerySlug::new(query.clone())))
                        .with_header(SERVICE_KEY_HEADER, reg.key.0.clone())
                        .with_header(AUTHORIZATION_HEADER, bearer.clone())
                        .with_body(wire::to_bytes(&QueryRequestBody {
                            query_fields: substitute_fields(fields, &input),
                            user: applet.owner.clone(),
                        })),
                    ObsEvent::QuerySent {
                        applet: id,
                        dispatch: DAG_DISPATCH_BIT | run_id,
                        at: ctx.now(),
                    },
                    reg.node,
                ),
                StepSpec::Action { action, fields } => (
                    Request::post(action_path(&ActionSlug::new(action.clone())))
                        .with_header(SERVICE_KEY_HEADER, reg.key.0.clone())
                        .with_header(AUTHORIZATION_HEADER, bearer.clone())
                        .with_body(wire::to_bytes(&ActionRequestBody {
                            action_fields: substitute_fields(fields, &input),
                            user: applet.owner.clone(),
                        })),
                    ObsEvent::ActionSent {
                        applet: id,
                        dispatch: DAG_DISPATCH_BIT | run_id,
                        attempt,
                        at: ctx.now(),
                    },
                    reg.node,
                ),
                _ => return,
            }
        };
        self.obs(sent_ev);
        if ctx.tracing() {
            ctx.trace("engine.dag_node_sent", format!("{id:?} node {idx}"));
        }
        ctx.send_request(
            node,
            req,
            Token(TAG_DAG | (run_id << DAG_NODE_BITS) | idx as u64),
            RequestOpts {
                timeout: Some(self.config.request_timeout),
            },
        );
    }

    /// A network node's attempt failed (bad status, timeout, or a breaker
    /// shed). Either re-arm a retry on the backoff schedule — query nodes
    /// draw on the poll-retry budget, action nodes on the action-retry
    /// budget, with the node's `max_retries` overriding either — or
    /// resolve the node terminally under its effective failure policy.
    fn dag_node_failure(
        &mut self,
        ctx: &mut Context<'_>,
        run_id: u64,
        idx: usize,
        class: FailureClass,
        retry_after: Option<SimDuration>,
    ) {
        let Some(run) = self.dag_runs.get(run_id) else {
            return;
        };
        let slot = run.slot;
        let attempts = run.nodes[idx].attempts;
        let applet = &self.applets[slot as usize];
        let id = applet.id;
        let step = &applet.steps[idx];
        let is_action = matches!(step.spec, StepSpec::Action { .. });
        let base = if is_action {
            &self.config.action_retry
        } else {
            &self.config.poll_retry
        };
        let retry = match step.max_retries {
            Some(budget) => class.is_retryable() && attempts <= budget,
            None => base.should_retry(attempts, class),
        };
        let on_failure = step.on_failure;
        if retry {
            let mut delay = base.backoff.delay(attempts.saturating_sub(1), ctx.rng());
            if let Some(ra) = retry_after {
                delay = delay.max(ra);
            }
            self.obs(ObsEvent::DagNodeRetried {
                applet: id,
                dispatch: DAG_DISPATCH_BIT | run_id,
                node: idx as u16,
                at: ctx.now(),
            });
            if is_action {
                self.obs(ObsEvent::ActionRetried {
                    applet: id,
                    dispatch: DAG_DISPATCH_BIT | run_id,
                    at: ctx.now(),
                });
            }
            ctx.set_timer(delay, TK_DAG | (run_id << DAG_NODE_BITS) | idx as u64);
            return; // node stays InFlight; outstanding keeps counting it
        }
        let policy = match on_failure {
            StepFailurePolicy::PolicyDefault => match self.config.policy {
                EnginePolicy::IftttLike => StepFailurePolicy::Continue,
                EnginePolicy::ZapierLike => StepFailurePolicy::Halt,
            },
            explicit => explicit,
        };
        if !is_action {
            self.obs(ObsEvent::QueryFailed {
                dispatch: DAG_DISPATCH_BIT | run_id,
                at: ctx.now(),
            });
        }
        let run = self.dag_runs.get_mut(run_id).expect("run checked above");
        run.outstanding -= 1;
        match policy {
            StepFailurePolicy::Continue => {
                // The node resolves empty and downstream nodes still run —
                // the single-step engine's historical treatment of a
                // failed pre-dispatch query.
                run.nodes[idx].status = NodeStatus::Done;
                run.nodes[idx].out = FieldMap::new();
                if is_action {
                    run.any_action_failed = true;
                }
            }
            _ => {
                run.nodes[idx].status = NodeStatus::Failed;
                run.failed = true;
                for n in &mut run.nodes {
                    if n.status == NodeStatus::Pending {
                        n.status = NodeStatus::Skipped;
                    }
                }
            }
        }
        self.dag_advance(ctx, run_id);
    }

    /// One DAG run reached quiescence: emit exactly one terminal event —
    /// dead letter if the run failed (or an action failed with no sibling
    /// succeeding), success if any action landed, filtered otherwise — so
    /// `events_new == actions_ok + actions_filtered + dead_letters` holds
    /// for multi-step applets exactly as it does for single-step ones.
    fn dag_finish(&mut self, ctx: &mut Context<'_>, run_id: u64) {
        let Some(run) = self.dag_runs.remove(run_id) else {
            return;
        };
        let dispatch = DAG_DISPATCH_BIT | run_id;
        let applet = self.tasks[run.slot as usize].id;
        if run.failed || (run.any_action_failed && !run.any_action_ok) {
            self.obs(ObsEvent::ActionFinished {
                applet,
                dispatch,
                ok: false,
                at: ctx.now(),
            });
            self.obs(ObsEvent::ActionDeadLettered {
                applet,
                dispatch,
                at: ctx.now(),
            });
            ctx.trace("engine.dag_dead_letter", TraceDetail::Applet(applet.0));
        } else if run.any_action_ok {
            self.obs(ObsEvent::ActionFinished {
                applet,
                dispatch,
                ok: true,
                at: ctx.now(),
            });
            ctx.trace("engine.dag_ok", TraceDetail::Applet(applet.0));
        } else {
            self.obs(ObsEvent::ActionFiltered {
                applet,
                dispatch,
                at: ctx.now(),
            });
            ctx.trace("engine.dag_filtered", TraceDetail::Applet(applet.0));
        }
    }

    /// A response for one DAG node came back.
    fn on_dag_response(&mut self, ctx: &mut Context<'_>, run_id: u64, idx: usize, resp: Response) {
        let Some(run) = self.dag_runs.get(run_id) else {
            return;
        };
        if run.nodes.get(idx).map(|n| n.status) != Some(NodeStatus::InFlight) {
            return;
        }
        let slot = run.slot;
        let id = self.tasks[slot as usize].id;
        let service = self.tasks[slot as usize].action_service;
        if !resp.is_success() {
            self.breaker_record(ctx, service, false);
            let class = FailureClass::of_status(resp.status).unwrap_or(FailureClass::Transport);
            self.dag_node_failure(ctx, run_id, idx, class, retry_after_hint(&resp));
            return;
        }
        self.breaker_record(ctx, service, true);
        let applet = &self.applets[slot as usize];
        let (kind, is_action, out) = match &applet.steps[idx].spec {
            StepSpec::Query { prefix, .. } => {
                // Merge the result keys under the node's prefix, exactly
                // like the single-step query path; an unparseable 200
                // resolves empty without a failure.
                let mut out = FieldMap::new();
                if let Ok(body) = wire::from_bytes::<QueryResponseBody>(&resp.body) {
                    for (k, v) in body.data {
                        out.insert(format!("{prefix}.{k}"), v);
                    }
                }
                (StepKind::Query, false, out)
            }
            StepSpec::Action { .. } => (StepKind::Action, true, FieldMap::new()),
            _ => return,
        };
        let run = self.dag_runs.get_mut(run_id).expect("run checked above");
        run.outstanding -= 1;
        run.nodes[idx].status = NodeStatus::Done;
        run.nodes[idx].out = out;
        if is_action {
            run.any_action_ok = true;
        }
        self.obs(ObsEvent::DagNodeExecuted {
            applet: id,
            dispatch: DAG_DISPATCH_BIT | run_id,
            node: idx as u16,
            kind,
            at: ctx.now(),
        });
        self.dag_advance(ctx, run_id);
    }

    fn on_realtime_notification(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        self.obs(ObsEvent::HintReceived { at: ctx.now() });
        let Some(slug) = req
            .header(SERVICE_KEY_HEADER)
            .and_then(|k| self.syms.get(k))
            .and_then(|sym| self.service_by_key.get(&sym))
            .cloned()
        else {
            return HandlerResult::Reply(Response::unauthorized());
        };
        // The versioned first-class message is tried first; a legacy
        // bare-identity hint (no `version`/`service`) still parses. A
        // body that is neither — or a v1 body speaking an unknown version
        // or claiming a service other than the authenticated one — is a
        // counted 400, never a silent swallow.
        let items = match parse_realtime_items(&req.body, &slug) {
            Some(items) => items,
            None => {
                self.obs(ObsEvent::HintMalformed { at: ctx.now() });
                ctx.trace("engine.hint_malformed", slug.0.clone());
                return HandlerResult::Reply(Response::bad_request().with_body(wire::to_bytes(
                    &ErrorBody::message("malformed realtime notification"),
                )));
            }
        };
        if !self.config.realtime_allowlist.contains(&slug) {
            // Accepted, acknowledged … and ignored. §4: "the IFTTT engine
            // has full control over trigger event queries and very likely
            // ignores real-time API's hints."
            self.obs(ObsEvent::HintIgnored { at: ctx.now() });
            ctx.trace("engine.hint_ignored", slug.0.clone());
            return HandlerResult::Reply(Response::ok());
        }
        self.obs(ObsEvent::HintHonored { at: ctx.now() });
        let mut accepted = 0u64;
        let mut suppressed = 0u64;
        for ti in items {
            let slots = self
                .syms
                .get(ti.as_str())
                .and_then(|s| self.by_identity.get(&s))
                .cloned();
            let Some(slots) = slots else {
                continue;
            };
            for slot in slots {
                if self.realtime_poll(ctx, slot) {
                    accepted += 1;
                } else {
                    suppressed += 1;
                }
            }
        }
        HandlerResult::Reply(Response::ok().with_body(wire::to_bytes(&RealtimeAckBody {
            accepted,
            suppressed,
        })))
    }

    /// Arm the immediate out-of-cadence poll an honored notification asks
    /// for: preempt the subscription's pending wheel entry (a grouped
    /// member remembers the preempted instant so its batch group's phase
    /// lock survives) and fire after the short hint-processing delay.
    /// Returns `false` when the hint is absorbed instead: an immediate
    /// poll already outstanding, an open debounce window, or no pending
    /// timer (a poll is in flight — the data is about to be fetched
    /// anyway). Either way the subscription keeps exactly one scheduled
    /// or in-flight poll, so a notified member never double-polls.
    fn realtime_poll(&mut self, ctx: &mut Context<'_>, slot: Slot) -> bool {
        let now = ctx.now();
        let task = &self.tasks[slot as usize];
        let id = task.id;
        if !task.enabled || task.rt_pending || now < task.rt_debounce_until {
            self.obs(ObsEvent::RealtimeSuppressed {
                applet: id,
                at: now,
            });
            return false;
        }
        if task.next_poll.is_none() {
            self.obs(ObsEvent::RealtimeSuppressed {
                applet: id,
                at: now,
            });
            return false;
        }
        let resume = (task.grouped && self.config.batch_polling).then_some(task.next_poll_at);
        let delay = SimDuration::from_secs_f64(self.config.hint_processing.sample(ctx.rng()));
        let task = &mut self.tasks[slot as usize];
        task.rt_pending = true;
        task.rt_resume_at = resume;
        if ctx.tracing() {
            ctx.trace("engine.hint_poll", format!("{id:?} in {delay}"));
        }
        self.schedule_poll(ctx, slot, delay);
        true
    }
}

/// The trigger identities a realtime notification body hints at, from
/// either wire generation: the versioned [`RealtimeNotificationV1`]
/// (validated against the authenticated `from` service and the spoken
/// version) or the legacy bare-identity [`RealtimeNotification`]. `None`
/// when the body is neither.
fn parse_realtime_items(body: &[u8], from: &ServiceSlug) -> Option<Vec<TriggerIdentity>> {
    if let Ok(v1) = wire::from_bytes::<wire::RealtimeNotificationV1>(body) {
        if v1.version != wire::REALTIME_NOTIFICATION_VERSION || v1.service != *from {
            return None;
        }
        return Some(v1.data.into_iter().map(|c| c.trigger_identity).collect());
    }
    wire::from_bytes::<RealtimeNotification>(body)
        .ok()
        .map(|n| n.data.into_iter().map(|i| i.trigger_identity).collect())
}

/// The ingredient view a DAG node executes against: the trigger event's
/// ingredients overlaid with the outputs of every *transitive* ancestor,
/// applied in node-index order (later ancestors win key collisions,
/// mirroring the query-merge precedence of the single-step path).
/// Borrows the event's ingredients directly when no ancestor contributed
/// anything — the common case for early nodes and pure action chains.
fn dag_node_input<'r>(run: &'r DagRun, steps: &[StepNode], node: usize) -> Cow<'r, FieldMap> {
    let mask = ancestor_mask(steps, node);
    let any_overlay = (0..node).any(|i| mask & (1 << i) != 0 && !run.nodes[i].out.is_empty());
    if !any_overlay {
        return Cow::Borrowed(&run.event.ingredients);
    }
    let mut input = run.event.ingredients.clone();
    for i in 0..node {
        if mask & (1 << i) != 0 {
            for (k, v) in &run.nodes[i].out {
                input.insert(k.clone(), v.clone());
            }
        }
    }
    Cow::Owned(input)
}

/// Transitive ancestor set of `node` as a bitmask. Deps always point at
/// strictly lower indices (enforced by `validate_steps`), so the
/// recursion is bounded by the node count (≤ 16).
fn ancestor_mask(steps: &[StepNode], node: usize) -> u32 {
    let mut mask = 0u32;
    for &d in &steps[node].deps {
        let d = d as usize;
        mask |= (1u32 << d) | ancestor_mask(steps, d);
    }
    mask
}

/// The `Retry-After` delay a 5xx response advertises, if any. The engine's
/// backoff never retries *sooner* than the service asked.
fn retry_after_hint(resp: &Response) -> Option<SimDuration> {
    let secs: f64 = resp.header(RETRY_AFTER_HEADER)?.parse().ok()?;
    (secs >= 0.0).then(|| SimDuration::from_secs_f64(secs))
}

impl Node for TapEngine {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if req.path == REALTIME_NOTIFY_PATH && req.method == Method::Post {
            return self.on_realtime_notification(ctx, req);
        }
        HandlerResult::Reply(Response::not_found())
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        match key & TAG_MASK {
            TK_POLL => {
                let slot = (key & !TAG_MASK) as Slot;
                let Some(task) = self.tasks.get_mut(slot as usize) else {
                    return;
                };
                task.next_poll = None;
                let grouped = task.grouped;
                let group = task.group;
                let realtime = task.rt_pending;
                // A group whose batch request just failed polls singleton
                // for a cycle (graceful degradation), then re-coalesces.
                let degraded = self.config.batch_polling
                    && grouped
                    && !self.degraded_until.is_empty()
                    && self
                        .degraded_until
                        .get(&group)
                        .is_some_and(|until| ctx.now() < *until);
                // A realtime-armed poll goes out alone even for a grouped
                // member: initiating a batch here would drag the whole
                // group off its phase for one subscription's hint.
                if self.config.batch_polling && grouped && !degraded && !realtime {
                    self.send_batch_poll(ctx, slot);
                } else {
                    self.send_poll(ctx, slot);
                }
            }
            TK_DISPATCH => {
                let dispatch = key & !TAG_MASK;
                self.send_action(ctx, dispatch);
            }
            TK_DAG => {
                let packed = key & !TAG_MASK;
                let run_id = packed >> DAG_NODE_BITS;
                let idx = packed & DAG_NODE_MASK;
                if idx == DAG_RUN_START {
                    if let Some(run) = self.dag_runs.get(run_id) {
                        let applet = self.tasks[run.slot as usize].id;
                        self.obs(ObsEvent::DagRunStarted {
                            applet,
                            dispatch: DAG_DISPATCH_BIT | run_id,
                            at: ctx.now(),
                        });
                        self.dag_advance(ctx, run_id);
                    }
                } else {
                    // A node retry timer fired.
                    self.dag_send(ctx, run_id, idx as usize);
                }
            }
            _ => {}
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        match token.0 & TAG_MASK {
            TAG_POLL => {
                let slot = (token.0 & !TAG_MASK) as Slot;
                self.on_poll_response(ctx, slot, resp);
            }
            TAG_ACTION => {
                let dispatch = token.0 & !TAG_MASK;
                let Some(job) = self.dispatches.get(dispatch) else {
                    return;
                };
                let slot = job.slot;
                let applet = self.tasks[slot as usize].id;
                let attempts = job.attempts;
                if resp.is_success() {
                    self.obs(ObsEvent::ActionFinished {
                        applet,
                        dispatch,
                        ok: true,
                        at: ctx.now(),
                    });
                    ctx.trace("engine.action_ok", TraceDetail::Applet(applet.0));
                    self.dispatches.remove(dispatch);
                    if self.config.breaker.is_some() {
                        let s = self.tasks[slot as usize].action_service;
                        self.breaker_record(ctx, s, true);
                    }
                    return;
                }
                let class = FailureClass::of_status(resp.status).unwrap_or(FailureClass::Transport);
                if self.config.breaker.is_some() {
                    let s = self.tasks[slot as usize].action_service;
                    self.breaker_record(ctx, s, false);
                }
                if self.config.action_retry.should_retry(attempts, class) {
                    // Retry after a backoff; the dispatch entry stays.
                    self.obs(ObsEvent::ActionRetried {
                        applet,
                        dispatch,
                        at: ctx.now(),
                    });
                    let mut backoff = self
                        .config
                        .action_retry
                        .backoff
                        .delay(attempts.saturating_sub(1), ctx.rng());
                    if let Some(ra) = retry_after_hint(&resp) {
                        backoff = backoff.max(ra);
                    }
                    ctx.trace(
                        "engine.action_retry",
                        format!("{applet:?} attempt {} in {backoff}", attempts + 1),
                    );
                    ctx.set_timer(backoff, TK_DISPATCH | dispatch);
                } else {
                    // Dead letter: retries exhausted, or a terminal 4xx
                    // that no retry budget can cure.
                    self.obs(ObsEvent::ActionFinished {
                        applet,
                        dispatch,
                        ok: false,
                        at: ctx.now(),
                    });
                    self.obs(ObsEvent::ActionDeadLettered {
                        applet,
                        dispatch,
                        at: ctx.now(),
                    });
                    if ctx.tracing() {
                        ctx.trace(
                            "engine.action_failed",
                            format!("{applet:?} status {} ({class:?})", resp.status),
                        );
                    }
                    self.dispatches.remove(dispatch);
                }
            }
            TAG_BATCH => {
                let seq = token.0 & !TAG_MASK;
                self.on_batch_poll_response(ctx, seq, resp);
            }
            TAG_QUERY => {
                let packed = token.0 & !TAG_MASK;
                let dispatch = packed >> QUERY_IDX_BITS;
                let qidx = (packed & ((1 << QUERY_IDX_BITS) - 1)) as usize;
                self.on_query_response(ctx, dispatch, qidx, resp);
            }
            TAG_DAG => {
                let packed = token.0 & !TAG_MASK;
                let run_id = packed >> DAG_NODE_BITS;
                let idx = (packed & DAG_NODE_MASK) as usize;
                self.on_dag_response(ctx, run_id, idx, resp);
            }
            TAG_OAUTH_AUTH => {
                let seq = token.0 & !TAG_MASK;
                let Some((user, service)) = self.pending_oauth.get(&seq).cloned() else {
                    return;
                };
                if !resp.is_success() {
                    self.pending_oauth.remove(&seq);
                    return;
                }
                #[derive(serde::Deserialize)]
                struct CodeBody {
                    code: String,
                }
                let Ok(b) = serde_json::from_slice::<CodeBody>(&resp.body) else {
                    self.pending_oauth.remove(&seq);
                    return;
                };
                let Some(reg) = self
                    .service_sym(&service)
                    .and_then(|s| self.services.get(&s))
                else {
                    return;
                };
                let node = reg.node;
                let _ = user;
                let mut body = String::with_capacity(b.code.len() + 12);
                body.push_str("{\"code\":");
                serde_json::write_json_str(&mut body, &b.code);
                body.push('}');
                let req = Request::post("/oauth2/token").with_body(body);
                let timeout = self.config.request_timeout;
                ctx.send_request(
                    node,
                    req,
                    Token(TAG_OAUTH_TOKEN | seq),
                    RequestOpts {
                        timeout: Some(timeout),
                    },
                );
            }
            TAG_OAUTH_TOKEN => {
                let seq = token.0 & !TAG_MASK;
                let Some((user, service)) = self.pending_oauth.remove(&seq) else {
                    return;
                };
                if !resp.is_success() {
                    return;
                }
                #[derive(serde::Deserialize)]
                struct TokenBody {
                    access_token: String,
                }
                if let Ok(b) = serde_json::from_slice::<TokenBody>(&resp.body) {
                    if ctx.tracing() {
                        ctx.trace("engine.connected", format!("{user:?} {service}"));
                    }
                    self.set_token(user, service, AccessToken(b.access_token));
                }
            }
            _ => {}
        }
    }
}
