//! Permission management.
//!
//! §6: "IFTTT performs coarse-grained permission control at the service
//! level: for a service involved in any trigger or action installed by the
//! user, IFTTT will need **all** permissions of the service … the 'least
//! privilege principle' is violated."
//!
//! [`PermissionManager`] implements both the production behaviour
//! ([`Granularity::ServiceLevel`]) and the recommended fine-grained scheme
//! ([`Granularity::PerCapability`]), plus an audit that quantifies the
//! excess authority the coarse scheme grants — the measurement behind the
//! paper's recommendation.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use tap_protocol::{ServiceSlug, UserId};

/// A single named capability a service exposes (one trigger or action, or
/// a backing API scope like "delete email").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Capability(pub String);

impl Capability {
    /// Wrap a capability name.
    pub fn new(s: impl Into<String>) -> Self {
        Capability(s.into())
    }
}

/// Which permission model is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Production IFTTT: connecting a service grants *all* its capabilities.
    ServiceLevel,
    /// §6 recommendation: grant only the capabilities an applet needs.
    PerCapability,
}

/// Result of the least-privilege audit for one (user, service) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    pub user: UserId,
    pub service: ServiceSlug,
    /// Capabilities the user's applets actually need.
    pub needed: usize,
    /// Capabilities currently granted.
    pub granted: usize,
}

impl AuditEntry {
    /// Capabilities granted beyond need.
    pub fn excess(&self) -> usize {
        self.granted.saturating_sub(self.needed)
    }
}

/// Tracks what each service exposes and what each user has granted.
#[derive(Debug)]
pub struct PermissionManager {
    granularity: Granularity,
    /// Full capability set of each service.
    catalog: HashMap<ServiceSlug, HashSet<Capability>>,
    /// Currently granted capabilities.
    granted: HashMap<(UserId, ServiceSlug), HashSet<Capability>>,
    /// Capabilities actually required by installed applets.
    needed: HashMap<(UserId, ServiceSlug), HashSet<Capability>>,
}

impl PermissionManager {
    /// Create a manager with the given granularity.
    pub fn new(granularity: Granularity) -> Self {
        PermissionManager {
            granularity,
            catalog: HashMap::new(),
            granted: HashMap::new(),
            needed: HashMap::new(),
        }
    }

    /// The active granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Declare a service's full capability surface.
    pub fn register_service(
        &mut self,
        service: ServiceSlug,
        capabilities: impl IntoIterator<Item = Capability>,
    ) {
        self.catalog
            .entry(service)
            .or_default()
            .extend(capabilities);
    }

    /// A user installs an applet half that needs `capability` of `service`:
    /// record the need and grant according to the granularity.
    pub fn request(&mut self, user: &UserId, service: &ServiceSlug, capability: Capability) {
        let key = (user.clone(), service.clone());
        self.needed
            .entry(key.clone())
            .or_default()
            .insert(capability.clone());
        let grant = self.granted.entry(key).or_default();
        match self.granularity {
            Granularity::ServiceLevel => {
                // All-or-nothing: the whole catalog is granted.
                if let Some(all) = self.catalog.get(service) {
                    grant.extend(all.iter().cloned());
                } else {
                    grant.insert(capability);
                }
            }
            Granularity::PerCapability => {
                grant.insert(capability);
            }
        }
    }

    /// Is `capability` currently granted?
    pub fn is_granted(
        &self,
        user: &UserId,
        service: &ServiceSlug,
        capability: &Capability,
    ) -> bool {
        self.granted
            .get(&(user.clone(), service.clone()))
            .is_some_and(|g| g.contains(capability))
    }

    /// Revoke everything a user granted to a service (disconnect).
    pub fn revoke(&mut self, user: &UserId, service: &ServiceSlug) {
        self.granted.remove(&(user.clone(), service.clone()));
        self.needed.remove(&(user.clone(), service.clone()));
    }

    /// The least-privilege audit: needed vs granted for every connection.
    pub fn audit(&self) -> Vec<AuditEntry> {
        let mut entries: Vec<AuditEntry> = self
            .granted
            .iter()
            .map(|((user, service), granted)| AuditEntry {
                user: user.clone(),
                service: service.clone(),
                needed: self
                    .needed
                    .get(&(user.clone(), service.clone()))
                    .map_or(0, HashSet::len),
                granted: granted.len(),
            })
            .collect();
        entries.sort_by(|a, b| (&a.user, &a.service).cmp(&(&b.user, &b.service)));
        entries
    }

    /// Total excess capabilities across all connections — the headline
    /// number of the §6 permission discussion.
    pub fn total_excess(&self) -> usize {
        self.audit().iter().map(AuditEntry::excess).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gmail_catalog() -> Vec<Capability> {
        ["read_email", "delete_email", "send_email", "manage_labels"]
            .iter()
            .map(|c| Capability::new(*c))
            .collect()
    }

    #[test]
    fn service_level_grants_everything() {
        // The paper's example: installing "new email arrives" grants
        // reading, deleting, sending, and managing email.
        let mut pm = PermissionManager::new(Granularity::ServiceLevel);
        let gmail = ServiceSlug::new("gmail");
        pm.register_service(gmail.clone(), gmail_catalog());
        let user = UserId::new("u");
        pm.request(&user, &gmail, Capability::new("read_email"));
        for cap in gmail_catalog() {
            assert!(
                pm.is_granted(&user, &gmail, &cap),
                "{cap:?} should be granted"
            );
        }
        let audit = pm.audit();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].needed, 1);
        assert_eq!(audit[0].granted, 4);
        assert_eq!(audit[0].excess(), 3);
        assert_eq!(pm.total_excess(), 3);
    }

    #[test]
    fn per_capability_grants_only_whats_needed() {
        let mut pm = PermissionManager::new(Granularity::PerCapability);
        let gmail = ServiceSlug::new("gmail");
        pm.register_service(gmail.clone(), gmail_catalog());
        let user = UserId::new("u");
        pm.request(&user, &gmail, Capability::new("read_email"));
        assert!(pm.is_granted(&user, &gmail, &Capability::new("read_email")));
        assert!(!pm.is_granted(&user, &gmail, &Capability::new("delete_email")));
        assert_eq!(pm.total_excess(), 0);
    }

    #[test]
    fn needs_accumulate_across_applets() {
        let mut pm = PermissionManager::new(Granularity::PerCapability);
        let gmail = ServiceSlug::new("gmail");
        pm.register_service(gmail.clone(), gmail_catalog());
        let user = UserId::new("u");
        pm.request(&user, &gmail, Capability::new("read_email"));
        pm.request(&user, &gmail, Capability::new("send_email"));
        let audit = pm.audit();
        assert_eq!(audit[0].needed, 2);
        assert_eq!(audit[0].granted, 2);
    }

    #[test]
    fn revoke_clears_the_connection() {
        let mut pm = PermissionManager::new(Granularity::ServiceLevel);
        let gmail = ServiceSlug::new("gmail");
        pm.register_service(gmail.clone(), gmail_catalog());
        let user = UserId::new("u");
        pm.request(&user, &gmail, Capability::new("read_email"));
        pm.revoke(&user, &gmail);
        assert!(!pm.is_granted(&user, &gmail, &Capability::new("read_email")));
        assert!(pm.audit().is_empty());
    }

    #[test]
    fn unregistered_service_grants_just_the_request() {
        let mut pm = PermissionManager::new(Granularity::ServiceLevel);
        let s = ServiceSlug::new("mystery");
        let user = UserId::new("u");
        pm.request(&user, &s, Capability::new("x"));
        assert!(pm.is_granted(&user, &s, &Capability::new("x")));
        assert_eq!(pm.total_excess(), 0);
    }

    #[test]
    fn users_are_isolated() {
        let mut pm = PermissionManager::new(Granularity::ServiceLevel);
        let gmail = ServiceSlug::new("gmail");
        pm.register_service(gmail.clone(), gmail_catalog());
        pm.request(&UserId::new("a"), &gmail, Capability::new("read_email"));
        assert!(!pm.is_granted(&UserId::new("b"), &gmail, &Capability::new("read_email")));
    }
}
