//! # engine — a trigger-action-programming engine reproducing IFTTT
//!
//! The centralized engine the paper measures from the outside (and, for
//! experiment E3, re-implements): applet storage, per-subscription trigger
//! polling with batched event delivery, action dispatch with ingredient
//! substitution, OAuth2 token caching, realtime-API hint handling with a
//! per-service allowlist, coarse- and fine-grained permission management,
//! and static plus runtime infinite-loop detection.
//!
//! The crate is protocol-pure: it depends only on `simnet` and
//! `tap-protocol`, never on concrete devices, so any service speaking the
//! partner protocol can be driven by it.
//!
//! Entry points:
//! * [`TapEngine`] — the engine node; configure with [`EngineConfig`].
//! * [`LifecycleEvent`] / [`TapEngine::apply_lifecycle`] — the single
//!   applet/service lifecycle surface (install, uninstall, onboard,
//!   retire); the legacy install constructors wrap it.
//! * [`PollPolicy`] — production-like, fixed (E3), or smart (§6) polling.
//! * [`Applet`] / [`AppletId`] — the automation rules.
//! * [`permissions::PermissionManager`] — §6 permission models + audit.
//! * [`loopdetect`] — §4/§6 static and runtime loop detection.

pub mod applet;
pub mod conditions;
pub mod engine;
pub mod loopdetect;
pub mod obs;
pub mod permissions;
pub mod polling;
pub mod resilience;

pub use applet::{substitute_fields, ActionRef, Applet, AppletId, QueryRef, TriggerRef};
pub use conditions::Condition;
pub use engine::{
    EngineConfig, EnginePolicy, EngineStats, InstallError, LifecycleAck, LifecycleError,
    LifecycleEvent, RuntimeLoopConfig, ServiceRegistration, TapEngine,
};
pub use loopdetect::{FeedRule, RuntimeLoopDetector, StaticLoopDetector};
pub use obs::{FlightRecorder, ObsEvent, ObsSink, Stat};
pub use permissions::{AuditEntry, Capability, Granularity, PermissionManager};
pub use polling::PollPolicy;
pub use resilience::{BackoffPolicy, BreakerPolicy, BreakerState, CircuitBreaker, RetryPolicy};
