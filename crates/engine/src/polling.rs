//! Poll scheduling policies.
//!
//! The paper's central performance finding (§4) is that trigger-to-action
//! latency "is caused by IFTTT's long polling interval": 25th/50th/75th
//! percentiles of 58/84/122 seconds, with a tail reaching 15 minutes.
//! [`PollPolicy::ifttt_like`] reproduces that behaviour mechanistically —
//! long, jittered poll gaps plus occasional backlog episodes — while
//! [`PollPolicy::fixed`] is the authors' own engine in experiment E3
//! ("performs frequent polling (every 1 second)"), and
//! [`PollPolicy::smart`] implements the §6 recommendation of spending a
//! fixed polling budget preferentially on popular applets.

use crate::applet::Applet;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::rng::Dist;
use simnet::time::SimDuration;

/// How the engine spaces successive polls of one trigger subscription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PollPolicy {
    /// Production-IFTTT-like: gap drawn from `gap` (seconds), replaced with
    /// a draw from `backlog` with probability `backlog_prob` (modeling the
    /// high-workload episodes behind the paper's 14–15-minute outliers).
    IftttLike {
        gap: Dist,
        backlog_prob: f64,
        backlog: Dist,
    },
    /// Fixed-interval polling (E3 uses one second).
    Fixed { seconds: f64 },
    /// Popularity-weighted polling under a global budget: applets in the
    /// top `fast_fraction` of `total_add_count` poll every `fast_seconds`,
    /// the rest every `slow_seconds`. Keeping the *aggregate* poll rate
    /// equal to IftttLike's is the ablation bench's job.
    Smart {
        /// Add-count threshold above which an applet is "hot".
        hot_threshold: u64,
        fast_seconds: f64,
        slow_seconds: f64,
    },
}

impl PollPolicy {
    /// The fitted production-like policy (see EXPERIMENTS.md for the
    /// calibration against Figures 4–6).
    pub fn ifttt_like() -> Self {
        PollPolicy::IftttLike {
            gap: Dist::Normal {
                mean: 155.0,
                std: 30.0,
                min: 90.0,
            },
            backlog_prob: 0.025,
            backlog: Dist::Uniform {
                lo: 300.0,
                hi: 900.0,
            },
        }
    }

    /// Fixed-interval polling.
    pub fn fixed(seconds: f64) -> Self {
        PollPolicy::Fixed { seconds }
    }

    /// The §6 smart policy with default knee values.
    pub fn smart(hot_threshold: u64) -> Self {
        PollPolicy::Smart {
            hot_threshold,
            fast_seconds: 5.0,
            slow_seconds: 300.0,
        }
    }

    /// Draw the time until the next poll of `applet`.
    pub fn next_gap(&self, applet: &Applet, rng: &mut impl Rng) -> SimDuration {
        let secs = match self {
            PollPolicy::IftttLike {
                gap,
                backlog_prob,
                backlog,
            } => {
                if rng.gen::<f64>() < *backlog_prob {
                    backlog.sample(rng)
                } else {
                    gap.sample(rng)
                }
            }
            PollPolicy::Fixed { seconds } => *seconds,
            PollPolicy::Smart {
                hot_threshold,
                fast_seconds,
                slow_seconds,
            } => {
                if applet.add_count >= *hot_threshold {
                    *fast_seconds
                } else {
                    *slow_seconds
                }
            }
        };
        SimDuration::from_secs_f64(secs.max(0.05))
    }

    /// Which cadence class an applet polls in. Subscriptions coalesce into
    /// one batch request only within a class: under [`PollPolicy::Smart`]
    /// a hot (5 s) applet must never phase-lock with a cold (300 s) one,
    /// while the single-cadence policies put everything in class 0.
    pub fn cadence_class(&self, applet: &Applet) -> u8 {
        match self {
            PollPolicy::Smart { hot_threshold, .. } if applet.add_count >= *hot_threshold => 1,
            _ => 0,
        }
    }

    /// Expected polls per second one applet costs under this policy.
    pub fn expected_rate(&self, applet: &Applet) -> f64 {
        match self {
            PollPolicy::IftttLike {
                gap,
                backlog_prob,
                backlog,
            } => {
                let mean = (1.0 - backlog_prob) * gap.mean() + backlog_prob * backlog.mean();
                1.0 / mean
            }
            PollPolicy::Fixed { seconds } => 1.0 / seconds,
            PollPolicy::Smart {
                hot_threshold,
                fast_seconds,
                slow_seconds,
            } => {
                if applet.add_count >= *hot_threshold {
                    1.0 / fast_seconds
                } else {
                    1.0 / slow_seconds
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::applet::{ActionRef, AppletId, TriggerRef};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

    fn applet(add_count: u64) -> Applet {
        let mut a = Applet::new(
            AppletId(1),
            "a",
            UserId::new("u"),
            TriggerRef {
                service: ServiceSlug::new("s"),
                trigger: TriggerSlug::new("t"),
                fields: FieldMap::new(),
            },
            ActionRef {
                service: ServiceSlug::new("s2"),
                action: ActionSlug::new("a"),
                fields: FieldMap::new(),
            },
        );
        a.add_count = add_count;
        a
    }

    #[test]
    fn ifttt_like_gaps_are_minutes_not_seconds() {
        let p = PollPolicy::ifttt_like();
        let mut rng = StdRng::seed_from_u64(1);
        let a = applet(0);
        let n = 2_000;
        let mut gaps: Vec<f64> = (0..n)
            .map(|_| p.next_gap(&a, &mut rng).as_secs_f64())
            .collect();
        gaps.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = gaps[n / 2];
        assert!((120.0..200.0).contains(&median), "median gap {median}");
        // The backlog tail exists and reaches several minutes.
        assert!(gaps[n - 1] > 300.0, "max gap {}", gaps[n - 1]);
        // But is rare.
        let long = gaps.iter().filter(|g| **g > 300.0).count();
        assert!((n / 200..n / 10).contains(&long), "{long} long gaps");
    }

    #[test]
    fn fixed_gap_is_exact() {
        let p = PollPolicy::fixed(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(p.next_gap(&applet(0), &mut rng), SimDuration::from_secs(1));
    }

    #[test]
    fn smart_polls_hot_applets_fast() {
        let p = PollPolicy::smart(1_000);
        let mut rng = StdRng::seed_from_u64(3);
        let hot = p.next_gap(&applet(10_000), &mut rng);
        let cold = p.next_gap(&applet(10), &mut rng);
        assert!(hot < cold);
        assert_eq!(hot, SimDuration::from_secs(5));
        assert_eq!(cold, SimDuration::from_secs(300));
    }

    #[test]
    fn cadence_class_splits_only_smart_hot_and_cold() {
        let smart = PollPolicy::smart(1_000);
        assert_eq!(smart.cadence_class(&applet(10_000)), 1);
        assert_eq!(smart.cadence_class(&applet(10)), 0);
        assert_eq!(PollPolicy::ifttt_like().cadence_class(&applet(10_000)), 0);
        assert_eq!(PollPolicy::fixed(1.0).cadence_class(&applet(10_000)), 0);
    }

    #[test]
    fn expected_rates_order_sensibly() {
        let fast = PollPolicy::fixed(1.0);
        let slow = PollPolicy::ifttt_like();
        let a = applet(0);
        assert!(fast.expected_rate(&a) > slow.expected_rate(&a) * 50.0);
    }

    #[test]
    fn gap_never_degenerates_to_zero() {
        let p = PollPolicy::fixed(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(p.next_gap(&applet(0), &mut rng) > SimDuration::ZERO);
    }
}
