//! Infinite-loop detection for chained applets.
//!
//! §4: "users may misconfigure chained applets to form an 'infinite loop'
//! … we confirm that despite a simple task, no 'syntax check' is performed
//! by IFTTT to detect a potential infinite loop. Furthermore … an infinite
//! loop may be jointly triggered by IFTTT and 3rd-party automation services
//! … Since IFTTT is not aware of the latter, it cannot detect the loop by
//! analyzing the applets offline. Instead, some runtime detection
//! techniques are needed."
//!
//! This module provides both halves:
//!
//! * [`StaticLoopDetector`] — the offline "syntax check" IFTTT lacks: a
//!   cycle search over the applet graph, where applet A feeds applet B if
//!   A's action can produce B's trigger. Couplings *inside* services are
//!   declared via [`StaticLoopDetector::declare_feed`]; couplings through
//!   external automations (the spreadsheet notification feature) can only
//!   be found if someone tells the detector about them — exactly the
//!   paper's point.
//! * [`RuntimeLoopDetector`] — a sliding-window execution-rate monitor that
//!   flags applets executing implausibly often, catching implicit loops
//!   that static analysis cannot see.

use crate::applet::{Applet, AppletId};
use simnet::time::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};
use tap_protocol::{ActionSlug, ServiceSlug, TriggerSlug};

/// A directed "can produce" edge: executing `action` on `action_service`
/// can make `trigger` on `trigger_service` fire.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeedRule {
    pub action_service: ServiceSlug,
    pub action: ActionSlug,
    pub trigger_service: ServiceSlug,
    pub trigger: TriggerSlug,
}

/// Offline cycle detection over installed applets.
#[derive(Debug, Default)]
pub struct StaticLoopDetector {
    rules: HashSet<FeedRule>,
}

impl StaticLoopDetector {
    /// An empty detector (knows no couplings — like production IFTTT).
    pub fn new() -> Self {
        StaticLoopDetector::default()
    }

    /// Declare that an action can produce a trigger.
    pub fn declare_feed(&mut self, rule: FeedRule) {
        self.rules.insert(rule);
    }

    /// Does `a`'s action feed `b`'s trigger (per declared rules)?
    fn feeds(&self, a: &Applet, b: &Applet) -> bool {
        if a.owner != b.owner {
            return false; // applets run under separate accounts
        }
        self.rules.contains(&FeedRule {
            action_service: a.action.service.clone(),
            action: a.action.action.clone(),
            trigger_service: b.trigger.service.clone(),
            trigger: b.trigger.trigger.clone(),
        })
    }

    /// Find every applet that participates in a cycle. Returns cycles as
    /// lists of applet ids (each list is one strongly connected component
    /// with ≥1 internal edge, i.e. a real loop — including self-loops).
    pub fn find_cycles(&self, applets: &[Applet]) -> Vec<Vec<AppletId>> {
        let n = applets.len();
        // Adjacency by index.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, a) in applets.iter().enumerate() {
            for (j, b) in applets.iter().enumerate() {
                if self.feeds(a, b) {
                    adj[i].push(j);
                }
            }
        }
        // Tarjan SCC, iterative.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        #[derive(Clone)]
        struct Frame {
            v: usize,
            child: usize,
        }
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call: Vec<Frame> = vec![Frame { v: start, child: 0 }];
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(frame) = call.last_mut() {
                let v = frame.v;
                if frame.child < adj[v].len() {
                    let w = adj[v][frame.child];
                    frame.child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                    let lv = low[v];
                    call.pop();
                    if let Some(parent) = call.last() {
                        low[parent.v] = low[parent.v].min(lv);
                    }
                }
            }
        }
        // Keep only SCCs that contain a real loop.
        sccs.into_iter()
            .filter(|comp| {
                comp.len() > 1 || adj[comp[0]].contains(&comp[0]) // self-loop
            })
            .map(|comp| {
                let mut ids: Vec<AppletId> = comp.into_iter().map(|i| applets[i].id).collect();
                ids.sort();
                ids
            })
            .collect()
    }
}

/// Verdict of the runtime monitor for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeVerdict {
    /// Execution rate looks normal.
    Ok,
    /// The applet exceeded the rate threshold: likely in a loop.
    LoopSuspected,
}

/// Sliding-window execution-rate monitor.
#[derive(Debug)]
pub struct RuntimeLoopDetector {
    /// Flag when more than this many executions…
    pub max_executions: usize,
    /// …fall within this window.
    pub window: SimDuration,
    history: HashMap<AppletId, VecDeque<SimTime>>,
    flagged: HashSet<AppletId>,
}

impl RuntimeLoopDetector {
    /// A monitor flagging more than `max_executions` within `window`.
    pub fn new(max_executions: usize, window: SimDuration) -> Self {
        RuntimeLoopDetector {
            max_executions,
            window,
            history: HashMap::new(),
            flagged: HashSet::new(),
        }
    }

    /// Record an execution of `applet` at `now` and judge it.
    pub fn record(&mut self, applet: AppletId, now: SimTime) -> RuntimeVerdict {
        let h = self.history.entry(applet).or_default();
        h.push_back(now);
        let cutoff = now - self.window;
        while h.front().is_some_and(|t| *t < cutoff) {
            h.pop_front();
        }
        if h.len() > self.max_executions {
            self.flagged.insert(applet);
            RuntimeVerdict::LoopSuspected
        } else {
            RuntimeVerdict::Ok
        }
    }

    /// Applets flagged so far.
    pub fn flagged(&self) -> impl Iterator<Item = &AppletId> {
        self.flagged.iter()
    }

    /// Has this applet been flagged?
    pub fn is_flagged(&self, applet: AppletId) -> bool {
        self.flagged.contains(&applet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::applet::{ActionRef, TriggerRef};
    use tap_protocol::{FieldMap, UserId};

    fn applet(id: u32, owner: &str, tsvc: &str, trig: &str, asvc: &str, act: &str) -> Applet {
        Applet::new(
            AppletId(id),
            format!("applet{id}"),
            UserId::new(owner),
            TriggerRef {
                service: ServiceSlug::new(tsvc),
                trigger: TriggerSlug::new(trig),
                fields: FieldMap::new(),
            },
            ActionRef {
                service: ServiceSlug::new(asvc),
                action: ActionSlug::new(act),
                fields: FieldMap::new(),
            },
        )
    }

    fn rule(asvc: &str, act: &str, tsvc: &str, trig: &str) -> FeedRule {
        FeedRule {
            action_service: ServiceSlug::new(asvc),
            action: ActionSlug::new(act),
            trigger_service: ServiceSlug::new(tsvc),
            trigger: TriggerSlug::new(trig),
        }
    }

    #[test]
    fn two_applet_explicit_loop_is_found() {
        // A: if email then send email  /  B: if email then send email — a
        // classic self-amplifying pair on one service.
        let mut d = StaticLoopDetector::new();
        d.declare_feed(rule("gmail", "send_an_email", "gmail", "any_new_email"));
        let a = applet(1, "u", "gmail", "any_new_email", "gmail", "send_an_email");
        let cycles = d.find_cycles(&[a]);
        assert_eq!(cycles, vec![vec![AppletId(1)]]); // self-loop
    }

    #[test]
    fn independent_self_loops_are_reported_separately() {
        // Each applet's action feeds its own trigger: two one-applet loops,
        // not one merged component.
        let mut d = StaticLoopDetector::new();
        d.declare_feed(rule("svc_b", "do_b", "svc_a", "trig_a"));
        d.declare_feed(rule("svc_a", "do_a", "svc_b", "trig_b"));
        let a1 = applet(1, "u", "svc_a", "trig_a", "svc_b", "do_b");
        let a2 = applet(2, "u", "svc_b", "trig_b", "svc_a", "do_a");
        let cycles = d.find_cycles(&[a1, a2]);
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn proper_two_node_cycle() {
        let mut d = StaticLoopDetector::new();
        // a1 action feeds a2's trigger; a2 action feeds a1's trigger.
        d.declare_feed(rule("svc_x", "do_x", "svc_b", "trig_b"));
        d.declare_feed(rule("svc_y", "do_y", "svc_a", "trig_a"));
        let a1 = applet(1, "u", "svc_a", "trig_a", "svc_x", "do_x");
        let a2 = applet(2, "u", "svc_b", "trig_b", "svc_y", "do_y");
        let cycles = d.find_cycles(&[a1, a2]);
        assert_eq!(cycles, vec![vec![AppletId(1), AppletId(2)]]);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        let mut d = StaticLoopDetector::new();
        d.declare_feed(rule("svc_x", "do_x", "svc_b", "trig_b"));
        let a1 = applet(1, "u", "svc_a", "trig_a", "svc_x", "do_x");
        let a2 = applet(2, "u", "svc_b", "trig_b", "svc_z", "do_z");
        assert!(d.find_cycles(&[a1, a2]).is_empty());
    }

    #[test]
    fn implicit_coupling_invisible_until_declared() {
        // The paper's implicit loop: applet "email → add row" + the
        // spreadsheet notification feature (row → email). IFTTT cannot see
        // the second edge; declaring it makes the loop visible.
        let a = applet(1, "u", "gmail", "any_new_email", "google_sheets", "add_row");
        let mut d = StaticLoopDetector::new();
        assert!(
            d.find_cycles(std::slice::from_ref(&a)).is_empty(),
            "invisible without the rule"
        );
        d.declare_feed(rule("google_sheets", "add_row", "gmail", "any_new_email"));
        assert_eq!(d.find_cycles(&[a]).len(), 1);
    }

    #[test]
    fn different_owners_do_not_chain() {
        let mut d = StaticLoopDetector::new();
        d.declare_feed(rule("gmail", "send_an_email", "gmail", "any_new_email"));
        let a1 = applet(
            1,
            "alice",
            "gmail",
            "any_new_email",
            "gmail",
            "send_an_email",
        );
        let a2 = applet(2, "bob", "gmail", "any_new_email", "gmail", "send_an_email");
        // Each is a self-loop for its own account, but there is no
        // alice→bob edge.
        let cycles = d.find_cycles(&[a1, a2]);
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn runtime_detector_flags_rapid_fire() {
        let mut d = RuntimeLoopDetector::new(5, SimDuration::from_secs(60));
        let id = AppletId(9);
        for i in 0..5 {
            assert_eq!(d.record(id, SimTime::from_secs(i)), RuntimeVerdict::Ok);
        }
        assert_eq!(
            d.record(id, SimTime::from_secs(5)),
            RuntimeVerdict::LoopSuspected
        );
        assert!(d.is_flagged(id));
    }

    #[test]
    fn runtime_detector_window_slides() {
        let mut d = RuntimeLoopDetector::new(2, SimDuration::from_secs(10));
        let id = AppletId(1);
        assert_eq!(d.record(id, SimTime::from_secs(0)), RuntimeVerdict::Ok);
        assert_eq!(d.record(id, SimTime::from_secs(5)), RuntimeVerdict::Ok);
        // Old executions age out: this is only the 2nd in the window.
        assert_eq!(d.record(id, SimTime::from_secs(20)), RuntimeVerdict::Ok);
        assert!(!d.is_flagged(id));
    }

    #[test]
    fn runtime_detector_separates_applets() {
        let mut d = RuntimeLoopDetector::new(1, SimDuration::from_secs(100));
        assert_eq!(
            d.record(AppletId(1), SimTime::from_secs(0)),
            RuntimeVerdict::Ok
        );
        assert_eq!(
            d.record(AppletId(2), SimTime::from_secs(0)),
            RuntimeVerdict::Ok
        );
        assert_eq!(
            d.record(AppletId(1), SimTime::from_secs(1)),
            RuntimeVerdict::LoopSuspected
        );
        assert!(!d.is_flagged(AppletId(2)));
    }
}
