//! Conditions — the "queries and conditions" feature the paper's
//! conclusion names as future work ("We plan to study future IFTTT
//! features such as queries and conditions \[25\]").
//!
//! A [`Condition`] is a predicate over a trigger event's ingredients,
//! evaluated by the engine between receiving the event and dispatching the
//! action. Conditions compose with `all`/`any`/`not`, so an applet like
//! *"when an email arrives AND the subject contains 'alert' AND it is not
//! from noreply@, blink the light"* becomes expressible.

use serde::{Deserialize, Serialize};
use tap_protocol::FieldMap;

/// A predicate over trigger-event ingredients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Condition {
    /// Always true (the default for ordinary applets).
    #[default]
    Always,
    /// The ingredient exists (with any value).
    Has { key: String },
    /// The ingredient equals the value (case-sensitive).
    Equals { key: String, value: String },
    /// The ingredient contains the substring (case-insensitive).
    Contains { key: String, needle: String },
    /// The ingredient parses as a number and compares `>=` the bound.
    AtLeast { key: String, bound: f64 },
    /// The ingredient parses as a number and compares `<=` the bound.
    AtMost { key: String, bound: f64 },
    /// Every sub-condition holds.
    All(Vec<Condition>),
    /// At least one sub-condition holds.
    Any(Vec<Condition>),
    /// The sub-condition does not hold.
    Not(Box<Condition>),
}

impl Condition {
    /// Evaluate against an event's ingredients.
    pub fn eval(&self, ingredients: &FieldMap) -> bool {
        match self {
            Condition::Always => true,
            Condition::Has { key } => ingredients.contains_key(key),
            Condition::Equals { key, value } => ingredients.get(key).is_some_and(|v| v == value),
            Condition::Contains { key, needle } => ingredients
                .get(key)
                .is_some_and(|v| v.to_lowercase().contains(&needle.to_lowercase())),
            Condition::AtLeast { key, bound } => ingredients
                .get(key)
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|n| n >= *bound),
            Condition::AtMost { key, bound } => ingredients
                .get(key)
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|n| n <= *bound),
            Condition::All(cs) => cs.iter().all(|c| c.eval(ingredients)),
            Condition::Any(cs) => cs.iter().any(|c| c.eval(ingredients)),
            Condition::Not(c) => !c.eval(ingredients),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Condition) -> Condition {
        match self {
            Condition::All(mut cs) => {
                cs.push(other);
                Condition::All(cs)
            }
            c => Condition::All(vec![c, other]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ing(pairs: &[(&str, &str)]) -> FieldMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn primitives_evaluate() {
        let i = ing(&[("subject", "ALERT: disk full"), ("count", "3")]);
        assert!(Condition::Always.eval(&i));
        assert!(Condition::Has {
            key: "subject".into()
        }
        .eval(&i));
        assert!(!Condition::Has {
            key: "missing".into()
        }
        .eval(&i));
        assert!(Condition::Equals {
            key: "count".into(),
            value: "3".into()
        }
        .eval(&i));
        assert!(!Condition::Equals {
            key: "count".into(),
            value: "4".into()
        }
        .eval(&i));
        assert!(Condition::Contains {
            key: "subject".into(),
            needle: "alert".into()
        }
        .eval(&i));
        assert!(Condition::AtLeast {
            key: "count".into(),
            bound: 3.0
        }
        .eval(&i));
        assert!(!Condition::AtLeast {
            key: "count".into(),
            bound: 3.5
        }
        .eval(&i));
        assert!(Condition::AtMost {
            key: "count".into(),
            bound: 3.0
        }
        .eval(&i));
    }

    #[test]
    fn non_numeric_comparisons_are_false() {
        let i = ing(&[("count", "three")]);
        assert!(!Condition::AtLeast {
            key: "count".into(),
            bound: 0.0
        }
        .eval(&i));
        assert!(!Condition::AtMost {
            key: "count".into(),
            bound: 9.0
        }
        .eval(&i));
    }

    #[test]
    fn combinators_compose() {
        let i = ing(&[("subject", "alert"), ("from", "ops@example.org")]);
        let c = Condition::Contains {
            key: "subject".into(),
            needle: "alert".into(),
        }
        .and(Condition::Not(Box::new(Condition::Contains {
            key: "from".into(),
            needle: "noreply".into(),
        })));
        assert!(c.eval(&i));
        let i2 = ing(&[("subject", "alert"), ("from", "noreply@x")]);
        assert!(!c.eval(&i2));
        let any = Condition::Any(vec![
            Condition::Equals {
                key: "from".into(),
                value: "boss@x".into(),
            },
            Condition::Contains {
                key: "subject".into(),
                needle: "alert".into(),
            },
        ]);
        assert!(any.eval(&i));
    }

    #[test]
    fn empty_all_is_true_empty_any_is_false() {
        let i = FieldMap::new();
        assert!(Condition::All(vec![]).eval(&i));
        assert!(!Condition::Any(vec![]).eval(&i));
    }

    #[test]
    fn serde_roundtrip() {
        let c = Condition::All(vec![
            Condition::Has { key: "a".into() },
            Condition::Not(Box::new(Condition::Always)),
        ]);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Condition>(&json).unwrap(), c);
    }
}
