//! Engine instrumentation hooks.
//!
//! A fleet-scale run wants cheap, allocation-free counters out of the poll
//! scheduler and the dispatcher without coupling the engine to any metrics
//! crate. [`EngineObserver`] is that seam: the engine calls it at the four
//! points a workload study cares about, and the implementor (e.g.
//! `fleet::metrics::FleetMetrics`) aggregates however it likes. All methods
//! default to no-ops, and an engine without an observer pays only an
//! `Option` check.

use simnet::time::SimTime;

/// Callbacks fired by [`TapEngine`](crate::TapEngine) at its hot spots.
///
/// Implementations must be `Send + Sync`: fleet runs share one observer
/// across every engine instance of a shard, and shards run on scoped
/// threads.
pub trait EngineObserver: Send + Sync + std::fmt::Debug {
    /// A trigger poll request left the engine.
    fn poll_sent(&self, now: SimTime) {
        let _ = now;
    }

    /// A poll response yielded `new_events` previously unseen events
    /// (zero for empty or all-duplicate responses).
    fn poll_result(&self, new_events: u64, now: SimTime) {
        let _ = (new_events, now);
    }

    /// A coalesced batch poll request left the engine carrying `members`
    /// subscription entries (`members >= 2`; singleton groups go through
    /// the plain poll path and fire [`EngineObserver::poll_sent`] only).
    fn poll_batched(&self, members: u64, now: SimTime) {
        let _ = (members, now);
    }

    /// A dispatch job was enqueued; `queue_depth` is the number of jobs
    /// outstanding (including this one) right after the enqueue.
    fn dispatch_enqueued(&self, queue_depth: usize, now: SimTime) {
        let _ = (queue_depth, now);
    }

    /// An action request concluded (`ok` = 2xx response, `!ok` = gave up
    /// after the configured retries).
    fn action_finished(&self, ok: bool, now: SimTime) {
        let _ = (ok, now);
    }

    /// A poll (or a batch member) came back failed: non-2xx, timeout, or an
    /// unparseable body.
    fn poll_failed(&self, now: SimTime) {
        let _ = now;
    }

    /// A failed poll was rescheduled on the backoff schedule instead of
    /// waiting a full cadence gap.
    fn poll_retried(&self, now: SimTime) {
        let _ = now;
    }

    /// A poll was shed by an open circuit breaker (deferred to the next
    /// cadence cycle).
    fn poll_shed(&self, now: SimTime) {
        let _ = now;
    }

    /// A per-service circuit breaker tripped open (including a failed
    /// half-open probe re-opening it).
    fn breaker_tripped(&self, now: SimTime) {
        let _ = now;
    }

    /// A failed action dispatch was re-sent on the backoff schedule.
    fn action_retried(&self, now: SimTime) {
        let _ = now;
    }

    /// An action dispatch was permanently abandoned (fires together with
    /// `action_finished(false)`).
    fn action_dead_lettered(&self, now: SimTime) {
        let _ = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct CountingObserver {
        polls: AtomicU64,
        actions: AtomicU64,
    }

    impl EngineObserver for CountingObserver {
        fn poll_sent(&self, _now: SimTime) {
            self.polls.fetch_add(1, Ordering::Relaxed);
        }
        fn action_finished(&self, ok: bool, _now: SimTime) {
            if ok {
                self.actions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn default_methods_are_noops() {
        #[derive(Debug)]
        struct Inert;
        impl EngineObserver for Inert {}
        let o = Inert;
        o.poll_sent(SimTime::ZERO);
        o.poll_result(3, SimTime::ZERO);
        o.poll_batched(2, SimTime::ZERO);
        o.dispatch_enqueued(1, SimTime::ZERO);
        o.action_finished(true, SimTime::ZERO);
    }

    #[test]
    fn observer_is_object_safe_and_countable() {
        let o: Box<dyn EngineObserver> = Box::<CountingObserver>::default();
        o.poll_sent(SimTime::ZERO);
        o.poll_sent(SimTime::ZERO);
        o.action_finished(true, SimTime::ZERO);
        o.action_finished(false, SimTime::ZERO);
    }
}
