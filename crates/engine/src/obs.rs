//! The unified typed instrumentation API.
//!
//! Every observable fact the engine used to book three times — once into
//! [`EngineStats`] counters, once through the old
//! 11-method observer trait, once as a `format!`ted trace line — is now a
//! single [`ObsEvent`] value emitted at the hot spot. The engine applies
//! the event to its own stats via [`EngineStats::apply`] and forwards the
//! same value to an optional [`ObsSink`]; a new counter is therefore added
//! in exactly one place (the [`ObsEvent::for_each_stat`] mapping).
//!
//! Events are small `Copy` structs carrying interned
//! [`tap_protocol::Symbol`] ids and [`SimTime`] stamps — no
//! per-event allocation, so a sink is affordable at fleet scale where the
//! string-building `TraceLog` has to stay disabled. The
//! [`FlightRecorder`] rides on that: a bounded, optionally sampled ring
//! buffer of raw events, cheap enough to leave attached to a 100k-user
//! run.
//!
//! Downstream consumers:
//! * `fleet::FleetMetrics` implements [`ObsSink`] and routes the same
//!   [`Stat`] mapping into its mergeable counters, so engine stats and
//!   fleet metrics can never drift apart;
//! * `fleet::AttributionRecorder` decomposes each delivered activation
//!   into latency stages using the `dispatch` ids that thread
//!   [`ObsEvent::DispatchEnqueued`] → [`ObsEvent::ActionSent`] →
//!   [`ObsEvent::ActionFinished`];
//! * the testbed attaches a [`FlightRecorder`] for post-hoc timeline
//!   digging without enabling the trace log.

use crate::applet::AppletId;
use crate::engine::EngineStats;
use simnet::time::SimTime;
use std::collections::VecDeque;
use std::sync::Mutex;
use tap_protocol::{StepKind, Symbol};

/// One typed instrumentation event, emitted by the engine at a hot spot.
///
/// Field conventions:
/// * `at` — the virtual instant the event was emitted;
/// * `applet` — the subscription involved, where one is identifiable;
/// * `service` — the engine-interned symbol of the partner service (only
///   meaningful to sinks sharing the engine's interner; counting sinks
///   ignore it);
/// * `dispatch` — the engine's dispatch-job sequence number, linking the
///   enqueue, the action attempts, and the final outcome of one
///   activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// A single trigger poll request left the engine.
    PollSent {
        /// Polled subscription.
        applet: AppletId,
        /// Trigger service polled.
        service: Symbol,
        /// Emission time.
        at: SimTime,
    },
    /// A coalesced batch poll request left the engine carrying `members`
    /// subscription entries (`members >= 2`; each member also counts as
    /// one subscription poll).
    BatchPollSent {
        /// Trigger service polled.
        service: Symbol,
        /// Entries riding this request.
        members: u64,
        /// Emission time.
        at: SimTime,
    },
    /// `polls` subscription polls came back with the canonical empty body
    /// (no parse, no events).
    PollEmpty {
        /// Subscription polls answered empty (1, or a batch's member count).
        polls: u64,
        /// Response time.
        at: SimTime,
    },
    /// A poll response for one subscription was parsed and deduplicated:
    /// `received` events on the wire, `fresh` of them previously unseen.
    /// `fresh == 0` counts as an empty poll.
    PollDelivered {
        /// Subscription the response belongs to.
        applet: AppletId,
        /// Events on the wire (duplicates included).
        received: u64,
        /// Previously unseen events (each will be dispatched).
        fresh: u64,
        /// When the poll request left the engine.
        sent_at: SimTime,
        /// Response time.
        at: SimTime,
    },
    /// A poll response arrived for a subscription that no longer exists;
    /// its `received` events are dropped.
    PollDiscarded {
        /// Events on the wire that were dropped.
        received: u64,
        /// Response time.
        at: SimTime,
    },
    /// `polls` subscription polls failed: non-2xx, timeout, or an
    /// unparseable body.
    PollFailed {
        /// Subscription polls that failed (1, or a batch's member count).
        polls: u64,
        /// Failure time.
        at: SimTime,
    },
    /// A failed poll was pulled forward onto the backoff schedule instead
    /// of waiting a full cadence gap.
    PollRetried {
        /// Subscription being retried.
        applet: AppletId,
        /// Scheduling time.
        at: SimTime,
    },
    /// A poll was shed by an open circuit breaker (deferred to the next
    /// cadence cycle).
    PollShed {
        /// Subscription that was shed.
        applet: AppletId,
        /// Shed time.
        at: SimTime,
    },
    /// A per-service circuit breaker tripped open (including a failed
    /// half-open probe re-opening it).
    BreakerTripped {
        /// Service whose breaker opened.
        service: Symbol,
        /// Trip time.
        at: SimTime,
    },
    /// A failed batch poll demoted its group to singleton polls for a
    /// cycle.
    BatchDegraded {
        /// Trigger service of the degraded group.
        service: Symbol,
        /// Degradation time.
        at: SimTime,
    },
    /// A dispatch job was enqueued for one fresh trigger event.
    DispatchEnqueued {
        /// Subscription that produced the event.
        applet: AppletId,
        /// Dispatch-job sequence number (links later action events).
        dispatch: u64,
        /// Jobs outstanding right after the enqueue (this one included).
        depth: u64,
        /// When the poll that surfaced the event left the engine.
        poll_sent_at: SimTime,
        /// Enqueue time.
        at: SimTime,
    },
    /// An action request left the engine (`attempt` is 1-based; retries
    /// re-enter here with higher attempts).
    ActionSent {
        /// Subscription executing.
        applet: AppletId,
        /// Dispatch job this attempt belongs to.
        dispatch: u64,
        /// 1-based attempt number.
        attempt: u32,
        /// Emission time.
        at: SimTime,
    },
    /// An action concluded (`ok` = 2xx; `!ok` fires together with
    /// [`ObsEvent::ActionDeadLettered`]).
    ActionFinished {
        /// Subscription executed.
        applet: AppletId,
        /// Dispatch job that concluded.
        dispatch: u64,
        /// Whether the service acknowledged success.
        ok: bool,
        /// Conclusion time.
        at: SimTime,
    },
    /// A failed action dispatch was re-sent on the backoff schedule.
    ActionRetried {
        /// Subscription being retried.
        applet: AppletId,
        /// Dispatch job being retried.
        dispatch: u64,
        /// Scheduling time.
        at: SimTime,
    },
    /// An action dispatch was permanently abandoned: retries exhausted or
    /// a terminal client error.
    ActionDeadLettered {
        /// Subscription abandoned.
        applet: AppletId,
        /// Dispatch job abandoned.
        dispatch: u64,
        /// Abandon time.
        at: SimTime,
    },
    /// A dispatch was suppressed by its applet's condition.
    ActionFiltered {
        /// Subscription filtered.
        applet: AppletId,
        /// Dispatch job dropped.
        dispatch: u64,
        /// Filter time.
        at: SimTime,
    },
    /// A pre-dispatch query left the engine.
    QuerySent {
        /// Subscription querying.
        applet: AppletId,
        /// Dispatch job waiting on the query.
        dispatch: u64,
        /// Emission time.
        at: SimTime,
    },
    /// A pre-dispatch query failed (treated as empty results).
    QueryFailed {
        /// Dispatch job whose query failed.
        dispatch: u64,
        /// Failure time.
        at: SimTime,
    },
    /// A realtime-API hint arrived.
    HintReceived {
        /// Arrival time.
        at: SimTime,
    },
    /// A hint from an allowlisted service scheduled prompt polls.
    HintHonored {
        /// Processing time.
        at: SimTime,
    },
    /// A hint was acknowledged and ignored (service not allowlisted).
    HintIgnored {
        /// Arrival time.
        at: SimTime,
    },
    /// A realtime notification body failed to parse (neither the versioned
    /// nor the legacy shape) or spoke an unsupported version; answered
    /// with a 400.
    HintMalformed {
        /// Arrival time.
        at: SimTime,
    },
    /// An out-of-cadence poll armed by a realtime notification left the
    /// engine (also counts as an ordinary [`ObsEvent::PollSent`], emitted
    /// separately at the same site).
    RealtimePollSent {
        /// Subscription polled ahead of cadence.
        applet: AppletId,
        /// Emission time.
        at: SimTime,
    },
    /// A realtime notification for a subscription was absorbed: an
    /// immediate poll is already outstanding, the debounce window is
    /// open, or a cadence poll is in flight and will observe the data.
    RealtimeSuppressed {
        /// Subscription whose hint was absorbed.
        applet: AppletId,
        /// Suppression time.
        at: SimTime,
    },
    /// The runtime loop detector flagged an applet.
    LoopFlagged {
        /// Flagged subscription.
        applet: AppletId,
        /// Flag time.
        at: SimTime,
    },
    /// A multi-step DAG run started for one fresh trigger event. The run
    /// shares the dispatch-id space with single-step jobs (its high bit
    /// set), so attribution chains stay collision-free.
    DagRunStarted {
        /// Subscription whose DAG is executing.
        applet: AppletId,
        /// Tagged dispatch id of the run.
        dispatch: u64,
        /// Start time.
        at: SimTime,
    },
    /// One DAG node finished executing (synchronously for filter and
    /// transform nodes; on the final response for query and action nodes).
    DagNodeExecuted {
        /// Subscription whose DAG is executing.
        applet: AppletId,
        /// Tagged dispatch id of the run.
        dispatch: u64,
        /// Node index within the DAG.
        node: u16,
        /// What kind of step ran.
        kind: StepKind,
        /// Completion time.
        at: SimTime,
    },
    /// A failed DAG query or action node was re-sent on the backoff
    /// schedule (distinct from the single-step `ActionRetried`, which DAG
    /// action nodes also emit for attribution).
    DagNodeRetried {
        /// Subscription whose DAG is executing.
        applet: AppletId,
        /// Tagged dispatch id of the run.
        dispatch: u64,
        /// Node index within the DAG.
        node: u16,
        /// Scheduling time.
        at: SimTime,
    },
}

/// The counters of [`EngineStats`], named. [`ObsEvent::for_each_stat`]
/// maps events onto `(Stat, increment)` pairs; both the engine's own
/// stats and `fleet::FleetMetrics` consume that single mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// `polls_sent`
    PollsSent,
    /// `polls_empty`
    PollsEmpty,
    /// `polls_failed`
    PollsFailed,
    /// `events_received`
    EventsReceived,
    /// `events_new`
    EventsNew,
    /// `actions_sent`
    ActionsSent,
    /// `actions_ok`
    ActionsOk,
    /// `actions_failed`
    ActionsFailed,
    /// `hints_received`
    HintsReceived,
    /// `hints_honored`
    HintsHonored,
    /// `hints_ignored`
    HintsIgnored,
    /// `loops_flagged`
    LoopsFlagged,
    /// `actions_filtered`
    ActionsFiltered,
    /// `queries_sent`
    QueriesSent,
    /// `queries_failed`
    QueriesFailed,
    /// `actions_retried`
    ActionsRetried,
    /// `polls_batched`
    PollsBatched,
    /// `polls_coalesced`
    PollsCoalesced,
    /// `polls_retried`
    PollsRetried,
    /// `polls_shed`
    PollsShed,
    /// `breaker_trips`
    BreakerTrips,
    /// `dead_letters`
    DeadLetters,
    /// `batch_fallbacks`
    BatchFallbacks,
    /// `realtime_notifications`
    RealtimeNotifications,
    /// `realtime_polls`
    RealtimePolls,
    /// `realtime_suppressed`
    RealtimeSuppressed,
    /// `realtime_malformed`
    RealtimeMalformed,
    /// `dag_runs`
    DagRuns,
    /// `dag_nodes_filter`
    DagNodesFilter,
    /// `dag_nodes_transform`
    DagNodesTransform,
    /// `dag_nodes_query`
    DagNodesQuery,
    /// `dag_nodes_action`
    DagNodesAction,
    /// `dag_node_retries`
    DagNodeRetries,
}

impl ObsEvent {
    /// The virtual instant this event was emitted.
    pub fn at(&self) -> SimTime {
        match *self {
            ObsEvent::PollSent { at, .. }
            | ObsEvent::BatchPollSent { at, .. }
            | ObsEvent::PollEmpty { at, .. }
            | ObsEvent::PollDelivered { at, .. }
            | ObsEvent::PollDiscarded { at, .. }
            | ObsEvent::PollFailed { at, .. }
            | ObsEvent::PollRetried { at, .. }
            | ObsEvent::PollShed { at, .. }
            | ObsEvent::BreakerTripped { at, .. }
            | ObsEvent::BatchDegraded { at, .. }
            | ObsEvent::DispatchEnqueued { at, .. }
            | ObsEvent::ActionSent { at, .. }
            | ObsEvent::ActionFinished { at, .. }
            | ObsEvent::ActionRetried { at, .. }
            | ObsEvent::ActionDeadLettered { at, .. }
            | ObsEvent::ActionFiltered { at, .. }
            | ObsEvent::QuerySent { at, .. }
            | ObsEvent::QueryFailed { at, .. }
            | ObsEvent::HintReceived { at }
            | ObsEvent::HintHonored { at }
            | ObsEvent::HintIgnored { at }
            | ObsEvent::HintMalformed { at }
            | ObsEvent::RealtimePollSent { at, .. }
            | ObsEvent::RealtimeSuppressed { at, .. }
            | ObsEvent::LoopFlagged { at, .. }
            | ObsEvent::DagRunStarted { at, .. }
            | ObsEvent::DagNodeExecuted { at, .. }
            | ObsEvent::DagNodeRetried { at, .. } => at,
        }
    }

    /// The counter increments this event implies — the one place the
    /// event → counter mapping lives. `f` is called once per affected
    /// [`Stat`] with the amount to add.
    pub fn for_each_stat(&self, mut f: impl FnMut(Stat, u64)) {
        match *self {
            ObsEvent::PollSent { .. } => f(Stat::PollsSent, 1),
            ObsEvent::BatchPollSent { members, .. } => {
                // Each member still counts as one subscription poll; the
                // batch and coalesced counters record what the fan-in
                // saved (HTTP round trips = polls_sent - polls_coalesced).
                f(Stat::PollsSent, members);
                f(Stat::PollsBatched, 1);
                f(Stat::PollsCoalesced, members.saturating_sub(1));
            }
            ObsEvent::PollEmpty { polls, .. } => f(Stat::PollsEmpty, polls),
            ObsEvent::PollDelivered {
                received, fresh, ..
            } => {
                f(Stat::EventsReceived, received);
                if fresh == 0 {
                    f(Stat::PollsEmpty, 1);
                } else {
                    f(Stat::EventsNew, fresh);
                }
            }
            ObsEvent::PollDiscarded { received, .. } => f(Stat::EventsReceived, received),
            ObsEvent::PollFailed { polls, .. } => f(Stat::PollsFailed, polls),
            ObsEvent::PollRetried { .. } => f(Stat::PollsRetried, 1),
            ObsEvent::PollShed { .. } => f(Stat::PollsShed, 1),
            ObsEvent::BreakerTripped { .. } => f(Stat::BreakerTrips, 1),
            ObsEvent::BatchDegraded { .. } => f(Stat::BatchFallbacks, 1),
            ObsEvent::DispatchEnqueued { .. } => {}
            ObsEvent::ActionSent { .. } => f(Stat::ActionsSent, 1),
            ObsEvent::ActionFinished { ok, .. } => {
                if ok {
                    f(Stat::ActionsOk, 1);
                } else {
                    f(Stat::ActionsFailed, 1);
                }
            }
            ObsEvent::ActionRetried { .. } => f(Stat::ActionsRetried, 1),
            ObsEvent::ActionDeadLettered { .. } => f(Stat::DeadLetters, 1),
            ObsEvent::ActionFiltered { .. } => f(Stat::ActionsFiltered, 1),
            ObsEvent::QuerySent { .. } => f(Stat::QueriesSent, 1),
            ObsEvent::QueryFailed { .. } => f(Stat::QueriesFailed, 1),
            ObsEvent::HintReceived { .. } => f(Stat::HintsReceived, 1),
            ObsEvent::HintHonored { .. } => {
                // An honored hint *is* a realtime notification accepted
                // into the immediate-poll scheduler; both the legacy hint
                // counter and the realtime counter record it.
                f(Stat::HintsHonored, 1);
                f(Stat::RealtimeNotifications, 1);
            }
            ObsEvent::HintIgnored { .. } => f(Stat::HintsIgnored, 1),
            ObsEvent::HintMalformed { .. } => f(Stat::RealtimeMalformed, 1),
            ObsEvent::RealtimePollSent { .. } => f(Stat::RealtimePolls, 1),
            ObsEvent::RealtimeSuppressed { .. } => f(Stat::RealtimeSuppressed, 1),
            ObsEvent::LoopFlagged { .. } => f(Stat::LoopsFlagged, 1),
            ObsEvent::DagRunStarted { .. } => f(Stat::DagRuns, 1),
            ObsEvent::DagNodeExecuted { kind, .. } => f(
                match kind {
                    StepKind::Filter => Stat::DagNodesFilter,
                    StepKind::Transform => Stat::DagNodesTransform,
                    StepKind::Query => Stat::DagNodesQuery,
                    StepKind::Action => Stat::DagNodesAction,
                },
                1,
            ),
            ObsEvent::DagNodeRetried { .. } => f(Stat::DagNodeRetries, 1),
        }
    }
}

impl EngineStats {
    /// Apply one event's counter increments. The engine's stats are
    /// maintained exclusively through this — there are no ad-hoc `+= 1`
    /// sites left — so any [`ObsSink`] replaying the event stream through
    /// a fresh `EngineStats` reproduces the engine's own totals exactly.
    pub fn apply(&mut self, ev: &ObsEvent) {
        ev.for_each_stat(|stat, n| *self.slot(stat) += n);
    }

    /// The counter a [`Stat`] names.
    pub fn slot(&mut self, stat: Stat) -> &mut u64 {
        match stat {
            Stat::PollsSent => &mut self.polls_sent,
            Stat::PollsEmpty => &mut self.polls_empty,
            Stat::PollsFailed => &mut self.polls_failed,
            Stat::EventsReceived => &mut self.events_received,
            Stat::EventsNew => &mut self.events_new,
            Stat::ActionsSent => &mut self.actions_sent,
            Stat::ActionsOk => &mut self.actions_ok,
            Stat::ActionsFailed => &mut self.actions_failed,
            Stat::HintsReceived => &mut self.hints_received,
            Stat::HintsHonored => &mut self.hints_honored,
            Stat::HintsIgnored => &mut self.hints_ignored,
            Stat::LoopsFlagged => &mut self.loops_flagged,
            Stat::ActionsFiltered => &mut self.actions_filtered,
            Stat::QueriesSent => &mut self.queries_sent,
            Stat::QueriesFailed => &mut self.queries_failed,
            Stat::ActionsRetried => &mut self.actions_retried,
            Stat::PollsBatched => &mut self.polls_batched,
            Stat::PollsCoalesced => &mut self.polls_coalesced,
            Stat::PollsRetried => &mut self.polls_retried,
            Stat::PollsShed => &mut self.polls_shed,
            Stat::BreakerTrips => &mut self.breaker_trips,
            Stat::DeadLetters => &mut self.dead_letters,
            Stat::BatchFallbacks => &mut self.batch_fallbacks,
            Stat::RealtimeNotifications => &mut self.realtime_notifications,
            Stat::RealtimePolls => &mut self.realtime_polls,
            Stat::RealtimeSuppressed => &mut self.realtime_suppressed,
            Stat::RealtimeMalformed => &mut self.realtime_malformed,
            Stat::DagRuns => &mut self.dag_runs,
            Stat::DagNodesFilter => &mut self.dag_nodes_filter,
            Stat::DagNodesTransform => &mut self.dag_nodes_transform,
            Stat::DagNodesQuery => &mut self.dag_nodes_query,
            Stat::DagNodesAction => &mut self.dag_nodes_action,
            Stat::DagNodeRetries => &mut self.dag_node_retries,
        }
    }
}

/// A consumer of the engine's event stream.
///
/// Implementations must be `Send + Sync`: fleet runs share one sink
/// across every engine instance of a shard, and shards run on scoped
/// threads. The single method replaces the old 11-method observer trait;
/// sinks dispatch on the [`ObsEvent`] variant instead of the engine
/// choosing a method per site.
pub trait ObsSink: Send + Sync + std::fmt::Debug {
    /// Consume one event. Called synchronously on the engine's hot path —
    /// keep it allocation-free.
    fn on_event(&self, ev: &ObsEvent);
}

#[derive(Debug, Default)]
struct FlightInner {
    ring: VecDeque<ObsEvent>,
    seen: u64,
    dropped: u64,
}

/// A bounded, optionally sampled ring buffer of raw [`ObsEvent`]s — the
/// trace you can afford to leave on at fleet scale.
///
/// Unlike the string-building `TraceLog`, recording an event is a counter
/// bump and (for kept events) a 64-byte copy into a preallocated ring;
/// the oldest events fall off the back once `capacity` is reached.
/// Sampling is deterministic (every `sample_every`-th event, counting
/// from the first), so two identical runs record identical rings.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<FlightInner>,
    capacity: usize,
    sample_every: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (unsampled).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder::sampled(capacity, 1)
    }

    /// A recorder keeping every `sample_every`-th event, up to `capacity`
    /// retained. `sample_every` is clamped to at least 1.
    pub fn sampled(capacity: usize, sample_every: u64) -> Self {
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(capacity),
                seen: 0,
                dropped: 0,
            }),
            capacity,
            sample_every: sample_every.max(1),
        }
    }

    /// Total events offered to the recorder (kept or not).
    pub fn seen(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").seen
    }

    /// Sampled-in events that later fell off the back of the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .ring
            .iter()
            .copied()
            .collect()
    }

    /// Forget everything recorded so far.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        inner.ring.clear();
        inner.seen = 0;
        inner.dropped = 0;
    }
}

impl ObsSink for FlightRecorder {
    fn on_event(&self, ev: &ObsEvent) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        inner.seen += 1;
        if !(inner.seen - 1).is_multiple_of(self.sample_every) {
            return;
        }
        if self.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn event_mapping_reproduces_the_stats_contract() {
        let mut stats = EngineStats::default();
        let sym = tap_protocol::Interner::new().intern("svc");
        let a = AppletId(7);
        for ev in [
            ObsEvent::PollSent {
                applet: a,
                service: sym,
                at: t(1),
            },
            ObsEvent::BatchPollSent {
                service: sym,
                members: 3,
                at: t(1),
            },
            ObsEvent::PollEmpty { polls: 2, at: t(2) },
            ObsEvent::PollDelivered {
                applet: a,
                received: 5,
                fresh: 2,
                sent_at: t(1),
                at: t(2),
            },
            ObsEvent::PollDelivered {
                applet: a,
                received: 4,
                fresh: 0,
                sent_at: t(1),
                at: t(2),
            },
            ObsEvent::PollDiscarded {
                received: 3,
                at: t(2),
            },
            ObsEvent::PollFailed { polls: 2, at: t(2) },
            ObsEvent::ActionFinished {
                applet: a,
                dispatch: 1,
                ok: true,
                at: t(3),
            },
            ObsEvent::ActionFinished {
                applet: a,
                dispatch: 2,
                ok: false,
                at: t(3),
            },
            ObsEvent::ActionDeadLettered {
                applet: a,
                dispatch: 2,
                at: t(3),
            },
            ObsEvent::DagRunStarted {
                applet: a,
                dispatch: 9,
                at: t(4),
            },
            ObsEvent::DagNodeExecuted {
                applet: a,
                dispatch: 9,
                node: 0,
                kind: StepKind::Filter,
                at: t(4),
            },
            ObsEvent::DagNodeExecuted {
                applet: a,
                dispatch: 9,
                node: 1,
                kind: StepKind::Transform,
                at: t(4),
            },
            ObsEvent::DagNodeExecuted {
                applet: a,
                dispatch: 9,
                node: 2,
                kind: StepKind::Query,
                at: t(4),
            },
            ObsEvent::DagNodeExecuted {
                applet: a,
                dispatch: 9,
                node: 3,
                kind: StepKind::Action,
                at: t(4),
            },
            ObsEvent::DagNodeRetried {
                applet: a,
                dispatch: 9,
                node: 3,
                at: t(4),
            },
        ] {
            stats.apply(&ev);
        }
        assert_eq!(stats.polls_sent, 4, "1 single + 3 batch members");
        assert_eq!(stats.polls_batched, 1);
        assert_eq!(stats.polls_coalesced, 2);
        assert_eq!(stats.polls_empty, 3, "2 canonical-empty + 1 all-duplicate");
        assert_eq!(stats.events_received, 12, "5 + 4 + 3 discarded");
        assert_eq!(stats.events_new, 2);
        assert_eq!(stats.polls_failed, 2);
        assert_eq!(stats.actions_ok, 1);
        assert_eq!(stats.actions_failed, 1);
        assert_eq!(stats.dead_letters, 1);
        assert_eq!(stats.dag_runs, 1);
        assert_eq!(stats.dag_nodes_filter, 1);
        assert_eq!(stats.dag_nodes_transform, 1);
        assert_eq!(stats.dag_nodes_query, 1);
        assert_eq!(stats.dag_nodes_action, 1);
        assert_eq!(stats.dag_node_retries, 1);
    }

    #[test]
    fn every_stat_slot_is_reachable() {
        // `slot` and `for_each_stat` must agree on the full counter set;
        // poking each Stat through `slot` exercises the exhaustive match.
        let mut stats = EngineStats::default();
        for stat in [
            Stat::PollsSent,
            Stat::PollsEmpty,
            Stat::PollsFailed,
            Stat::EventsReceived,
            Stat::EventsNew,
            Stat::ActionsSent,
            Stat::ActionsOk,
            Stat::ActionsFailed,
            Stat::HintsReceived,
            Stat::HintsHonored,
            Stat::HintsIgnored,
            Stat::LoopsFlagged,
            Stat::ActionsFiltered,
            Stat::QueriesSent,
            Stat::QueriesFailed,
            Stat::ActionsRetried,
            Stat::PollsBatched,
            Stat::PollsCoalesced,
            Stat::PollsRetried,
            Stat::PollsShed,
            Stat::BreakerTrips,
            Stat::DeadLetters,
            Stat::BatchFallbacks,
            Stat::RealtimeNotifications,
            Stat::RealtimePolls,
            Stat::RealtimeSuppressed,
            Stat::RealtimeMalformed,
            Stat::DagRuns,
            Stat::DagNodesFilter,
            Stat::DagNodesTransform,
            Stat::DagNodesQuery,
            Stat::DagNodesAction,
            Stat::DagNodeRetries,
        ] {
            *stats.slot(stat) += 1;
        }
        let total = stats.polls_sent
            + stats.polls_empty
            + stats.polls_failed
            + stats.events_received
            + stats.events_new
            + stats.actions_sent
            + stats.actions_ok
            + stats.actions_failed
            + stats.hints_received
            + stats.hints_honored
            + stats.hints_ignored
            + stats.loops_flagged
            + stats.actions_filtered
            + stats.queries_sent
            + stats.queries_failed
            + stats.actions_retried
            + stats.polls_batched
            + stats.polls_coalesced
            + stats.polls_retried
            + stats.polls_shed
            + stats.breaker_trips
            + stats.dead_letters
            + stats.batch_fallbacks
            + stats.realtime_notifications
            + stats.realtime_polls
            + stats.realtime_suppressed
            + stats.realtime_malformed
            + stats.dag_runs
            + stats.dag_nodes_filter
            + stats.dag_nodes_transform
            + stats.dag_nodes_query
            + stats.dag_nodes_action
            + stats.dag_node_retries;
        assert_eq!(total, 33, "every field hit exactly once");
    }

    #[test]
    fn flight_recorder_is_a_bounded_ring() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.on_event(&ObsEvent::HintReceived { at: t(i) });
        }
        assert_eq!(rec.seen(), 5);
        assert_eq!(rec.dropped(), 2);
        let kept: Vec<SimTime> = rec.events().iter().map(|e| e.at()).collect();
        assert_eq!(kept, vec![t(2), t(3), t(4)], "oldest fall off the back");
        rec.clear();
        assert_eq!(rec.seen(), 0);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn sampling_is_deterministic_from_the_first_event() {
        let rec = FlightRecorder::sampled(100, 3);
        for i in 0..10u64 {
            rec.on_event(&ObsEvent::HintReceived { at: t(i) });
        }
        let kept: Vec<SimTime> = rec.events().iter().map(|e| e.at()).collect();
        assert_eq!(kept, vec![t(0), t(3), t(6), t(9)]);
        assert_eq!(rec.seen(), 10);
    }

    #[test]
    fn sink_is_object_safe() {
        let rec = std::sync::Arc::new(FlightRecorder::new(4));
        let sink: std::sync::Arc<dyn ObsSink> = rec.clone();
        sink.on_event(&ObsEvent::HintReceived { at: t(0) });
        assert_eq!(rec.events().len(), 1);
    }
}
