//! Applets: the "if A then B" automation rules.

use crate::conditions::Condition;
use serde::{Deserialize, Serialize};
use tap_protocol::{ActionSlug, FieldMap, QuerySlug, ServiceSlug, StepNode, TriggerSlug, UserId};

/// Unique applet identifier (IFTTT used six-digit numeric IDs, which is how
/// the paper's crawler enumerated the public applet space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppletId(pub u32);

/// The trigger half of an applet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerRef {
    pub service: ServiceSlug,
    pub trigger: TriggerSlug,
    #[serde(default)]
    pub fields: FieldMap,
}

/// The action half of an applet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRef {
    pub service: ServiceSlug,
    pub action: ActionSlug,
    /// Field values; `{{ingredient}}` placeholders are substituted from the
    /// trigger event at execution time.
    #[serde(default)]
    pub fields: FieldMap,
}

/// A read-only query the engine runs before dispatching the action (the
/// third primitive of IFTTT's programming model; the paper lists "queries
/// and conditions" as the features to study next).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRef {
    pub service: ServiceSlug,
    pub query: QuerySlug,
    /// Query field values (`{{ingredient}}` placeholders allowed).
    #[serde(default)]
    pub fields: FieldMap,
    /// Result keys are merged into the event ingredients as
    /// `<prefix>.<key>`, so conditions and action fields can reference them.
    pub prefix: String,
}

/// A complete applet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Applet {
    pub id: AppletId,
    pub name: String,
    /// The user account the applet runs under.
    pub owner: UserId,
    pub trigger: TriggerRef,
    pub action: ActionRef,
    /// Install count — the popularity measure of §3 (and the input to the
    /// smart-polling policy of §6).
    pub add_count: u64,
    /// Optional execution condition over trigger-event ingredients (the
    /// "queries and conditions" feature the paper lists as future work).
    #[serde(default)]
    pub condition: Condition,
    /// Read-only queries resolved before condition evaluation and action
    /// dispatch; their results join the ingredients under their prefixes.
    #[serde(default)]
    pub queries: Vec<QueryRef>,
    /// Multi-step execution DAG (Zapier-style). Empty for classic
    /// single-step applets; when non-empty, the DAG's query/action nodes
    /// run against `action.service` and the `action`/`condition`/`queries`
    /// fields above are ignored by the executor. A degenerate one-action
    /// DAG is normalized back onto the classic path at install time.
    #[serde(default)]
    pub steps: Vec<StepNode>,
}

impl Applet {
    /// Build an applet with the given id, owner and halves.
    pub fn new(
        id: AppletId,
        name: impl Into<String>,
        owner: UserId,
        trigger: TriggerRef,
        action: ActionRef,
    ) -> Self {
        Applet {
            id,
            name: name.into(),
            owner,
            trigger,
            action,
            add_count: 0,
            condition: Condition::Always,
            queries: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Attach an execution condition.
    pub fn with_condition(mut self, condition: Condition) -> Self {
        self.condition = condition;
        self
    }

    /// Attach a pre-dispatch query.
    pub fn with_query(mut self, query: QueryRef) -> Self {
        self.queries.push(query);
        self
    }

    /// Attach a multi-step execution DAG (validated at install time).
    pub fn with_steps(mut self, steps: Vec<StepNode>) -> Self {
        self.steps = steps;
        self
    }
}

/// Substitute `{{key}}` placeholders in action fields from trigger-event
/// ingredients. Unknown keys substitute to the empty string, matching the
/// forgiving behaviour of production TAP engines.
pub fn substitute_fields(fields: &FieldMap, ingredients: &FieldMap) -> FieldMap {
    fields
        .iter()
        .map(|(k, v)| (k.clone(), substitute(v, ingredients)))
        .collect()
}

fn substitute(template: &str, ingredients: &FieldMap) -> String {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        match after.find("}}") {
            Some(end) => {
                let key = after[..end].trim();
                if let Some(v) = ingredients.get(key) {
                    out.push_str(v);
                }
                rest = &after[end + 2..];
            }
            None => {
                // Unclosed placeholder: emit literally.
                out.push_str(&rest[start..]);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm(pairs: &[(&str, &str)]) -> FieldMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn substitution_replaces_known_keys() {
        let fields = fm(&[("row", "{{song}}|||{{artist}}")]);
        let ing = fm(&[("song", "Yesterday"), ("artist", "Beatles")]);
        let out = substitute_fields(&fields, &ing);
        assert_eq!(out["row"], "Yesterday|||Beatles");
    }

    #[test]
    fn unknown_keys_become_empty() {
        let fields = fm(&[("subject", "new: {{nope}}!")]);
        let out = substitute_fields(&fields, &FieldMap::new());
        assert_eq!(out["subject"], "new: !");
    }

    #[test]
    fn no_placeholders_pass_through() {
        let fields = fm(&[("color", "blue")]);
        let out = substitute_fields(&fields, &fm(&[("x", "y")]));
        assert_eq!(out["color"], "blue");
    }

    #[test]
    fn unclosed_placeholder_is_literal() {
        let fields = fm(&[("a", "oops {{broken")]);
        let out = substitute_fields(&fields, &FieldMap::new());
        assert_eq!(out["a"], "oops {{broken");
    }

    #[test]
    fn whitespace_in_keys_is_trimmed() {
        let fields = fm(&[("a", "{{ song }}")]);
        let out = substitute_fields(&fields, &fm(&[("song", "x")]));
        assert_eq!(out["a"], "x");
    }

    #[test]
    fn applet_serde_roundtrip() {
        let a = Applet::new(
            AppletId(42),
            "test",
            UserId::new("u"),
            TriggerRef {
                service: ServiceSlug::new("wemo"),
                trigger: TriggerSlug::new("switch_activated"),
                fields: FieldMap::new(),
            },
            ActionRef {
                service: ServiceSlug::new("philips_hue"),
                action: ActionSlug::new("turn_on_lights"),
                fields: FieldMap::new(),
            },
        );
        let json = serde_json::to_string(&a).unwrap();
        let back: Applet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
