//! Retry schedules and circuit breaking for the engine's outbound requests.
//!
//! The paper attributes the T2A tail to polling misses and transient
//! partner-service failures (§6); related work ranks trigger-action
//! platforms largely on delivery reliability under flaky partner APIs.
//! This module holds the pure policy types — the engine wires them into
//! its poll and action paths:
//!
//! * [`BackoffPolicy`] — capped exponential backoff with bounded jitter.
//! * [`RetryPolicy`] — an attempt budget plus a backoff schedule.
//! * [`BreakerPolicy`] / [`CircuitBreaker`] — a per-service breaker that
//!   sheds polls while a partner is persistently failing, then probes.
//!
//! Everything here is deterministic given the caller's RNG: `delay` draws
//! exactly one `f64` per call and only ever on a failure path, so a run
//! with no failures consumes no extra randomness.

use rand::Rng;
use simnet::time::{SimDuration, SimTime};
use tap_protocol::FailureClass;

/// Capped exponential backoff with bounded downward jitter.
///
/// The nominal schedule is `min(base * factor^retry, cap)` seconds — a
/// monotone non-decreasing sequence for `factor >= 1`. The sampled delay
/// is `nominal * (1 - jitter * u)` with `u` uniform in `[0, 1)`, i.e.
/// jitter only shortens a delay, by at most a `jitter` fraction, which
/// de-synchronizes retry herds without ever exceeding the cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// First retry delay in seconds.
    pub base_secs: f64,
    /// Multiplier between consecutive retries (>= 1 for a monotone schedule).
    pub factor: f64,
    /// Upper bound on the nominal delay in seconds.
    pub cap_secs: f64,
    /// Fraction of the nominal delay that jitter may remove, in `[0, 1]`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_secs: 2.0,
            factor: 2.0,
            cap_secs: 60.0,
            jitter: 0.25,
        }
    }
}

impl BackoffPolicy {
    /// The un-jittered delay before retry number `retry` (0-based), seconds.
    pub fn nominal_secs(&self, retry: u32) -> f64 {
        // powi saturates to +inf for huge exponents; min() then caps it.
        let raw = self.base_secs * self.factor.powi(retry.min(i32::MAX as u32) as i32);
        raw.min(self.cap_secs)
    }

    /// Draw the jittered delay before retry number `retry` (0-based).
    pub fn delay(&self, retry: u32, rng: &mut impl Rng) -> SimDuration {
        let nominal = self.nominal_secs(retry);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - jitter * rng.gen::<f64>();
        SimDuration::from_secs_f64((nominal * scale).max(0.0))
    }
}

/// An attempt budget plus the backoff schedule between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt; 0 disables retrying entirely.
    pub max_retries: u32,
    pub backoff: BackoffPolicy,
}

impl RetryPolicy {
    /// No retries: the first failure is terminal (the engine's historical
    /// default, and still the default config).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: BackoffPolicy::default(),
        }
    }

    /// Up to `max_retries` retries on the default backoff schedule.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff: BackoffPolicy::default(),
        }
    }

    /// Whether this policy ever retries.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// Decide whether to retry after a failure of class `class`, given that
    /// `attempts_made` attempts (>= 1) have already been sent. Client
    /// errors are terminal regardless of budget.
    pub fn should_retry(&self, attempts_made: u32, class: FailureClass) -> bool {
        class.is_retryable() && attempts_made <= self.max_retries
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing one probe.
    pub open_for: SimDuration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 5,
            open_for: SimDuration::from_secs(30),
        }
    }
}

/// Breaker position. See [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal operation; counting consecutive failures.
    #[default]
    Closed,
    /// Shedding requests until `open_for` elapses.
    Open,
    /// One probe request is in flight; everything else sheds.
    HalfOpen,
}

/// The classic three-state circuit breaker, driven by virtual time.
///
/// ```text
///            failure_threshold consecutive failures
///   Closed ──────────────────────────────────────────▶ Open
///     ▲                                                 │ open_for elapses
///     │ probe succeeds                                  ▼ (next allow() passes
///     └───────────────────────────────── HalfOpen ◀─────  as the probe)
///                     probe fails: back to Open ──▶
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
}

impl CircuitBreaker {
    pub fn new() -> Self {
        CircuitBreaker::default()
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate one outbound request. `true` means send it; `false` means shed.
    /// In `Open`, the first call after `open_for` transitions to `HalfOpen`
    /// and passes as the probe.
    pub fn allow(&mut self, now: SimTime, policy: &BreakerPolicy) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= self.opened_at + policy.open_for {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => false,
        }
    }

    /// Record a successful response: any state resets to `Closed`.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed response. Returns `true` when this failure *trips*
    /// the breaker (Closed→Open on hitting the threshold, or a failed
    /// HalfOpen probe re-opening it).
    pub fn record_failure(&mut self, now: SimTime, policy: &BreakerPolicy) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= policy.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now;
                true
            }
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_schedule_doubles_then_caps() {
        let b = BackoffPolicy::default();
        assert_eq!(b.nominal_secs(0), 2.0);
        assert_eq!(b.nominal_secs(1), 4.0);
        assert_eq!(b.nominal_secs(4), 32.0);
        assert_eq!(b.nominal_secs(5), 60.0);
        assert_eq!(b.nominal_secs(40), 60.0);
    }

    #[test]
    fn jitter_only_shortens_within_bounds() {
        let b = BackoffPolicy::default();
        let mut rng = StdRng::seed_from_u64(7);
        for retry in 0..8 {
            let nominal = b.nominal_secs(retry);
            for _ in 0..50 {
                let d = b.delay(retry, &mut rng).as_secs_f64();
                assert!(d <= nominal + 1e-9, "delay {d} above nominal {nominal}");
                assert!(
                    d >= nominal * (1.0 - b.jitter) - 1e-9,
                    "delay {d} below jitter floor"
                );
            }
        }
    }

    #[test]
    fn retry_policy_budget_and_classes() {
        let p = RetryPolicy::retries(3);
        assert!(p.should_retry(1, FailureClass::Timeout));
        assert!(p.should_retry(3, FailureClass::ServerError));
        assert!(!p.should_retry(4, FailureClass::ServerError));
        assert!(!p.should_retry(1, FailureClass::ClientError));
        assert!(!RetryPolicy::none().should_retry(1, FailureClass::Timeout));
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let pol = BreakerPolicy {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(10),
        };
        let mut b = CircuitBreaker::new();
        let t0 = SimTime::from_secs(100);
        assert!(b.allow(t0, &pol));
        assert!(!b.record_failure(t0, &pol));
        assert!(!b.record_failure(t0, &pol));
        assert!(b.record_failure(t0, &pol), "third failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Shedding while open.
        assert!(!b.allow(SimTime::from_secs(105), &pol));
        // After open_for: one probe passes, the next call sheds.
        assert!(b.allow(SimTime::from_secs(110), &pol));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(SimTime::from_secs(110), &pol));
        // Probe failure re-opens (and counts as a trip).
        assert!(b.record_failure(SimTime::from_secs(111), &pol));
        assert_eq!(b.state(), BreakerState::Open);
        // Next probe succeeds: closed again, counters reset.
        assert!(b.allow(SimTime::from_secs(130), &pol));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure(SimTime::from_secs(131), &pol));
    }
}
