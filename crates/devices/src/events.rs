//! Shared event and command vocabulary for devices and bridges.
//!
//! Devices push [`DeviceEvent`]s (state changes) to their observers; proxies
//! and vendor clouds send [`DeviceCommand`]s down to devices. Both are
//! serialized JSON so that every hop carries realistic payloads.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A state-change notification emitted by a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceEvent {
    /// Device identifier, e.g. `"wemo_switch_1"`.
    pub device: String,
    /// What happened, e.g. `"switched_on"`, `"light_on"`, `"motion"`.
    pub kind: String,
    /// The home owner on whose account the device is registered.
    pub user: String,
    /// Occurrence time in whole virtual seconds.
    pub at_secs: u64,
    /// Event-specific data (color, phrase, sensor value, …).
    #[serde(default)]
    pub data: std::collections::BTreeMap<String, String>,
}

impl DeviceEvent {
    /// Construct an event with empty data.
    pub fn new(
        device: impl Into<String>,
        kind: impl Into<String>,
        user: impl Into<String>,
        at_secs: u64,
    ) -> Self {
        DeviceEvent {
            device: device.into(),
            kind: kind.into(),
            user: user.into(),
            at_secs,
            data: Default::default(),
        }
    }

    /// Attach a data item.
    pub fn with_data(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.data.insert(k.into(), v.into());
        self
    }

    /// Serialize for a signal payload.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("serializes"))
    }

    /// Parse from a signal payload.
    pub fn from_bytes(b: &[u8]) -> Option<DeviceEvent> {
        serde_json::from_slice(b).ok()
    }
}

/// A command sent towards a device (by a proxy or vendor cloud).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCommand {
    /// Target device identifier.
    pub device: String,
    /// Operation, e.g. `"turn_on"`, `"blink"`, `"set_color"`.
    pub op: String,
    /// Operation arguments.
    #[serde(default)]
    pub args: std::collections::BTreeMap<String, String>,
}

impl DeviceCommand {
    /// Construct a command with empty arguments.
    pub fn new(device: impl Into<String>, op: impl Into<String>) -> Self {
        DeviceCommand {
            device: device.into(),
            op: op.into(),
            args: Default::default(),
        }
    }

    /// Attach an argument.
    pub fn with_arg(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.args.insert(k.into(), v.into());
        self
    }

    /// Serialize to JSON bytes.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("serializes"))
    }

    /// Parse from JSON bytes.
    pub fn from_bytes(b: &[u8]) -> Option<DeviceCommand> {
        serde_json::from_slice(b).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip() {
        let e = DeviceEvent::new("hue_lamp_1", "light_on", "author", 12).with_data("bri", "254");
        let back = DeviceEvent::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn command_roundtrip() {
        let c = DeviceCommand::new("hue_lamp_1", "set_color").with_arg("color", "blue");
        let back = DeviceCommand::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn garbage_payloads_parse_to_none() {
        assert_eq!(DeviceEvent::from_bytes(b"nope"), None);
        assert_eq!(DeviceCommand::from_bytes(b"{}"), None);
    }
}
