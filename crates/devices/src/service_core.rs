//! Shared mechanics of every partner service node.
//!
//! [`ServiceCore`] bundles the protocol endpoint, the per-subscription
//! trigger-event buffer, the subscription registry, and (optionally) the
//! realtime API client. Concrete services delegate their `on_request` to
//! [`ServiceCore::process`] and only implement what is genuinely theirs:
//! feeding trigger events from their backend and executing actions.

use bytes::Bytes;
use mem::FxHashMap;
use simnet::chaos::{ServerFault, ServerFaultPlan};
use simnet::http::Method;
use simnet::prelude::*;
use tap_protocol::auth::{RETRY_AFTER_HEADER, SERVICE_KEY_HEADER};
use tap_protocol::endpoints::{BATCH_POLL_PATH, REALTIME_NOTIFY_PATH};
use tap_protocol::oauth::AuthCode;
use tap_protocol::service::{ParsedServiceRequest, ServiceEndpoint, TriggerBuffer};
use tap_protocol::wire::{self, TriggerEvent};
use tap_protocol::{
    ActionSlug, FieldMap, Interner, ProtocolError, QuerySlug, Symbol, TriggerIdentity, TriggerSlug,
    UserId,
};

/// One learned trigger subscription.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    pub user: UserId,
    pub trigger: TriggerSlug,
    pub fields: FieldMap,
}

/// Hot-path data for one subscription, reachable through the
/// `(user, trigger)` symbol index without touching any `String`.
#[derive(Debug)]
struct RouteEntry {
    ti: TriggerIdentity,
    fields: FieldMap,
    /// Pre-serialized realtime notification body (the versioned
    /// [`wire::RealtimeNotificationV1`] for `ti` is constant, so
    /// serializing it per event would be pure waste).
    hint_body: bytes::Bytes,
    /// A notification for this subscription is outstanding: sent to the
    /// engine and not yet followed by a poll serving the subscription.
    /// Further events are buffered without notifying again, so a burst
    /// costs exactly one hint — the engine's immediate poll collects the
    /// whole burst.
    hint_outstanding: bool,
}

/// What [`ServiceCore::process`] leaves for the embedding service to do.
#[derive(Debug)]
pub enum Processed {
    /// Fully handled; reply with this response.
    Done(Response),
    /// An action request the service must execute (and then reply to
    /// `req_id`, possibly deferred).
    Action {
        user: UserId,
        action: ActionSlug,
        fields: FieldMap,
        req_id: RequestId,
    },
    /// A query the service must answer with [`ServiceEndpoint::query_ok`]
    /// (possibly deferred).
    Query {
        user: UserId,
        query: QuerySlug,
        fields: FieldMap,
        req_id: RequestId,
    },
    /// Deliberately never reply (an injected server-side timeout): the
    /// embedding service returns [`HandlerResult::Deferred`] and the
    /// requester only learns via its own timeout.
    NoReply,
}

/// Upper bound on memoized poll bodies; beyond it new bodies are simply
/// not cached (the resident set of a steady fleet sits far below this).
const PARSE_CACHE_MAX: usize = 1 << 20;

/// A previously parsed poll request, memoized by its exact body bytes.
///
/// A subscription's poll body never changes between cycles, so after one
/// full parse the steady-state cost collapses to authentication plus one
/// hash of the body. Authentication, the path, the claimed user, and
/// subscription existence are re-verified on every hit; only work derived
/// purely from the bytes is reused.
#[derive(Debug)]
enum CachedParse {
    Poll {
        path: String,
        trigger: TriggerSlug,
        body: wire::PollRequestBody,
    },
    Batch {
        body: wire::BatchPollRequestBody,
    },
}

/// The shared protocol front of a partner service.
#[derive(Debug)]
pub struct ServiceCore {
    /// Routing, auth, and OAuth provider.
    pub endpoint: ServiceEndpoint,
    /// Buffered trigger events per subscription.
    pub buffer: TriggerBuffer,
    /// Subscriptions learned from polls or registered out of band.
    pub subs: FxHashMap<TriggerIdentity, Subscription>,
    /// If set, send realtime hints to this engine node when events arrive.
    pub realtime_engine: Option<NodeId>,
    /// Count of subscription polls served (batch entries each count once).
    pub polls_served: u64,
    /// Count of batch poll requests served (each carrying ≥1 entries).
    pub batch_polls_served: u64,
    /// Count of realtime hints sent.
    pub hints_sent: u64,
    /// Count of events absorbed by an already-outstanding hint (the
    /// per-subscription dedup of the realtime client).
    pub hints_deduped: u64,
    /// Scheduled server-side fault injection; `None` = always healthy.
    pub fault_plan: Option<ServerFaultPlan>,
    /// Count of requests answered by an injected fault instead of the
    /// normal handler.
    pub faults_injected: u64,
    next_event: u64,
    /// Node-local symbol table for user/trigger ids.
    syms: Interner,
    /// `(user, trigger)` → subscriptions, in first-subscription order.
    /// [`ServiceCore::record_event`] resolves deliveries through this index
    /// instead of scanning (and string-comparing) every subscription.
    route: FxHashMap<(Symbol, Symbol), Vec<RouteEntry>>,
    /// Memoized poll parses keyed by exact request bytes.
    parse_cache: FxHashMap<Bytes, CachedParse>,
}

impl ServiceCore {
    /// Wrap a configured endpoint.
    pub fn new(endpoint: ServiceEndpoint) -> Self {
        ServiceCore {
            endpoint,
            buffer: TriggerBuffer::new(),
            subs: FxHashMap::default(),
            realtime_engine: None,
            polls_served: 0,
            batch_polls_served: 0,
            hints_sent: 0,
            hints_deduped: 0,
            fault_plan: None,
            faults_injected: 0,
            next_event: 1,
            syms: Interner::new(),
            route: FxHashMap::default(),
            parse_cache: FxHashMap::default(),
        }
    }

    /// Enable the realtime API towards `engine`.
    pub fn enable_realtime(&mut self, engine: NodeId) {
        self.realtime_engine = Some(engine);
    }

    /// Whether this service notifies an engine when trigger data arrives.
    pub fn realtime_capable(&self) -> bool {
        self.realtime_engine.is_some()
    }

    /// Register a subscription before any poll arrives (what a production
    /// service learns from the engine's initial poll at applet creation).
    pub fn subscribe(
        &mut self,
        user: UserId,
        trigger: TriggerSlug,
        fields: FieldMap,
    ) -> TriggerIdentity {
        let ti = TriggerIdentity::derive(&user, self.endpoint.slug(), &trigger, &fields);
        self.learn(&ti, &user, &trigger, &fields);
        ti
    }

    /// Insert (or refresh) a subscription and keep the symbol route index
    /// in sync. A refresh of a known identity changes nothing in the index:
    /// the identity is derived from `(user, trigger, fields)`, so those
    /// can't differ from what is already routed.
    fn learn(
        &mut self,
        ti: &TriggerIdentity,
        user: &UserId,
        trigger: &TriggerSlug,
        fields: &FieldMap,
    ) {
        // The identity is derived from (user, trigger, fields), so a known
        // identity cannot carry different routing data: a refresh is a no-op,
        // and polls (the overwhelmingly common caller) take this early exit
        // without interning or cloning anything.
        if self.subs.contains_key(ti) {
            return;
        }
        let key = (
            self.syms.intern(user.as_str()),
            self.syms.intern(trigger.as_str()),
        );
        self.subs.insert(
            ti.clone(),
            Subscription {
                user: user.clone(),
                trigger: trigger.clone(),
                fields: fields.clone(),
            },
        );
        let hint_body = wire::to_bytes(&wire::RealtimeNotificationV1::single(
            self.endpoint.slug().clone(),
            trigger.clone(),
            ti.clone(),
        ));
        self.route.entry(key).or_default().push(RouteEntry {
            ti: ti.clone(),
            fields: fields.clone(),
            hint_body,
            hint_outstanding: false,
        });
    }

    /// A poll just served `ti`: the engine has (or is fetching) everything
    /// buffered, so the subscription may notify again on its next event.
    ///
    /// Associated (not a method) so callers holding a borrow into another
    /// `ServiceCore` field — the memo fast path borrows `parse_cache` —
    /// can still clear flags through disjoint field borrows.
    fn clear_hint(
        syms: &Interner,
        route: &mut FxHashMap<(Symbol, Symbol), Vec<RouteEntry>>,
        user: &UserId,
        trigger: &TriggerSlug,
        ti: &TriggerIdentity,
    ) {
        let key = match (syms.get(user.as_str()), syms.get(trigger.as_str())) {
            (Some(u), Some(t)) => (u, t),
            _ => return,
        };
        if let Some(entries) = route.get_mut(&key) {
            for e in entries.iter_mut() {
                if e.ti == *ti {
                    e.hint_outstanding = false;
                }
            }
        }
    }

    /// Assemble a batch-poll reply body from the buffer's cached per-entry
    /// fragments, clearing each served entry's outstanding hint. Returns
    /// the JSON body and the total number of events. Byte-identical to
    /// serializing a [`wire::BatchPollResponseBody`] built from
    /// [`TriggerBuffer::latest`] vectors.
    fn serve_batch(
        syms: &Interner,
        route: &mut FxHashMap<(Symbol, Symbol), Vec<RouteEntry>>,
        buffer: &mut TriggerBuffer,
        user: &UserId,
        entries: &[wire::BatchPollEntry],
    ) -> (String, usize) {
        let mut out = String::from("{\"data\":[");
        let mut total = 0usize;
        for (i, entry) in entries.iter().enumerate() {
            Self::clear_hint(syms, route, user, &entry.trigger, &entry.trigger_identity);
            if i > 0 {
                out.push(',');
            }
            total += buffer.write_batch_result(&entry.trigger_identity, entry.limit, &mut out);
        }
        out.push_str("]}");
        (out, total)
    }

    /// The batch reply: static empty-batch bytes when no entry had events
    /// (the steady-state common case the engine recognizes unparsed).
    fn batch_reply(out: String, total: usize) -> Response {
        if total == 0 {
            Response::ok().with_body(wire::empty_batch_body())
        } else {
            Response::ok().with_body(out)
        }
    }

    /// A fresh service-unique event id.
    pub fn next_event_id(&mut self) -> String {
        let id = self.next_event;
        self.next_event += 1;
        format!("{}_ev{:08}", self.endpoint.slug(), id)
    }

    /// Record `event` for every subscription matching `trigger`, `user`,
    /// and `matches_fields`; send a realtime hint per matching subscription
    /// if enabled.
    pub fn record_event(
        &mut self,
        ctx: &mut Context<'_>,
        trigger: &TriggerSlug,
        user: &UserId,
        event: TriggerEvent,
        matches_fields: impl Fn(&FieldMap) -> bool,
    ) -> usize {
        // An un-interned user or trigger cannot have a subscription.
        let key = match (
            self.syms.get(user.as_str()),
            self.syms.get(trigger.as_str()),
        ) {
            (Some(u), Some(t)) => (u, t),
            _ => return 0,
        };
        let entries = match self.route.get_mut(&key) {
            Some(entries) => entries,
            None => return 0,
        };
        let mut matched = 0;
        for e in entries.iter_mut() {
            if !matches_fields(&e.fields) {
                continue;
            }
            matched += 1;
            self.buffer.push(&e.ti, event.clone());
            if ctx.tracing() {
                ctx.trace(
                    "service.event",
                    format!("{} {} -> {}", self.endpoint.slug(), trigger, e.ti),
                );
            }
            if let Some(engine) = self.realtime_engine {
                // Per-subscription dedup: while a notification is
                // outstanding the engine is already on its way to poll, so
                // further events just accumulate in the buffer. The flag
                // clears when a poll serves this subscription.
                if e.hint_outstanding {
                    self.hints_deduped += 1;
                    if ctx.tracing() {
                        ctx.trace(
                            "service.hint_deduped",
                            format!("{} {}", self.endpoint.slug(), e.ti),
                        );
                    }
                    continue;
                }
                e.hint_outstanding = true;
                self.hints_sent += 1;
                let req = Request::post(REALTIME_NOTIFY_PATH)
                    .with_header(SERVICE_KEY_HEADER, self.endpoint.key().0.clone())
                    .with_body(e.hint_body.clone());
                ctx.send_request(engine, req, Token(u64::MAX), RequestOpts::timeout_secs(30));
                if ctx.tracing() {
                    ctx.trace("service.hint", format!("{} {}", self.endpoint.slug(), e.ti));
                }
            }
        }
        matched
    }

    /// Handle the generic protocol surface of an inbound request.
    pub fn process(&mut self, ctx: &mut Context<'_>, req: &Request) -> Processed {
        if let Some(p) = self.inject_fault(ctx, req) {
            return p;
        }
        // Memo fast path: a poll body seen before skips endpoint routing
        // and body parsing entirely. Any verification mismatch falls
        // through to the full parse, which reproduces the exact slow-path
        // outcome (including the error response).
        if req.method == Method::Post {
            match self.parse_cache.get(&req.body) {
                Some(CachedParse::Poll {
                    path,
                    trigger,
                    body,
                }) if *path == req.path => {
                    if let Ok(user) = self.endpoint.authenticate(req) {
                        if *user == body.user && self.subs.contains_key(&body.trigger_identity) {
                            self.polls_served += 1;
                            Self::clear_hint(
                                &self.syms,
                                &mut self.route,
                                user,
                                trigger,
                                &body.trigger_identity,
                            );
                            let (reply, count) = self
                                .buffer
                                .poll_response(&body.trigger_identity, body.limit);
                            if ctx.tracing() {
                                ctx.trace(
                                    "service.poll",
                                    format!(
                                        "{} {} -> {} events",
                                        self.endpoint.slug(),
                                        body.trigger_identity,
                                        count
                                    ),
                                );
                            }
                            return Processed::Done(Response::ok().with_body(reply));
                        }
                    }
                }
                Some(CachedParse::Batch { body }) if req.path == BATCH_POLL_PATH => {
                    if let Ok(user) = self.endpoint.authenticate(req) {
                        if *user == body.user
                            && body
                                .entries
                                .iter()
                                .all(|e| self.subs.contains_key(&e.trigger_identity))
                        {
                            self.polls_served += body.entries.len() as u64;
                            self.batch_polls_served += 1;
                            let (out, total) = Self::serve_batch(
                                &self.syms,
                                &mut self.route,
                                &mut self.buffer,
                                user,
                                &body.entries,
                            );
                            if ctx.tracing() {
                                ctx.trace(
                                    "service.batch_poll",
                                    format!(
                                        "{} {} entries -> {} events",
                                        self.endpoint.slug(),
                                        body.entries.len(),
                                        total
                                    ),
                                );
                            }
                            return Processed::Done(Self::batch_reply(out, total));
                        }
                    }
                }
                _ => {}
            }
        }
        match self.endpoint.parse(req) {
            Err(e) => Processed::Done(ServiceEndpoint::error_response(&e)),
            Ok(ParsedServiceRequest::Status) => Processed::Done(Response::ok()),
            Ok(ParsedServiceRequest::TestSetup) => {
                Processed::Done(Response::ok().with_body(r#"{"data":{"samples":{}}}"#))
            }
            Ok(ParsedServiceRequest::Poll {
                user,
                trigger,
                body,
            }) => {
                // Learn (or refresh) the subscription from the poll itself.
                self.learn(
                    &body.trigger_identity,
                    &user,
                    &trigger,
                    &body.trigger_fields,
                );
                self.polls_served += 1;
                Self::clear_hint(
                    &self.syms,
                    &mut self.route,
                    &user,
                    &trigger,
                    &body.trigger_identity,
                );
                let (reply, count) = self
                    .buffer
                    .poll_response(&body.trigger_identity, body.limit);
                if ctx.tracing() {
                    ctx.trace(
                        "service.poll",
                        format!(
                            "{} {} -> {} events",
                            self.endpoint.slug(),
                            body.trigger_identity,
                            count
                        ),
                    );
                }
                if self.parse_cache.len() < PARSE_CACHE_MAX {
                    self.parse_cache.insert(
                        req.body.clone(),
                        CachedParse::Poll {
                            path: req.path.clone(),
                            trigger,
                            body,
                        },
                    );
                }
                Processed::Done(Response::ok().with_body(reply))
            }
            Ok(ParsedServiceRequest::BatchPoll { user, body }) => {
                // Each entry is one subscription poll: learn it and gather
                // its buffered events, exactly as the single path would.
                self.polls_served += body.entries.len() as u64;
                self.batch_polls_served += 1;
                for entry in &body.entries {
                    self.learn(
                        &entry.trigger_identity,
                        &user,
                        &entry.trigger,
                        &entry.trigger_fields,
                    );
                }
                let (out, total) = Self::serve_batch(
                    &self.syms,
                    &mut self.route,
                    &mut self.buffer,
                    &user,
                    &body.entries,
                );
                if ctx.tracing() {
                    ctx.trace(
                        "service.batch_poll",
                        format!(
                            "{} {} entries -> {} events",
                            self.endpoint.slug(),
                            body.entries.len(),
                            total
                        ),
                    );
                }
                if self.parse_cache.len() < PARSE_CACHE_MAX {
                    self.parse_cache
                        .insert(req.body.clone(), CachedParse::Batch { body });
                }
                Processed::Done(Self::batch_reply(out, total))
            }
            Ok(ParsedServiceRequest::Action {
                user, action, body, ..
            }) => Processed::Action {
                user,
                action,
                fields: body.action_fields,
                req_id: req.id,
            },
            Ok(ParsedServiceRequest::Query { user, query, body }) => Processed::Query {
                user,
                query,
                fields: body.query_fields,
                req_id: req.id,
            },
            Ok(ParsedServiceRequest::OAuthAuthorize { user }) => {
                let code = self.endpoint.oauth.authorize(user, ctx.rng());
                let mut body = String::with_capacity(code.0.len() + 12);
                body.push_str("{\"code\":");
                serde_json::write_json_str(&mut body, &code.0);
                body.push('}');
                Processed::Done(Response::ok().with_body(body))
            }
            Ok(ParsedServiceRequest::OAuthToken { code }) => {
                match self.endpoint.oauth.exchange(&AuthCode(code.0), ctx.rng()) {
                    Ok(token) => {
                        // Key order matches what `json!` emitted (BTreeMap
                        // order): access_token before token_type.
                        let mut body = String::with_capacity(token.0.len() + 48);
                        body.push_str("{\"access_token\":");
                        serde_json::write_json_str(&mut body, &token.0);
                        body.push_str(",\"token_type\":\"Bearer\"}");
                        Processed::Done(Response::ok().with_body(body))
                    }
                    Err(_) => Processed::Done(ServiceEndpoint::error_response(
                        &ProtocolError::BadAccessToken,
                    )),
                }
            }
        }
    }

    /// If a [`ServerFaultPlan`] window covers `ctx.now()`, answer the
    /// request with the injected fault instead of the normal handler.
    ///
    /// Body corruption ([`ServerFault::MalformedBody`] /
    /// [`ServerFault::EmptyBody`]) only makes sense for poll responses, so
    /// other requests fall through to normal handling during such windows.
    fn inject_fault(&mut self, ctx: &mut Context<'_>, req: &Request) -> Option<Processed> {
        let fault = self.fault_plan.as_ref()?.active(ctx.now())?;
        let processed = match fault {
            ServerFault::Http500 => Processed::Done(Response::with_status(500)),
            ServerFault::Http503 { retry_after_secs } => Processed::Done(
                Response::unavailable()
                    .with_header(RETRY_AFTER_HEADER, retry_after_secs.to_string()),
            ),
            ServerFault::Timeout => Processed::NoReply,
            ServerFault::MalformedBody | ServerFault::EmptyBody => {
                let is_poll =
                    req.path.starts_with("/ifttt/v1/triggers/") || req.path == BATCH_POLL_PATH;
                if !is_poll {
                    return None;
                }
                if matches!(fault, ServerFault::MalformedBody) {
                    Processed::Done(Response::ok().with_body("{\"data\": not json"))
                } else {
                    Processed::Done(Response::ok())
                }
            }
        };
        self.faults_injected += 1;
        if ctx.tracing() {
            ctx.trace(
                "service.fault",
                format!("{} {:?} {}", self.endpoint.slug(), fault, req.path),
            );
        }
        Some(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tap_protocol::auth::{ServiceKey, AUTHORIZATION_HEADER};
    use tap_protocol::wire::PollRequestBody;
    use tap_protocol::ServiceSlug;

    /// A trivial service node wrapping a core; actions echo success.
    struct TestService {
        core: ServiceCore,
    }
    impl Node for TestService {
        fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
            match self.core.process(ctx, req) {
                Processed::Done(resp) => HandlerResult::Reply(resp),
                Processed::Action { action, .. } => {
                    HandlerResult::Reply(ServiceEndpoint::action_ok(format!("done_{action}")))
                }
                Processed::Query { fields, .. } => {
                    HandlerResult::Reply(ServiceEndpoint::query_ok(fields))
                }
                Processed::NoReply => HandlerResult::Deferred,
            }
        }
    }

    fn core() -> ServiceCore {
        let ep = ServiceEndpoint::new(ServiceSlug::new("svc"), ServiceKey("sk_1".into()))
            .with_trigger("ding")
            .with_action("dong");
        ServiceCore::new(ep)
    }

    /// Engine stand-in: sends one poll (and optionally an action), and
    /// records realtime hints it receives.
    #[derive(Default)]
    struct EngineStub {
        service: Option<NodeId>,
        token_header: String,
        poll_body: Option<Vec<u8>>,
        got_events: Option<usize>,
        hints: Vec<TriggerIdentity>,
    }
    impl Node for EngineStub {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if let (Some(svc), Some(body)) = (self.service, self.poll_body.clone()) {
                let req = Request::post("/ifttt/v1/triggers/ding")
                    .with_header(SERVICE_KEY_HEADER, "sk_1")
                    .with_header(AUTHORIZATION_HEADER, self.token_header.clone())
                    .with_body(body);
                ctx.send_request(svc, req, Token(1), RequestOpts::timeout_secs(30));
            }
        }
        fn on_request(&mut self, _ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
            if req.path == REALTIME_NOTIFY_PATH {
                // The core sends the versioned first-class notification.
                let n = wire::from_bytes::<wire::RealtimeNotificationV1>(&req.body)
                    .expect("core sends v1 bodies");
                assert_eq!(n.version, wire::REALTIME_NOTIFICATION_VERSION);
                self.hints
                    .extend(n.data.into_iter().map(|i| i.trigger_identity));
                HandlerResult::Reply(Response::ok())
            } else {
                HandlerResult::Reply(Response::not_found())
            }
        }
        fn on_response(&mut self, _ctx: &mut Context<'_>, _t: Token, resp: Response) {
            if let Ok(b) = wire::from_bytes::<wire::PollResponseBody>(&resp.body) {
                self.got_events = Some(b.data.len());
            }
        }
    }

    #[test]
    fn poll_learns_subscription_and_returns_buffered_events() {
        let mut sim = Sim::new(51);
        let mut c = core();
        // Pre-register the subscription and buffer two events.
        let user = UserId::new("u1");
        let ti = c.subscribe(user.clone(), TriggerSlug::new("ding"), FieldMap::new());
        c.buffer.push(&ti, TriggerEvent::new("e1", 1));
        c.buffer.push(&ti, TriggerEvent::new("e2", 2));
        let token_header = {
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
            c.endpoint.oauth.mint_token(user.clone(), &mut rng).bearer()
        };
        let svc = sim.add_node("svc", TestService { core: c });
        let poll = PollRequestBody {
            trigger_identity: ti.clone(),
            trigger_fields: FieldMap::new(),
            user,
            limit: 50,
        };
        let engine = sim.add_node(
            "engine",
            EngineStub {
                service: Some(svc),
                token_header,
                poll_body: Some(wire::to_bytes(&poll).to_vec()),
                ..Default::default()
            },
        );
        sim.link(engine, svc, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<EngineStub>(engine).got_events, Some(2));
        let ts = sim.node_ref::<TestService>(svc);
        assert_eq!(ts.core.polls_served, 1);
        assert!(ts.core.subs.contains_key(&ti));
    }

    #[test]
    fn batch_poll_learns_and_answers_every_entry() {
        let mut sim = Sim::new(55);
        let ep = ServiceEndpoint::new(ServiceSlug::new("svc"), ServiceKey("sk_1".into()))
            .with_trigger("ding")
            .with_trigger("dong_t")
            .with_action("dong");
        let mut c = ServiceCore::new(ep);
        let user = UserId::new("u1");
        // Pre-register one of the two subscriptions and buffer an event for
        // it; the other is learned from the batch itself.
        let ti_known = c.subscribe(user.clone(), TriggerSlug::new("ding"), FieldMap::new());
        c.buffer.push(&ti_known, TriggerEvent::new("e1", 1));
        let ti_new = tap_protocol::TriggerIdentity::derive(
            &user,
            &ServiceSlug::new("svc"),
            &TriggerSlug::new("dong_t"),
            &FieldMap::new(),
        );
        let token_header = {
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(2);
            c.endpoint.oauth.mint_token(user.clone(), &mut rng).bearer()
        };
        let body = wire::BatchPollRequestBody {
            user: user.clone(),
            entries: vec![
                wire::BatchPollEntry {
                    trigger: TriggerSlug::new("ding"),
                    trigger_identity: ti_known.clone(),
                    trigger_fields: FieldMap::new(),
                    limit: 50,
                },
                wire::BatchPollEntry {
                    trigger: TriggerSlug::new("dong_t"),
                    trigger_identity: ti_new.clone(),
                    trigger_fields: FieldMap::new(),
                    limit: 50,
                },
            ],
        };
        let svc = sim.add_node("svc", TestService { core: c });
        let req = Request::post(tap_protocol::endpoints::BATCH_POLL_PATH)
            .with_header(SERVICE_KEY_HEADER, "sk_1")
            .with_header(AUTHORIZATION_HEADER, token_header)
            .with_body(wire::to_bytes(&body));
        let resp = sim.with_node::<TestService, _>(svc, |s, ctx| match s.core.process(ctx, &req) {
            Processed::Done(resp) => resp,
            other => panic!("unexpected {other:?}"),
        });
        assert!(resp.is_success());
        let parsed: wire::BatchPollResponseBody = wire::from_bytes(&resp.body).unwrap();
        assert_eq!(parsed.data.len(), 2);
        assert_eq!(parsed.data[0].trigger_identity, ti_known);
        assert_eq!(parsed.data[0].data.len(), 1);
        assert!(parsed.data[1].data.is_empty());
        let ts = sim.node_ref::<TestService>(svc);
        assert_eq!(ts.core.polls_served, 2, "each entry counts as one poll");
        assert_eq!(ts.core.batch_polls_served, 1);
        assert!(ts.core.subs.contains_key(&ti_new), "batch learns entries");
    }

    #[test]
    fn empty_batch_poll_replies_with_static_bytes() {
        let mut sim = Sim::new(56);
        let mut c = core();
        let user = UserId::new("u1");
        let ti = c.subscribe(user.clone(), TriggerSlug::new("ding"), FieldMap::new());
        let token_header = {
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(3);
            c.endpoint.oauth.mint_token(user.clone(), &mut rng).bearer()
        };
        let body = wire::BatchPollRequestBody {
            user,
            entries: vec![wire::BatchPollEntry {
                trigger: TriggerSlug::new("ding"),
                trigger_identity: ti,
                trigger_fields: FieldMap::new(),
                limit: 50,
            }],
        };
        let svc = sim.add_node("svc", TestService { core: c });
        let req = Request::post(tap_protocol::endpoints::BATCH_POLL_PATH)
            .with_header(SERVICE_KEY_HEADER, "sk_1")
            .with_header(AUTHORIZATION_HEADER, token_header)
            .with_body(wire::to_bytes(&body));
        let resp = sim.with_node::<TestService, _>(svc, |s, ctx| match s.core.process(ctx, &req) {
            Processed::Done(resp) => resp,
            other => panic!("unexpected {other:?}"),
        });
        assert_eq!(&*resp.body, wire::EMPTY_BATCH_JSON);
    }

    #[test]
    fn record_event_routes_only_matching_subscriptions() {
        let mut sim = Sim::new(52);
        let svc = sim.add_node("svc", TestService { core: core() });
        sim.with_node::<TestService, _>(svc, |s, ctx| {
            let ti_a = s.core.subscribe(
                UserId::new("alice"),
                TriggerSlug::new("ding"),
                FieldMap::new(),
            );
            let _ti_b = s.core.subscribe(
                UserId::new("bob"),
                TriggerSlug::new("ding"),
                FieldMap::new(),
            );
            let ev = TriggerEvent::new("e1", 5);
            let matched = s.core.record_event(
                ctx,
                &TriggerSlug::new("ding"),
                &UserId::new("alice"),
                ev,
                |_| true,
            );
            assert_eq!(matched, 1);
            assert_eq!(s.core.buffer.len(&ti_a), 1);
        });
    }

    #[test]
    fn record_event_sends_realtime_hint_when_enabled() {
        let mut sim = Sim::new(53);
        let engine = sim.add_node("engine", EngineStub::default());
        let svc = sim.add_node("svc", TestService { core: core() });
        sim.link(engine, svc, LinkSpec::wan());
        let ti = sim.with_node::<TestService, _>(svc, |s, _ctx| {
            s.core.enable_realtime(engine);
            s.core
                .subscribe(UserId::new("u"), TriggerSlug::new("ding"), FieldMap::new())
        });
        sim.with_node::<TestService, _>(svc, |s, ctx| {
            s.core.record_event(
                ctx,
                &TriggerSlug::new("ding"),
                &UserId::new("u"),
                TriggerEvent::new("e1", 1),
                |_| true,
            );
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<EngineStub>(engine).hints, vec![ti]);
        assert_eq!(sim.node_ref::<TestService>(svc).core.hints_sent, 1);
    }

    /// A burst of events yields exactly one outstanding hint; a poll
    /// serving the subscription re-arms it.
    #[test]
    fn hint_dedup_absorbs_bursts_until_a_poll_clears_it() {
        let mut sim = Sim::new(57);
        let engine = sim.add_node("engine", EngineStub::default());
        let svc = sim.add_node("svc", TestService { core: core() });
        sim.link(engine, svc, LinkSpec::wan());
        let user = UserId::new("u");
        let trigger = TriggerSlug::new("ding");
        let (ti, token_header) = sim.with_node::<TestService, _>(svc, |s, _ctx| {
            s.core.enable_realtime(engine);
            assert!(s.core.realtime_capable());
            let ti = s
                .core
                .subscribe(user.clone(), trigger.clone(), FieldMap::new());
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(9);
            let token = s.core.endpoint.oauth.mint_token(user.clone(), &mut rng);
            (ti, token.bearer())
        });
        sim.with_node::<TestService, _>(svc, |s, ctx| {
            for k in 0..4 {
                s.core.record_event(
                    ctx,
                    &trigger,
                    &user,
                    TriggerEvent::new(format!("e{k}"), k),
                    |_| true,
                );
            }
        });
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<TestService>(svc).core.hints_sent,
            1,
            "a burst costs one notification"
        );
        assert_eq!(sim.node_ref::<TestService>(svc).core.hints_deduped, 3);
        assert_eq!(sim.node_ref::<EngineStub>(engine).hints, vec![ti.clone()]);
        // A poll serving the subscription clears the outstanding flag ...
        let poll = PollRequestBody {
            trigger_identity: ti.clone(),
            trigger_fields: FieldMap::new(),
            user: user.clone(),
            limit: 50,
        };
        let req = Request::post("/ifttt/v1/triggers/ding")
            .with_header(SERVICE_KEY_HEADER, "sk_1")
            .with_header(AUTHORIZATION_HEADER, token_header)
            .with_body(wire::to_bytes(&poll));
        sim.with_node::<TestService, _>(svc, |s, ctx| match s.core.process(ctx, &req) {
            Processed::Done(resp) => assert!(resp.is_success()),
            other => panic!("unexpected {other:?}"),
        });
        // ... so the next event notifies again.
        sim.with_node::<TestService, _>(svc, |s, ctx| {
            s.core
                .record_event(ctx, &trigger, &user, TriggerEvent::new("e9", 9), |_| true);
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<TestService>(svc).core.hints_sent, 2);
        assert_eq!(
            sim.node_ref::<EngineStub>(engine).hints,
            vec![ti.clone(), ti]
        );
    }

    #[test]
    fn field_mismatch_records_nothing() {
        let mut sim = Sim::new(54);
        let svc = sim.add_node("svc", TestService { core: core() });
        sim.with_node::<TestService, _>(svc, |s, ctx| {
            let mut fields = FieldMap::new();
            fields.insert("phrase".into(), "good morning".into());
            let ti = s
                .core
                .subscribe(UserId::new("u"), TriggerSlug::new("ding"), fields);
            let matched = s.core.record_event(
                ctx,
                &TriggerSlug::new("ding"),
                &UserId::new("u"),
                TriggerEvent::new("e1", 1),
                |f| f.get("phrase").map(String::as_str) == Some("good night"),
            );
            assert_eq!(matched, 0);
            assert!(s.core.buffer.is_empty(&ti));
        });
    }
}
