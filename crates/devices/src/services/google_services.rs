//! The Gmail, Google Drive, and Google Sheets partner services.
//!
//! All three are thin fronts over the [`crate::google::GoogleCloud`]
//! backend node. Being the vendor's own services they learn of app events
//! by internal push (the cloud's observer mechanism) and execute actions
//! with backend API calls, answered after the backend confirms.

use crate::events::DeviceEvent;
use crate::service_core::{Processed, ServiceCore};
use crate::services::PendingReplies;
use bytes::Bytes;
use simnet::prelude::*;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ActionSlug, FieldMap, ServiceSlug, TriggerSlug, UserId};

/// The Gmail partner service.
///
/// Triggers: `any_new_email`, `new_attachment` (applets A3/A4).
/// Action: `send_an_email`.
#[derive(Debug)]
pub struct GmailService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Backend cloud node.
    pub cloud: NodeId,
    pending: PendingReplies,
    /// Actions executed end-to-end.
    pub actions_done: u64,
}

impl GmailService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "gmail";

    /// Create the service over a backend cloud.
    pub fn new(key: ServiceKey, cloud: NodeId) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("any_new_email")
            .with_trigger("new_attachment")
            .with_action("send_an_email");
        GmailService {
            core: ServiceCore::new(endpoint),
            cloud,
            pending: PendingReplies::default(),
            actions_done: 0,
        }
    }
}

impl Node for GmailService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                action,
                fields,
                req_id,
            } => {
                if action != ActionSlug::new("send_an_email") {
                    return HandlerResult::Reply(Response::bad_request());
                }
                let to = fields.get("to").cloned().unwrap_or_else(|| user.0.clone());
                let subject = fields.get("subject").cloned().unwrap_or_default();
                let body_text = fields.get("body").cloned().unwrap_or_default();
                let token = self.pending.track(req_id);
                let api = Request::post(format!("/gmail/{}/send", user.0)).with_body(
                    serde_json::json!({ "to": to, "subject": subject, "body": body_text })
                        .to_string(),
                );
                ctx.send_request(self.cloud, api, token, RequestOpts::timeout_secs(30));
                HandlerResult::Deferred
            }
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.reply(upstream, ServiceEndpoint::action_ok("mail_sent"));
            } else {
                ctx.reply(
                    upstream,
                    Response::with_status(if resp.is_timeout() { 503 } else { resp.status }),
                );
            }
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Some(ev) = DeviceEvent::from_bytes(&payload) else {
            return;
        };
        let trigger = match ev.kind.as_str() {
            "new_email" => "any_new_email",
            "new_attachment" => "new_attachment",
            _ => return,
        };
        let user = UserId::new(ev.user.clone());
        let id = self.core.next_event_id();
        let mut event = TriggerEvent::new(id, ev.at_secs);
        for (k, v) in &ev.data {
            event = event.with_ingredient(k.clone(), v.clone());
        }
        self.core
            .record_event(ctx, &TriggerSlug::new(trigger), &user, event, |_| true);
    }
}

/// The Google Drive partner service. Action: `save_file` (applet A4 saves
/// Gmail attachments to Drive).
#[derive(Debug)]
pub struct DriveService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Backend cloud node.
    pub cloud: NodeId,
    pending: PendingReplies,
    /// Actions executed end-to-end.
    pub actions_done: u64,
}

impl DriveService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "google_drive";

    /// Create the service over a backend cloud.
    pub fn new(key: ServiceKey, cloud: NodeId) -> Self {
        let endpoint =
            ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key).with_action("save_file");
        DriveService {
            core: ServiceCore::new(endpoint),
            cloud,
            pending: PendingReplies::default(),
            actions_done: 0,
        }
    }
}

impl Node for DriveService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                fields,
                req_id,
                ..
            } => {
                let name = fields
                    .get("name")
                    .cloned()
                    .unwrap_or_else(|| "attachment".to_owned());
                let content = fields.get("content").cloned().unwrap_or_default();
                let token = self.pending.track(req_id);
                let api = Request::post(format!("/drive/{}/files", user.0))
                    .with_body(serde_json::json!({ "name": name, "content": content }).to_string());
                ctx.send_request(self.cloud, api, token, RequestOpts::timeout_secs(30));
                HandlerResult::Deferred
            }
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.reply(upstream, ServiceEndpoint::action_ok("file_saved"));
            } else {
                ctx.reply(
                    upstream,
                    Response::with_status(if resp.is_timeout() { 503 } else { resp.status }),
                );
            }
        }
    }
}

/// The Google Sheets partner service. Action: `add_row` (applets A1/A7).
#[derive(Debug)]
pub struct SheetsService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Backend cloud node.
    pub cloud: NodeId,
    pending: PendingReplies,
    /// Actions executed end-to-end.
    pub actions_done: u64,
}

impl SheetsService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "google_sheets";

    /// Create the service over a backend cloud.
    pub fn new(key: ServiceKey, cloud: NodeId) -> Self {
        let endpoint =
            ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key).with_action("add_row");
        SheetsService {
            core: ServiceCore::new(endpoint),
            cloud,
            pending: PendingReplies::default(),
            actions_done: 0,
        }
    }

    /// Split an action's `row` field into cells.
    fn cells(fields: &FieldMap) -> Vec<String> {
        fields
            .get("row")
            .map(|r| r.split("|||").map(str::to_owned).collect())
            .unwrap_or_default()
    }
}

impl Node for SheetsService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                fields,
                req_id,
                ..
            } => {
                let sheet = fields
                    .get("spreadsheet")
                    .cloned()
                    .unwrap_or_else(|| "IFTTT".to_owned());
                let cells = Self::cells(&fields);
                let token = self.pending.track(req_id);
                let api = Request::post(format!("/sheets/{}/{sheet}/rows", user.0))
                    .with_body(serde_json::json!({ "cells": cells }).to_string());
                ctx.send_request(self.cloud, api, token, RequestOpts::timeout_secs(30));
                HandlerResult::Deferred
            }
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.reply(upstream, ServiceEndpoint::action_ok("row_added"));
            } else {
                ctx.reply(
                    upstream,
                    Response::with_status(if resp.is_timeout() { 503 } else { resp.status }),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::google::GoogleCloud;
    use tap_protocol::auth::{AUTHORIZATION_HEADER, SERVICE_KEY_HEADER};
    use tap_protocol::wire::{self, ActionRequestBody};

    fn google_with_services() -> (Sim, NodeId, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(91);
        let cloud = sim.add_node("google", GoogleCloud::new());
        let gmail = sim.add_node(
            "gmail_svc",
            GmailService::new(ServiceKey("sk_g".into()), cloud),
        );
        let drive = sim.add_node(
            "drive_svc",
            DriveService::new(ServiceKey("sk_d".into()), cloud),
        );
        let sheets = sim.add_node(
            "sheets_svc",
            SheetsService::new(ServiceKey("sk_s".into()), cloud),
        );
        for svc in [gmail, drive, sheets] {
            sim.link(cloud, svc, LinkSpec::datacenter());
        }
        sim.node_mut::<GoogleCloud>(cloud).observe(gmail);
        (sim, cloud, gmail, drive, sheets)
    }

    #[test]
    fn injected_email_feeds_the_new_email_trigger() {
        let (mut sim, cloud, gmail, _, _) = google_with_services();
        let ti = sim.with_node::<GmailService, _>(gmail, |s, _| {
            s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("any_new_email"),
                FieldMap::new(),
            )
        });
        sim.with_node::<GoogleCloud, _>(cloud, |g, ctx| {
            g.deliver_email(ctx, "author", "x@y", "hi", "", None);
        });
        sim.run_until_idle();
        let s = sim.node_ref::<GmailService>(gmail);
        assert_eq!(s.core.buffer.len(&ti), 1);
        let events = s.core.buffer.latest(&ti, 10);
        assert_eq!(events[0].ingredients["subject"], "hi");
    }

    #[test]
    fn attachment_feeds_both_triggers() {
        let (mut sim, cloud, gmail, _, _) = google_with_services();
        let (ti_mail, ti_att) = sim.with_node::<GmailService, _>(gmail, |s, _| {
            (
                s.core.subscribe(
                    UserId::new("author"),
                    TriggerSlug::new("any_new_email"),
                    FieldMap::new(),
                ),
                s.core.subscribe(
                    UserId::new("author"),
                    TriggerSlug::new("new_attachment"),
                    FieldMap::new(),
                ),
            )
        });
        sim.with_node::<GoogleCloud, _>(cloud, |g, ctx| {
            g.deliver_email(
                ctx,
                "author",
                "x@y",
                "doc",
                "",
                Some(("a.pdf".into(), "data".into())),
            );
        });
        sim.run_until_idle();
        let s = sim.node_ref::<GmailService>(gmail);
        assert_eq!(s.core.buffer.len(&ti_mail), 1);
        assert_eq!(s.core.buffer.len(&ti_att), 1);
    }

    /// Engine stand-in sending one action request.
    struct ActionSender {
        service: NodeId,
        key: &'static str,
        action: &'static str,
        fields: FieldMap,
        bearer: String,
        status: Option<u16>,
    }
    impl Node for ActionSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let body = ActionRequestBody {
                action_fields: self.fields.clone(),
                user: UserId::new("author"),
            };
            let req = Request::post(format!("/ifttt/v1/actions/{}", self.action))
                .with_header(SERVICE_KEY_HEADER, self.key)
                .with_header(AUTHORIZATION_HEADER, self.bearer.clone())
                .with_body(wire::to_bytes(&body));
            ctx.send_request(self.service, req, Token(1), RequestOpts::timeout_secs(60));
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            self.status = Some(resp.status);
        }
    }

    #[test]
    fn add_row_action_lands_in_the_sheet() {
        let (mut sim, cloud, _, _, sheets) = google_with_services();
        let bearer = sim.with_node::<SheetsService, _>(sheets, |s, ctx| {
            s.core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng())
                .bearer()
        });
        let mut fields = FieldMap::new();
        fields.insert("spreadsheet".into(), "songs".into());
        fields.insert("row".into(), "yesterday|||beatles".into());
        let sender = sim.add_node(
            "engine",
            ActionSender {
                service: sheets,
                key: "sk_s",
                action: "add_row",
                fields,
                bearer,
                status: None,
            },
        );
        sim.link(sender, sheets, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<ActionSender>(sender).status, Some(200));
        let sheet = sim
            .node_ref::<GoogleCloud>(cloud)
            .sheet("author", "songs")
            .unwrap();
        assert_eq!(
            sheet.rows,
            vec![vec!["yesterday".to_string(), "beatles".to_string()]]
        );
        assert_eq!(sim.node_ref::<SheetsService>(sheets).actions_done, 1);
    }

    #[test]
    fn save_file_action_lands_in_drive() {
        let (mut sim, cloud, _, drive, _) = google_with_services();
        let bearer = sim.with_node::<DriveService, _>(drive, |s, ctx| {
            s.core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng())
                .bearer()
        });
        let mut fields = FieldMap::new();
        fields.insert("name".into(), "report.pdf".into());
        fields.insert("content".into(), "PDFDATA".into());
        let sender = sim.add_node(
            "engine",
            ActionSender {
                service: drive,
                key: "sk_d",
                action: "save_file",
                fields,
                bearer,
                status: None,
            },
        );
        sim.link(sender, drive, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<ActionSender>(sender).status, Some(200));
        assert_eq!(
            sim.node_ref::<GoogleCloud>(cloud).files("author"),
            vec!["report.pdf"]
        );
    }

    #[test]
    fn send_email_action_delivers_and_retriggers() {
        // The send_an_email action generates a new inbox message — the raw
        // material of the explicit infinite loop experiment.
        let (mut sim, cloud, gmail, _, _) = google_with_services();
        let (ti, bearer) = sim.with_node::<GmailService, _>(gmail, |s, ctx| {
            let ti = s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("any_new_email"),
                FieldMap::new(),
            );
            let bearer = s
                .core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng())
                .bearer();
            (ti, bearer)
        });
        let mut fields = FieldMap::new();
        fields.insert("subject".into(), "note to self".into());
        let sender = sim.add_node(
            "engine",
            ActionSender {
                service: gmail,
                key: "sk_g",
                action: "send_an_email",
                fields,
                bearer,
                status: None,
            },
        );
        sim.link(sender, gmail, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<ActionSender>(sender).status, Some(200));
        assert_eq!(
            sim.node_ref::<GoogleCloud>(cloud)
                .messages_since("author", 0)
                .len(),
            1
        );
        // The delivery push fed the trigger buffer again: action → trigger.
        assert_eq!(sim.node_ref::<GmailService>(gmail).core.buffer.len(&ti), 1);
    }
}
