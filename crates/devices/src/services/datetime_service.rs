//! The Date & Time partner service — category 12, the single largest
//! non-IoT trigger source in Table 1 (14.1% of all trigger add count) and
//! the trigger half of the "every sunset → turn on the Hue lights" anchor
//! applet.
//!
//! Unlike every other service, its triggers need no backend at all: the
//! service *is* a clock. It ticks once per virtual minute and fires the
//! subscriptions whose schedule matches:
//!
//! * `every_day_at` — field `time` = `"HH:MM"`;
//! * `sunrise` / `sunset` — fixed at 06:30 and 18:30 virtual time.

use crate::service_core::{Processed, ServiceCore};
use simnet::prelude::*;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

/// Seconds in a virtual day.
pub const DAY_SECS: u64 = 86_400;
/// Sunrise, as seconds of day (06:30).
pub const SUNRISE: u64 = 6 * 3600 + 30 * 60;
/// Sunset, as seconds of day (18:30).
pub const SUNSET: u64 = 18 * 3600 + 30 * 60;

const TIMER_TICK: TimerKey = 1;

/// Parse `"HH:MM"` into seconds of day.
pub fn parse_hhmm(s: &str) -> Option<u64> {
    let (h, m) = s.split_once(':')?;
    let h: u64 = h.parse().ok()?;
    let m: u64 = m.parse().ok()?;
    if h >= 24 || m >= 60 {
        return None;
    }
    Some(h * 3600 + m * 60)
}

/// The clock service node.
#[derive(Debug)]
pub struct DateTimeService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Minutes ticked (for tests).
    pub ticks: u64,
}

impl DateTimeService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "date_time";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("every_day_at")
            .with_trigger("sunrise")
            .with_trigger("sunset");
        DateTimeService {
            core: ServiceCore::new(endpoint),
            ticks: 0,
        }
    }

    /// Fire the subscriptions whose schedule lands in this minute.
    fn fire_matching(&mut self, ctx: &mut Context<'_>, minute_of_day: u64) {
        let day = ctx.now().as_secs_f64() as u64 / DAY_SECS;
        // Time triggers are per-user but user-independent in content; fire
        // for every distinct subscribed user.
        let users: Vec<UserId> = {
            let mut v: Vec<UserId> = self.core.subs.values().map(|s| s.user.clone()).collect();
            v.sort();
            v.dedup();
            v
        };
        let fire = |me: &mut Self,
                    ctx: &mut Context<'_>,
                    trigger: &str,
                    user: &UserId,
                    matches: &dyn Fn(&tap_protocol::FieldMap) -> bool| {
            let id = format!("{}_{}_{}_d{}", Self::SLUG, trigger, user, day);
            let event = TriggerEvent::new(id, ctx.now().as_secs_f64() as u64)
                .with_ingredient("minute_of_day", minute_of_day.to_string());
            me.core
                .record_event(ctx, &TriggerSlug::new(trigger), user, event, matches);
        };
        for user in &users {
            fire(self, ctx, "every_day_at", user, &|fields| {
                fields
                    .get("time")
                    .and_then(|t| parse_hhmm(t))
                    .is_some_and(|sod| sod / 60 == minute_of_day)
            });
            if minute_of_day == SUNRISE / 60 {
                fire(self, ctx, "sunrise", user, &|_| true);
            }
            if minute_of_day == SUNSET / 60 {
                fire(self, ctx, "sunset", user, &|_| true);
            }
        }
    }
}

impl Node for DateTimeService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(60), TIMER_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        if key != TIMER_TICK {
            return;
        }
        self.ticks += 1;
        let minute_of_day = (ctx.now().as_secs_f64() as u64 % DAY_SECS) / 60;
        self.fire_matching(ctx, minute_of_day);
        ctx.set_timer(SimDuration::from_secs(60), TIMER_TICK);
    }

    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { req_id, .. } | Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tap_protocol::FieldMap;

    #[test]
    fn parse_hhmm_accepts_valid_rejects_invalid() {
        assert_eq!(parse_hhmm("06:30"), Some(SUNRISE));
        assert_eq!(parse_hhmm("18:30"), Some(SUNSET));
        assert_eq!(parse_hhmm("00:00"), Some(0));
        assert_eq!(parse_hhmm("23:59"), Some(23 * 3600 + 59 * 60));
        assert_eq!(parse_hhmm("24:00"), None);
        assert_eq!(parse_hhmm("12:60"), None);
        assert_eq!(parse_hhmm("noon"), None);
    }

    #[test]
    fn every_day_at_fires_at_the_configured_minute_once_per_day() {
        let mut sim = Sim::new(1);
        let svc = sim.add_node("clock", DateTimeService::new(ServiceKey("sk_t".into())));
        let ti = sim.with_node::<DateTimeService, _>(svc, |s, _| {
            let mut fields = FieldMap::new();
            fields.insert("time".into(), "01:00".into());
            s.core
                .subscribe(UserId::new("u"), TriggerSlug::new("every_day_at"), fields)
        });
        // Run 90 minutes: exactly one firing (at 01:00).
        sim.run_until(SimTime::from_secs(90 * 60));
        assert_eq!(sim.node_ref::<DateTimeService>(svc).core.buffer.len(&ti), 1);
        // Run into day 2: a second firing.
        sim.run_until(SimTime::from_secs(DAY_SECS + 90 * 60));
        assert_eq!(sim.node_ref::<DateTimeService>(svc).core.buffer.len(&ti), 2);
    }

    #[test]
    fn sunset_fires_for_every_subscribed_user() {
        let mut sim = Sim::new(2);
        let svc = sim.add_node("clock", DateTimeService::new(ServiceKey("sk_t".into())));
        let (ta, tb) = sim.with_node::<DateTimeService, _>(svc, |s, _| {
            (
                s.core.subscribe(
                    UserId::new("a"),
                    TriggerSlug::new("sunset"),
                    FieldMap::new(),
                ),
                s.core.subscribe(
                    UserId::new("b"),
                    TriggerSlug::new("sunset"),
                    FieldMap::new(),
                ),
            )
        });
        sim.run_until(SimTime::from_secs(SUNSET + 120));
        let s = sim.node_ref::<DateTimeService>(svc);
        assert_eq!(s.core.buffer.len(&ta), 1);
        assert_eq!(s.core.buffer.len(&tb), 1);
    }

    #[test]
    fn unmatched_time_never_fires() {
        let mut sim = Sim::new(3);
        let svc = sim.add_node("clock", DateTimeService::new(ServiceKey("sk_t".into())));
        let ti = sim.with_node::<DateTimeService, _>(svc, |s, _| {
            let mut fields = FieldMap::new();
            fields.insert("time".into(), "23:00".into());
            s.core
                .subscribe(UserId::new("u"), TriggerSlug::new("every_day_at"), fields)
        });
        sim.run_until(SimTime::from_secs(4 * 3600));
        assert!(sim
            .node_ref::<DateTimeService>(svc)
            .core
            .buffer
            .is_empty(&ti));
    }
}
