//! The Nest partner service (a Table 3 anchor on both the trigger and the
//! action side).
//!
//! Triggers are threshold *crossings* with per-applet threshold fields —
//! `temperature_rises_above` fires for a subscription exactly when the
//! ambient reading moves from below its `threshold` field to at or above
//! it. This is the one service where trigger-field predicates do real
//! work (most IFTTT triggers are parameterless events).

use crate::events::DeviceEvent;
use crate::service_core::{Processed, ServiceCore};
use crate::services::PendingReplies;
use bytes::Bytes;
use simnet::prelude::*;
use std::collections::HashMap;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

/// The Nest cloud service node.
#[derive(Debug)]
pub struct NestService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// user → thermostat node.
    thermostats: HashMap<UserId, NodeId>,
    pending: PendingReplies,
    /// Actions executed end-to-end.
    pub actions_done: u64,
}

impl NestService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "nest_thermostat";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("temperature_rises_above")
            .with_trigger("temperature_drops_below")
            .with_action("set_temperature");
        NestService {
            core: ServiceCore::new(endpoint),
            thermostats: HashMap::new(),
            pending: PendingReplies::default(),
            actions_done: 0,
        }
    }

    /// Pair a user's thermostat (it must `observe` this node, and its
    /// allowlist must include it).
    pub fn add_thermostat(&mut self, user: UserId, node: NodeId) {
        self.thermostats.insert(user, node);
    }
}

impl Node for NestService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                action,
                fields,
                req_id,
            } => {
                if action.as_str() != "set_temperature" {
                    return HandlerResult::Reply(Response::bad_request());
                }
                let Some(&node) = self.thermostats.get(&user) else {
                    return HandlerResult::Reply(Response::unauthorized());
                };
                let temp: f64 = fields
                    .get("temp_c")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(20.0);
                let token = self.pending.track(req_id);
                let api = Request::put("/nest/target")
                    .with_body(serde_json::json!({ "temp_c": temp }).to_string());
                ctx.send_request(node, api, token, RequestOpts::timeout_secs(30));
                HandlerResult::Deferred
            }
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.reply(upstream, ServiceEndpoint::action_ok("nest_ok"));
            } else {
                let status = if resp.is_timeout() { 503 } else { resp.status };
                ctx.reply(upstream, Response::with_status(status));
            }
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Some(ev) = DeviceEvent::from_bytes(&payload) else {
            return;
        };
        if ev.kind != "temp_changed" {
            return;
        }
        let (Some(prev), Some(now)) = (
            ev.data.get("prev_c").and_then(|v| v.parse::<f64>().ok()),
            ev.data.get("temp_c").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            return;
        };
        let user = UserId::new(ev.user.clone());
        // Rising crossings: prev < threshold ≤ now.
        let id = self.core.next_event_id();
        let event = TriggerEvent::new(id, ev.at_secs)
            .with_ingredient("temp_c", format!("{now:.2}"))
            .with_ingredient("device", ev.device.clone());
        self.core.record_event(
            ctx,
            &TriggerSlug::new("temperature_rises_above"),
            &user,
            event,
            |fields| {
                fields
                    .get("threshold")
                    .and_then(|v| v.parse::<f64>().ok())
                    .is_some_and(|thr| prev < thr && now >= thr)
            },
        );
        // Falling crossings: prev > threshold ≥ now.
        let id = self.core.next_event_id();
        let event = TriggerEvent::new(id, ev.at_secs)
            .with_ingredient("temp_c", format!("{now:.2}"))
            .with_ingredient("device", ev.device);
        self.core.record_event(
            ctx,
            &TriggerSlug::new("temperature_drops_below"),
            &user,
            event,
            |fields| {
                fields
                    .get("threshold")
                    .and_then(|v| v.parse::<f64>().ok())
                    .is_some_and(|thr| prev > thr && now <= thr)
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::NestThermostat;
    use tap_protocol::{FieldMap, TriggerIdentity};

    fn world() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(5);
        let nest = sim.add_node("nest", NestThermostat::new("nest_1", "author"));
        let svc = sim.add_node("nest_svc", NestService::new(ServiceKey("sk_n".into())));
        sim.link(nest, svc, LinkSpec::wan());
        sim.node_mut::<NestThermostat>(nest).observe(svc);
        sim.with_node::<NestService, _>(svc, |s, _| {
            s.add_thermostat(UserId::new("author"), nest);
        });
        (sim, nest, svc)
    }

    fn sub(sim: &mut Sim, svc: NodeId, trigger: &str, threshold: f64) -> TriggerIdentity {
        sim.with_node::<NestService, _>(svc, |s, _| {
            let mut fields = FieldMap::new();
            fields.insert("threshold".into(), threshold.to_string());
            s.core
                .subscribe(UserId::new("author"), TriggerSlug::new(trigger), fields)
        })
    }

    #[test]
    fn rising_crossing_fires_only_matching_thresholds() {
        let (mut sim, nest, svc) = world();
        let t25 = sub(&mut sim, svc, "temperature_rises_above", 25.0);
        let t30 = sub(&mut sim, svc, "temperature_rises_above", 30.0);
        // 21 → 27: crosses 25, not 30.
        sim.with_node::<NestThermostat, _>(nest, |n, ctx| n.set_ambient(ctx, 27.0));
        sim.run_until_idle();
        let s = sim.node_ref::<NestService>(svc);
        assert_eq!(s.core.buffer.len(&t25), 1);
        assert!(s.core.buffer.is_empty(&t30));
        let ev = &s.core.buffer.latest(&t25, 1)[0];
        assert_eq!(ev.ingredients["temp_c"], "27.00");
    }

    #[test]
    fn hovering_above_the_threshold_does_not_refire() {
        let (mut sim, nest, svc) = world();
        let t25 = sub(&mut sim, svc, "temperature_rises_above", 25.0);
        for temp in [27.0, 28.0, 26.0, 29.5] {
            sim.with_node::<NestThermostat, _>(nest, |n, ctx| n.set_ambient(ctx, temp));
            sim.run_until_idle();
        }
        // Only the first change crossed 25 from below.
        assert_eq!(sim.node_ref::<NestService>(svc).core.buffer.len(&t25), 1);
    }

    #[test]
    fn falling_crossing_fires_the_drop_trigger() {
        let (mut sim, nest, svc) = world();
        let rise = sub(&mut sim, svc, "temperature_rises_above", 18.0);
        let drop = sub(&mut sim, svc, "temperature_drops_below", 18.0);
        sim.with_node::<NestThermostat, _>(nest, |n, ctx| n.set_ambient(ctx, 15.0));
        sim.run_until_idle();
        let s = sim.node_ref::<NestService>(svc);
        assert!(s.core.buffer.is_empty(&rise));
        assert_eq!(s.core.buffer.len(&drop), 1);
    }

    #[test]
    fn oscillation_fires_on_every_crossing() {
        let (mut sim, nest, svc) = world();
        let t25 = sub(&mut sim, svc, "temperature_rises_above", 25.0);
        for temp in [26.0, 24.0, 26.0, 24.0, 26.0] {
            sim.with_node::<NestThermostat, _>(nest, |n, ctx| n.set_ambient(ctx, temp));
            sim.run_until_idle();
        }
        assert_eq!(sim.node_ref::<NestService>(svc).core.buffer.len(&t25), 3);
    }
}
