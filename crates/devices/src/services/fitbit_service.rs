//! The Fitbit partner service — Table 3's #2 IoT trigger service (0.2M
//! adds), with the two top triggers the paper lists: "Daily activity
//! summary" and "New sleep logged".
//!
//! The wearable cloud is its own backend: activity accumulates during the
//! day (steps reported by the band), the daily summary fires on a schedule
//! (23:55), and sleep sessions arrive as events.

use crate::service_core::{Processed, ServiceCore};
use simnet::prelude::*;
use std::collections::HashMap;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

const TIMER_TICK: TimerKey = 1;
/// Seconds in a virtual day.
const DAY_SECS: u64 = 86_400;
/// Minute-of-day at which the daily summary fires (23:55).
const SUMMARY_MINUTE: u64 = 23 * 60 + 55;

/// The Fitbit cloud service node.
#[derive(Debug)]
pub struct FitbitService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Steps accumulated today, per user.
    steps_today: HashMap<UserId, u64>,
    /// Sleep sessions logged (for tests).
    pub sleep_sessions: u64,
}

impl FitbitService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "fitbit";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("daily_activity_summary")
            .with_trigger("new_sleep_logged");
        FitbitService {
            core: ServiceCore::new(endpoint),
            steps_today: HashMap::new(),
            sleep_sessions: 0,
        }
    }

    /// The band reports steps (harness-driven).
    pub fn add_steps(&mut self, user: UserId, steps: u64) {
        *self.steps_today.entry(user).or_default() += steps;
    }

    /// A sleep session sync arrives from the band.
    pub fn log_sleep(&mut self, ctx: &mut Context<'_>, user: &UserId, hours: f64) {
        self.sleep_sessions += 1;
        let id = self.core.next_event_id();
        let event = TriggerEvent::new(id, ctx.now().as_secs_f64() as u64)
            .with_ingredient("hours", format!("{hours:.1}"));
        self.core.record_event(
            ctx,
            &TriggerSlug::new("new_sleep_logged"),
            user,
            event,
            |_| true,
        );
    }

    fn fire_daily_summaries(&mut self, ctx: &mut Context<'_>) {
        let day = ctx.now().as_secs_f64() as u64 / DAY_SECS;
        let users: Vec<UserId> = {
            let mut v: Vec<UserId> = self.core.subs.values().map(|s| s.user.clone()).collect();
            v.sort();
            v.dedup();
            v
        };
        for user in users {
            let steps = self.steps_today.get(&user).copied().unwrap_or(0);
            let id = format!("{}_summary_{}_d{}", Self::SLUG, user, day);
            let event = TriggerEvent::new(id, ctx.now().as_secs_f64() as u64)
                .with_ingredient("steps", steps.to_string());
            self.core.record_event(
                ctx,
                &TriggerSlug::new("daily_activity_summary"),
                &user,
                event,
                |_| true,
            );
        }
        self.steps_today.clear();
    }
}

impl Node for FitbitService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(60), TIMER_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        if key != TIMER_TICK {
            return;
        }
        let minute_of_day = (ctx.now().as_secs_f64() as u64 % DAY_SECS) / 60;
        if minute_of_day == SUMMARY_MINUTE {
            self.fire_daily_summaries(ctx);
        }
        ctx.set_timer(SimDuration::from_secs(60), TIMER_TICK);
    }

    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action { req_id, .. } | Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tap_protocol::FieldMap;

    fn world() -> (
        Sim,
        NodeId,
        tap_protocol::TriggerIdentity,
        tap_protocol::TriggerIdentity,
    ) {
        let mut sim = Sim::new(1);
        let svc = sim.add_node("fitbit", FitbitService::new(ServiceKey("sk_f".into())));
        let (summary, sleep) = sim.with_node::<FitbitService, _>(svc, |s, _| {
            (
                s.core.subscribe(
                    UserId::new("u"),
                    TriggerSlug::new("daily_activity_summary"),
                    FieldMap::new(),
                ),
                s.core.subscribe(
                    UserId::new("u"),
                    TriggerSlug::new("new_sleep_logged"),
                    FieldMap::new(),
                ),
            )
        });
        (sim, svc, summary, sleep)
    }

    #[test]
    fn daily_summary_fires_at_2355_with_the_days_steps() {
        let (mut sim, svc, summary, _) = world();
        sim.node_mut::<FitbitService>(svc)
            .add_steps(UserId::new("u"), 8_000);
        sim.node_mut::<FitbitService>(svc)
            .add_steps(UserId::new("u"), 2_345);
        sim.run_until(SimTime::from_secs(23 * 3600 + 50 * 60));
        assert!(sim
            .node_ref::<FitbitService>(svc)
            .core
            .buffer
            .is_empty(&summary));
        sim.run_until(SimTime::from_secs(23 * 3600 + 57 * 60));
        let s = sim.node_ref::<FitbitService>(svc);
        let events = s.core.buffer.latest(&summary, 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ingredients["steps"], "10345");
    }

    #[test]
    fn steps_reset_between_days() {
        let (mut sim, svc, summary, _) = world();
        sim.node_mut::<FitbitService>(svc)
            .add_steps(UserId::new("u"), 5_000);
        // Two full days: two summaries; the second has zero steps.
        sim.run_until(SimTime::from_secs(2 * DAY_SECS));
        let s = sim.node_ref::<FitbitService>(svc);
        let events = s.core.buffer.latest(&summary, 10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ingredients["steps"], "0"); // newest first
        assert_eq!(events[1].ingredients["steps"], "5000");
    }

    #[test]
    fn sleep_sessions_feed_the_sleep_trigger() {
        let (mut sim, svc, _, sleep) = world();
        sim.with_node::<FitbitService, _>(svc, |s, ctx| {
            s.log_sleep(ctx, &UserId::new("u"), 7.5);
        });
        let s = sim.node_ref::<FitbitService>(svc);
        let events = s.core.buffer.latest(&sleep, 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ingredients["hours"], "7.5");
        assert_eq!(s.sleep_sessions, 1);
    }
}
