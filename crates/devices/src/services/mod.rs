//! IFTTT partner services: official vendor clouds plus the authors' own.
//!
//! * [`hue_service::HueService`] — the official Philips Hue cloud ❻: talks
//!   directly to the home Hue bridge over the vendor's paired channel.
//! * [`wemo_service::WemoService`] — the Belkin cloud: learns switch state
//!   from device pushes, drives the switch over UPnP.
//! * [`alexa_service::AlexaService`] — the Amazon cloud: recognizes
//!   utterances uploaded by Echo devices, feeds phrase/todo/song triggers,
//!   and uses the realtime API (the paper finds Alexa is treated specially
//!   by IFTTT).
//! * [`google_services`] — Gmail, Drive and Sheets partner services backed
//!   by the [`crate::google::GoogleCloud`] node.
//! * [`our_service::OurService`] — the authors' self-implemented service ❺:
//!   IoT triggers by proxy push, web-app triggers by backend polling,
//!   actions through the local proxy or the Google API.
//! * [`weather_service::WeatherService`] — the weather service behind the
//!   paper's §2 motivating applet (rain → Hue lights blue).

pub mod alexa_service;
pub mod datetime_service;
pub mod fitbit_service;
pub mod google_services;
pub mod hue_service;
pub mod nest_service;
pub mod our_service;
pub mod weather_service;
pub mod wemo_service;

use simnet::http::RequestId;
use simnet::prelude::Token;
use std::collections::HashMap;

/// Correlates deferred upstream replies with backend requests.
///
/// A service that must query its backend before answering the engine
/// `track`s the engine's request id and gets a token to tag the backend
/// request with; when the backend responds, `resolve` returns the engine
/// request to reply to.
#[derive(Debug, Default)]
pub struct PendingReplies {
    map: HashMap<u64, RequestId>,
    next: u64,
}

impl PendingReplies {
    /// Remember `upstream` and return a fresh correlation token.
    pub fn track(&mut self, upstream: RequestId) -> Token {
        self.next += 1;
        self.map.insert(self.next, upstream);
        Token(self.next)
    }

    /// Resolve a token back to the upstream request, consuming it.
    pub fn resolve(&mut self, token: Token) -> Option<RequestId> {
        self.map.remove(&token.0)
    }

    /// Number of unresolved replies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_resolve_roundtrip() {
        let mut p = PendingReplies::default();
        let t1 = p.track(RequestId(10));
        let t2 = p.track(RequestId(20));
        assert_ne!(t1, t2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.resolve(t1), Some(RequestId(10)));
        assert_eq!(p.resolve(t1), None);
        assert_eq!(p.resolve(t2), Some(RequestId(20)));
        assert!(p.is_empty());
    }
}
