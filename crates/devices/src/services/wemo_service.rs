//! The Belkin WeMo partner service.
//!
//! Trigger `switch_activated` (applets A1/A2) is fed by state-change pushes
//! from the switch (the device keeps an outbound connection to its vendor
//! cloud); the `turn_on`/`turn_off` actions (applet A6) drive the switch
//! over UPnP, so the switch's allowlist must include this node.

use crate::events::DeviceEvent;
use crate::service_core::{Processed, ServiceCore};
use crate::services::PendingReplies;
use crate::wemo;
use bytes::Bytes;
use simnet::prelude::*;
use std::collections::HashMap;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

/// The WeMo cloud service node.
#[derive(Debug)]
pub struct WemoService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// user → switch node.
    switches: HashMap<UserId, NodeId>,
    pending: PendingReplies,
    /// Actions executed end-to-end.
    pub actions_done: u64,
}

impl WemoService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "wemo";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("switch_activated")
            .with_trigger("switch_deactivated")
            .with_action("turn_on")
            .with_action("turn_off");
        WemoService {
            core: ServiceCore::new(endpoint),
            switches: HashMap::new(),
            pending: PendingReplies::default(),
            actions_done: 0,
        }
    }

    /// Pair a user's switch. The switch must also `observe` this node for
    /// trigger pushes, and allowlist it for actions.
    pub fn add_switch(&mut self, user: UserId, switch: NodeId) {
        self.switches.insert(user, switch);
    }
}

impl Node for WemoService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                action,
                fields: _,
                req_id,
            } => {
                let Some(&switch) = self.switches.get(&user) else {
                    return HandlerResult::Reply(Response::unauthorized());
                };
                let on = match action.as_str() {
                    "turn_on" => true,
                    "turn_off" => false,
                    _ => return HandlerResult::Reply(Response::bad_request()),
                };
                ctx.trace("wemo_service.action", action.0.clone());
                let token = self.pending.track(req_id);
                let soap = Request::post(wemo::CONTROL_PATH)
                    .with_header(wemo::SOAPACTION, wemo::SET_BINARY_STATE)
                    .with_body(wemo::set_state_body(on));
                ctx.send_request(switch, soap, token, RequestOpts::timeout_secs(30));
                HandlerResult::Deferred
            }
            // No queries on this service (the endpoint rejects undeclared
            // query slugs before we get here).
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.reply(upstream, ServiceEndpoint::action_ok("wemo_ok"));
            } else {
                let status = if resp.is_timeout() { 503 } else { resp.status };
                ctx.reply(upstream, Response::with_status(status));
            }
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        // State-change push from a switch: feed the matching trigger.
        let Some(ev) = DeviceEvent::from_bytes(&payload) else {
            return;
        };
        let trigger = match ev.kind.as_str() {
            "switched_on" => TriggerSlug::new("switch_activated"),
            "switched_off" => TriggerSlug::new("switch_deactivated"),
            _ => return,
        };
        let user = UserId::new(ev.user.clone());
        let id = self.core.next_event_id();
        let mut event = TriggerEvent::new(id, ev.at_secs).with_ingredient("device", ev.device);
        for (k, v) in &ev.data {
            event = event.with_ingredient(k.clone(), v.clone());
        }
        self.core
            .record_event(ctx, &trigger, &user, event, |_| true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wemo::WemoSwitch;
    use tap_protocol::auth::{AUTHORIZATION_HEADER, SERVICE_KEY_HEADER};
    use tap_protocol::wire::{self, PollRequestBody, PollResponseBody};
    use tap_protocol::{FieldMap, TriggerIdentity};

    fn setup() -> (Sim, NodeId, NodeId, TriggerIdentity, String) {
        let mut sim = Sim::new(71);
        let switch = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        let svc = sim.add_node(
            "wemo_service",
            WemoService::new(ServiceKey("sk_wemo".into())),
        );
        sim.link(switch, svc, LinkSpec::wan());
        sim.node_mut::<WemoSwitch>(switch).observe(svc);
        sim.node_mut::<WemoSwitch>(switch).allow_only(vec![svc]);
        let (ti, bearer) = sim.with_node::<WemoService, _>(svc, |s, ctx| {
            s.add_switch(UserId::new("author"), switch);
            let ti = s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("switch_activated"),
                FieldMap::new(),
            );
            let bearer = s
                .core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng())
                .bearer();
            (ti, bearer)
        });
        (sim, switch, svc, ti, bearer)
    }

    #[test]
    fn physical_press_buffers_a_trigger_event() {
        let (mut sim, switch, svc, ti, _) = setup();
        sim.with_node::<WemoSwitch, _>(switch, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        let s = sim.node_ref::<WemoService>(svc);
        assert_eq!(s.core.buffer.len(&ti), 1);
        let events = s.core.buffer.latest(&ti, 50);
        assert_eq!(events[0].ingredients["device"], "wemo_switch_1");
    }

    #[test]
    fn switch_off_feeds_the_deactivated_trigger_only() {
        let (mut sim, switch, svc, ti_on, _) = setup();
        let ti_off = sim.with_node::<WemoService, _>(svc, |s, _| {
            s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("switch_deactivated"),
                FieldMap::new(),
            )
        });
        // Press twice: on, then off.
        sim.with_node::<WemoSwitch, _>(switch, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        sim.with_node::<WemoSwitch, _>(switch, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        let s = sim.node_ref::<WemoService>(svc);
        assert_eq!(s.core.buffer.len(&ti_on), 1);
        assert_eq!(s.core.buffer.len(&ti_off), 1);
    }

    /// Poll the service like the engine would and verify the event comes
    /// back on the wire.
    struct Poller {
        service: NodeId,
        body: Vec<u8>,
        bearer: String,
        events: Option<usize>,
    }
    impl Node for Poller {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let req = Request::post("/ifttt/v1/triggers/switch_activated")
                .with_header(SERVICE_KEY_HEADER, "sk_wemo")
                .with_header(AUTHORIZATION_HEADER, self.bearer.clone())
                .with_body(self.body.clone());
            ctx.send_request(self.service, req, Token(1), RequestOpts::timeout_secs(60));
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            let b: PollResponseBody = wire::from_bytes(&resp.body).unwrap();
            self.events = Some(b.data.len());
        }
    }

    #[test]
    fn engine_poll_returns_buffered_events() {
        let (mut sim, switch, svc, ti, bearer) = setup();
        sim.with_node::<WemoSwitch, _>(switch, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        let poll = PollRequestBody {
            trigger_identity: ti,
            trigger_fields: FieldMap::new(),
            user: UserId::new("author"),
            limit: 50,
        };
        let poller = sim.add_node(
            "poller",
            Poller {
                service: svc,
                body: wire::to_bytes(&poll).to_vec(),
                bearer,
                events: None,
            },
        );
        sim.link(poller, svc, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Poller>(poller).events, Some(1));
    }
}
