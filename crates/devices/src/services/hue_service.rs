//! The official Philips Hue partner service (❻ in Figure 1).
//!
//! "For the official Hue service, it can directly talk to the hub using a
//! proprietary protocol so the path is Hue Lamp – Hue Hub – Gateway Router
//! – Hue Service" (§2.1). The hub's allowlist must therefore include this
//! node (vendor pairing), unlike arbitrary WAN hosts.

use crate::service_core::{Processed, ServiceCore};
use crate::services::PendingReplies;
use simnet::prelude::*;
use std::collections::HashMap;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::{ServiceSlug, UserId};

/// Map an IFTTT color-field value to a Hue angle.
pub fn color_to_hue(color: &str) -> u16 {
    match color.to_ascii_lowercase().as_str() {
        "red" => 0,
        "orange" => 5461,
        "yellow" => 10922,
        "green" => 25500,
        "blue" => 46920,
        "purple" => 50000,
        "pink" => 56100,
        _ => 8418, // warm white
    }
}

/// Where one user's lights live.
#[derive(Debug, Clone)]
pub struct HueAccount {
    /// The user's bridge node.
    pub hub: NodeId,
    /// Bridge API username.
    pub username: String,
    /// The lamp the service controls by default.
    pub lamp_device: String,
}

/// The official Hue cloud service node.
#[derive(Debug)]
pub struct HueService {
    /// Shared protocol front.
    pub core: ServiceCore,
    accounts: HashMap<UserId, HueAccount>,
    pending: PendingReplies,
    /// Actions executed end-to-end (for tests/metrics).
    pub actions_done: u64,
}

impl HueService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "philips_hue";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_action("turn_on_lights")
            .with_action("turn_off_lights")
            .with_action("blink_lights")
            .with_action("change_color");
        HueService {
            core: ServiceCore::new(endpoint),
            accounts: HashMap::new(),
            pending: PendingReplies::default(),
            actions_done: 0,
        }
    }

    /// Pair a user's bridge with the service.
    pub fn add_account(&mut self, user: UserId, account: HueAccount) {
        self.accounts.insert(user, account);
    }
}

impl Node for HueService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                action,
                fields,
                req_id,
            } => {
                let Some(account) = self.accounts.get(&user).cloned() else {
                    return HandlerResult::Reply(
                        Response::unauthorized()
                            .with_body(r#"{"errors":[{"message":"no hue account"}]}"#),
                    );
                };
                let body = match action.as_str() {
                    "turn_on_lights" => serde_json::json!({"on": true}),
                    "turn_off_lights" => serde_json::json!({"on": false}),
                    "blink_lights" => serde_json::json!({"alert": "lselect"}),
                    "change_color" => {
                        let color = fields.get("color").map(String::as_str).unwrap_or("white");
                        serde_json::json!({"hue": color_to_hue(color), "bri": 254})
                    }
                    _ => return HandlerResult::Reply(Response::bad_request()),
                };
                let lamp = fields
                    .get("lights")
                    .cloned()
                    .unwrap_or_else(|| account.lamp_device.clone());
                ctx.trace("hue_service.action", format!("{action} -> {lamp}"));
                let token = self.pending.track(req_id);
                let hub_req =
                    Request::put(format!("/api/{}/lights/{lamp}/state", account.username))
                        .with_body(body.to_string());
                ctx.send_request(account.hub, hub_req, token, RequestOpts::timeout_secs(30));
                HandlerResult::Deferred
            }
            // No queries on this service (the endpoint rejects undeclared
            // query slugs before we get here).
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.trace("hue_service.done", String::new());
                ctx.reply(upstream, ServiceEndpoint::action_ok("hue_ok"));
            } else {
                let status = if resp.is_timeout() { 503 } else { resp.status };
                ctx.reply(upstream, Response::with_status(status));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hue::{install_hue, HueLamp};
    use tap_protocol::auth::{AUTHORIZATION_HEADER, SERVICE_KEY_HEADER};
    use tap_protocol::wire::{self, ActionRequestBody};
    use tap_protocol::FieldMap;

    /// Sends one action request to the service, IFTTT-style.
    struct EngineStub {
        service: NodeId,
        action: &'static str,
        fields: FieldMap,
        bearer: String,
        status: Option<u16>,
        done_at: Option<SimTime>,
    }
    impl Node for EngineStub {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let body = ActionRequestBody {
                action_fields: self.fields.clone(),
                user: UserId::new("author"),
            };
            let req = Request::post(format!("/ifttt/v1/actions/{}", self.action))
                .with_header(SERVICE_KEY_HEADER, "sk_hue")
                .with_header(AUTHORIZATION_HEADER, self.bearer.clone())
                .with_body(wire::to_bytes(&body));
            ctx.send_request(self.service, req, Token(1), RequestOpts::timeout_secs(120));
        }
        fn on_response(&mut self, ctx: &mut Context<'_>, _t: Token, resp: Response) {
            self.status = Some(resp.status);
            self.done_at = Some(ctx.now());
        }
    }

    fn setup(action: &'static str, fields: FieldMap) -> (Sim, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(61);
        let (hub, lamps) = install_hue(&mut sim, "hueuser", "author", 1);
        let svc = sim.add_node("hue_service", HueService::new(ServiceKey("sk_hue".into())));
        let router = sim.add_node("router", Passive);
        sim.link(hub, router, LinkSpec::lan());
        sim.link(router, svc, LinkSpec::wan());
        // Vendor pairing: hub accepts the official cloud (via the router)
        // — in simnet terms, requests arrive with src = the service node.
        sim.node_mut::<crate::hue::HueHub>(hub)
            .allow_only(vec![svc]);
        let bearer = sim.with_node::<HueService, _>(svc, |s, ctx| {
            s.add_account(
                UserId::new("author"),
                HueAccount {
                    hub,
                    username: "hueuser".into(),
                    lamp_device: "hue_lamp_1".into(),
                },
            );
            s.core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng())
                .bearer()
        });
        let engine = sim.add_node(
            "engine",
            EngineStub {
                service: svc,
                action,
                fields,
                bearer,
                status: None,
                done_at: None,
            },
        );
        sim.link(engine, svc, LinkSpec::wan());
        (sim, svc, lamps[0], engine)
    }

    struct Passive;
    impl Node for Passive {}

    #[test]
    fn turn_on_action_reaches_the_lamp() {
        let (mut sim, svc, lamp, engine) = setup("turn_on_lights", FieldMap::new());
        sim.run_until_idle();
        assert!(sim.node_ref::<HueLamp>(lamp).state.on);
        assert_eq!(sim.node_ref::<EngineStub>(engine).status, Some(200));
        assert_eq!(sim.node_ref::<HueService>(svc).actions_done, 1);
        // Latency: WAN + hub + radio round trips — tens of ms, well under 1 s.
        let at = sim.node_ref::<EngineStub>(engine).done_at.unwrap();
        assert!(at < SimTime::from_secs(1));
    }

    #[test]
    fn change_color_sets_the_requested_hue() {
        let mut fields = FieldMap::new();
        fields.insert("color".into(), "blue".into());
        let (mut sim, _, lamp, engine) = setup("change_color", fields);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<HueLamp>(lamp).state.hue, 46920);
        assert_eq!(sim.node_ref::<EngineStub>(engine).status, Some(200));
    }

    #[test]
    fn unknown_action_is_404() {
        // "dance" is not declared on the endpoint → protocol-level 404.
        let (mut sim, _, _, engine) = setup("dance", FieldMap::new());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<EngineStub>(engine).status, Some(404));
    }

    #[test]
    fn user_without_account_is_401() {
        let (mut sim, svc, _, _) = setup("turn_on_lights", FieldMap::new());
        // A second engine with a token for a user that has no Hue account.
        let bearer = sim.with_node::<HueService, _>(svc, |s, ctx| {
            s.core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng());
            // mint for "stranger" and also register nothing for them
            s.core
                .endpoint
                .oauth
                .mint_token(UserId::new("stranger"), ctx.rng())
                .bearer()
        });
        struct Stranger {
            service: NodeId,
            bearer: String,
            status: Option<u16>,
        }
        impl Node for Stranger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let body = ActionRequestBody {
                    action_fields: FieldMap::new(),
                    user: UserId::new("stranger"),
                };
                let req = Request::post("/ifttt/v1/actions/turn_on_lights")
                    .with_header(SERVICE_KEY_HEADER, "sk_hue")
                    .with_header(AUTHORIZATION_HEADER, self.bearer.clone())
                    .with_body(wire::to_bytes(&body));
                ctx.send_request(self.service, req, Token(1), RequestOpts::timeout_secs(60));
            }
            fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
                self.status = Some(resp.status);
            }
        }
        let stranger = sim.add_node(
            "stranger",
            Stranger {
                service: svc,
                bearer,
                status: None,
            },
        );
        sim.link(stranger, svc, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Stranger>(stranger).status, Some(401));
    }

    #[test]
    fn color_names_map_to_hue_angles() {
        assert_eq!(color_to_hue("blue"), 46920);
        assert_eq!(color_to_hue("RED"), 0);
        assert_eq!(color_to_hue("green"), 25500);
        assert_eq!(color_to_hue("taupe"), 8418);
    }
}
