//! "Our Service" — the authors' self-implemented IFTTT partner service ❺.
//!
//! §2.1: "For each of the above smart devices and web apps, our service
//! leverages its API to get and set its states … our testbed uses the push
//! approach for IoT devices and the polling approach for web apps."
//!
//! Northbound it speaks the full partner protocol (including, optionally,
//! the realtime API, which experiments showed "brings no performance
//! impact"). Southbound it receives IoT device events pushed by the
//! [`crate::proxy::LocalProxy`], polls the Google backend for web-app
//! events, and executes actions either through the proxy (IoT) or the
//! Google API (web apps).
//!
//! Used by experiments E1 (trigger service replaced), E2 (trigger and
//! action services replaced), and E3 (engine replaced too).

use crate::events::{DeviceCommand, DeviceEvent};
use crate::proxy::{ProxyCommand, COMMAND_PATH, EVENTS_PATH};
use crate::service_core::{Processed, ServiceCore};
use crate::services::PendingReplies;
use serde::Deserialize;
use simnet::prelude::*;
use std::collections::HashMap;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

const TIMER_GMAIL_POLL: TimerKey = 1;

/// Token tag for backend Gmail polls (high bit set to stay clear of
/// [`PendingReplies`] tokens, which count up from 1).
const TOKEN_GMAIL_POLL: u64 = 1 << 63;

/// The authors' service node.
#[derive(Debug)]
pub struct OurService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// The home local proxy (for IoT triggers and actions).
    pub proxy: Option<NodeId>,
    /// The Google backend (for web-app triggers and actions).
    pub google: Option<NodeId>,
    /// Gmail accounts to poll: user → last seen sequence number.
    gmail_cursors: HashMap<String, u64>,
    /// Backend polling interval for web apps (the paper's testbed polls).
    pub backend_poll: SimDuration,
    pending: PendingReplies,
    /// Actions executed end-to-end.
    pub actions_done: u64,
    /// Device events received from the proxy.
    pub device_events: u64,
}

impl OurService {
    /// The service slug.
    pub const SLUG: &'static str = "our_service";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            // IoT triggers (push from the proxy).
            .with_trigger("wemo_switched_on")
            .with_trigger("hue_light_on")
            .with_trigger("st_motion")
            // Web-app triggers (backend polling).
            .with_trigger("any_new_email")
            // IoT actions (through the proxy).
            .with_action("hue_turn_on")
            .with_action("hue_turn_off")
            .with_action("hue_blink")
            .with_action("wemo_turn_on")
            .with_action("wemo_turn_off")
            // Web-app actions (Google API).
            .with_action("add_row")
            .with_action("save_file");
        OurService {
            core: ServiceCore::new(endpoint),
            proxy: None,
            google: None,
            gmail_cursors: HashMap::new(),
            backend_poll: SimDuration::from_secs(5),
            pending: PendingReplies::default(),
            actions_done: 0,
            device_events: 0,
        }
    }

    /// Register a Gmail account to poll for `any_new_email`.
    pub fn watch_gmail(&mut self, user: impl Into<String>) {
        self.gmail_cursors.insert(user.into(), 0);
    }

    fn handle_device_event(&mut self, ctx: &mut Context<'_>, ev: &DeviceEvent) {
        self.device_events += 1;
        let trigger = match (ev.device.as_str(), ev.kind.as_str()) {
            (_, "switched_on") => "wemo_switched_on",
            (_, "light_on") => "hue_light_on",
            (_, "st_active") => "st_motion",
            _ => return,
        };
        let user = UserId::new(ev.user.clone());
        let id = self.core.next_event_id();
        let mut event =
            TriggerEvent::new(id, ev.at_secs).with_ingredient("device", ev.device.clone());
        for (k, v) in &ev.data {
            event = event.with_ingredient(k.clone(), v.clone());
        }
        let n = self
            .core
            .record_event(ctx, &TriggerSlug::new(trigger), &user, event, |_| true);
        ctx.trace("our_service.device_event", format!("{trigger} -> {n} subs"));
    }

    fn poll_gmail(&mut self, ctx: &mut Context<'_>) {
        let Some(google) = self.google else { return };
        for (i, (user, cursor)) in self.gmail_cursors.iter().enumerate() {
            let req = Request::get(format!("/gmail/{user}/messages/{cursor}"));
            ctx.send_request(
                google,
                req,
                Token(TOKEN_GMAIL_POLL | i as u64),
                RequestOpts::timeout_secs(10),
            );
        }
    }

    fn on_gmail_poll_response(&mut self, ctx: &mut Context<'_>, idx: usize, resp: Response) {
        if !resp.is_success() {
            return;
        }
        #[derive(Deserialize)]
        struct Messages {
            messages: Vec<crate::google::Email>,
        }
        let Ok(m) = serde_json::from_slice::<Messages>(&resp.body) else {
            return;
        };
        let Some(user) = self.gmail_cursors.keys().nth(idx).cloned() else {
            return;
        };
        let mut max_seq = self.gmail_cursors[&user];
        for email in &m.messages {
            max_seq = max_seq.max(email.seq);
            let uid = UserId::new(user.clone());
            let id = format!("{}_mail_{}_{}", Self::SLUG, user, email.seq);
            let event = TriggerEvent::new(id, ctx.now().as_secs_f64() as u64)
                .with_ingredient("subject", email.subject.clone())
                .with_ingredient("from", email.from.clone());
            self.core
                .record_event(ctx, &TriggerSlug::new("any_new_email"), &uid, event, |_| {
                    true
                });
        }
        self.gmail_cursors.insert(user, max_seq);
    }

    fn run_action(
        &mut self,
        ctx: &mut Context<'_>,
        user: &UserId,
        action: &str,
        fields: &tap_protocol::FieldMap,
        req_id: RequestId,
    ) -> HandlerResult {
        // IoT actions go through the proxy; web actions to Google.
        let iot = |device_default: &str, op: &str| -> Option<(NodeId, Request)> {
            let device = fields
                .get("device")
                .cloned()
                .unwrap_or_else(|| device_default.to_owned());
            let cmd = DeviceCommand::new(device, op);
            let req = Request::post(COMMAND_PATH)
                .with_body(serde_json::to_vec(&ProxyCommand { command: cmd }).expect("serializes"));
            self.proxy.map(|p| (p, req))
        };
        let target = match action {
            "hue_turn_on" => iot("hue_lamp_1", "turn_on"),
            "hue_turn_off" => iot("hue_lamp_1", "turn_off"),
            "hue_blink" => iot("hue_lamp_1", "blink"),
            "wemo_turn_on" => iot("wemo_switch_1", "turn_on"),
            "wemo_turn_off" => iot("wemo_switch_1", "turn_off"),
            "add_row" => {
                let sheet = fields
                    .get("spreadsheet")
                    .cloned()
                    .unwrap_or_else(|| "IFTTT".into());
                let cells: Vec<String> = fields
                    .get("row")
                    .map(|r| r.split("|||").map(str::to_owned).collect())
                    .unwrap_or_default();
                let req = Request::post(format!("/sheets/{}/{sheet}/rows", user.0))
                    .with_body(serde_json::json!({ "cells": cells }).to_string());
                self.google.map(|g| (g, req))
            }
            "save_file" => {
                let name = fields.get("name").cloned().unwrap_or_else(|| "file".into());
                let content = fields.get("content").cloned().unwrap_or_default();
                let req = Request::post(format!("/drive/{}/files", user.0))
                    .with_body(serde_json::json!({ "name": name, "content": content }).to_string());
                self.google.map(|g| (g, req))
            }
            _ => return HandlerResult::Reply(Response::bad_request()),
        };
        let Some((node, req)) = target else {
            return HandlerResult::Reply(Response::unavailable());
        };
        ctx.trace("our_service.action", action.to_owned());
        let token = self.pending.track(req_id);
        ctx.send_request(node, req, token, RequestOpts::timeout_secs(30));
        HandlerResult::Deferred
    }
}

impl Node for OurService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.google.is_some() && !self.gmail_cursors.is_empty() {
            ctx.set_timer(self.backend_poll, TIMER_GMAIL_POLL);
        }
    }

    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        // Northbound proxy protocol: device events pushed up from the home.
        if req.path == EVENTS_PATH && req.method == Method::Post {
            let Some(ev) = DeviceEvent::from_bytes(&req.body) else {
                return HandlerResult::Reply(Response::bad_request());
            };
            self.handle_device_event(ctx, &ev);
            return HandlerResult::Reply(Response::ok());
        }
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            Processed::Action {
                user,
                action,
                fields,
                req_id,
            } => self.run_action(ctx, &user, action.as_str(), &fields, req_id),
            // No queries on this service (the endpoint rejects undeclared
            // query slugs before we get here).
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if token.0 & TOKEN_GMAIL_POLL != 0 && token.0 != u64::MAX {
            let idx = (token.0 & !TOKEN_GMAIL_POLL) as usize;
            self.on_gmail_poll_response(ctx, idx, resp);
            return;
        }
        if let Some(upstream) = self.pending.resolve(token) {
            if resp.is_success() {
                self.actions_done += 1;
                ctx.reply(upstream, ServiceEndpoint::action_ok("our_ok"));
            } else {
                let status = if resp.is_timeout() { 503 } else { resp.status };
                ctx.reply(upstream, Response::with_status(status));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        if key == TIMER_GMAIL_POLL {
            self.poll_gmail(ctx);
            ctx.set_timer(self.backend_poll, TIMER_GMAIL_POLL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::google::GoogleCloud;
    use crate::hue::{install_hue, HueLamp};
    use crate::proxy::{DeviceRoute, LocalProxy};
    use crate::wemo::WemoSwitch;
    use tap_protocol::auth::{AUTHORIZATION_HEADER, SERVICE_KEY_HEADER};
    use tap_protocol::wire::{self, ActionRequestBody};
    use tap_protocol::{FieldMap, TriggerIdentity};

    /// Full home + lab assembly mirroring Figure 1 with Our Service.
    struct World {
        sim: Sim,
        switch: NodeId,
        lamp: NodeId,
        svc: NodeId,
        google: NodeId,
    }

    fn world() -> World {
        let mut sim = Sim::new(101);
        let (hub, lamps) = install_hue(&mut sim, "hueuser", "author", 1);
        let switch = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        let proxy = sim.add_node("proxy", LocalProxy::new());
        let google = sim.add_node("google", GoogleCloud::new());
        let svc = sim.add_node("our_service", OurService::new(ServiceKey("sk_ours".into())));
        sim.link(hub, proxy, LinkSpec::lan());
        sim.link(switch, proxy, LinkSpec::lan());
        sim.link(proxy, svc, LinkSpec::wan());
        sim.link(svc, google, LinkSpec::wan());
        sim.node_mut::<crate::hue::HueHub>(hub)
            .allow_only(vec![proxy]);
        sim.node_mut::<WemoSwitch>(switch).allow_only(vec![proxy]);
        sim.node_mut::<crate::hue::HueHub>(hub).observe(proxy);
        sim.node_mut::<WemoSwitch>(switch).observe(proxy);
        {
            let p = sim.node_mut::<LocalProxy>(proxy);
            p.set_upstream(svc);
            p.register(
                "hue_lamp_1",
                DeviceRoute::HueLamp {
                    hub,
                    username: "hueuser".into(),
                },
            );
            p.register("wemo_switch_1", DeviceRoute::Wemo { node: switch });
        }
        {
            let s = sim.node_mut::<OurService>(svc);
            s.proxy = Some(proxy);
            s.google = Some(google);
        }
        World {
            sim,
            switch,
            lamp: lamps[0],
            svc,
            google,
        }
    }

    #[test]
    fn switch_press_feeds_the_wemo_trigger_within_a_second() {
        let mut w = world();
        let ti = w.sim.with_node::<OurService, _>(w.svc, |s, _| {
            s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("wemo_switched_on"),
                FieldMap::new(),
            )
        });
        w.sim
            .with_node::<WemoSwitch, _>(w.switch, |s, ctx| s.press(ctx));
        w.sim.run_until_idle();
        let s = w.sim.node_ref::<OurService>(w.svc);
        assert_eq!(s.core.buffer.len(&ti), 1);
        assert_eq!(s.device_events, 1);
        // Paper's Table 5: the service learns of the event in well under 1 s.
        let learned = w
            .sim
            .trace()
            .first("our_service.device_event")
            .expect("event traced")
            .at;
        assert!(learned < SimTime::from_secs(1), "learned at {learned}");
    }

    /// IFTTT-style action sender.
    struct ActionSender {
        service: NodeId,
        action: &'static str,
        fields: FieldMap,
        bearer: String,
        status: Option<u16>,
    }
    impl Node for ActionSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let body = ActionRequestBody {
                action_fields: self.fields.clone(),
                user: UserId::new("author"),
            };
            let req = Request::post(format!("/ifttt/v1/actions/{}", self.action))
                .with_header(SERVICE_KEY_HEADER, "sk_ours")
                .with_header(AUTHORIZATION_HEADER, self.bearer.clone())
                .with_body(wire::to_bytes(&body));
            ctx.send_request(self.service, req, Token(1), RequestOpts::timeout_secs(60));
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            self.status = Some(resp.status);
        }
    }

    fn send_action(w: &mut World, action: &'static str, fields: FieldMap) -> Option<u16> {
        let bearer = w.sim.with_node::<OurService, _>(w.svc, |s, ctx| {
            s.core
                .endpoint
                .oauth
                .mint_token(UserId::new("author"), ctx.rng())
                .bearer()
        });
        let sender = w.sim.add_node(
            format!("sender_{action}"),
            ActionSender {
                service: w.svc,
                action,
                fields,
                bearer,
                status: None,
            },
        );
        w.sim.link(sender, w.svc, LinkSpec::wan());
        w.sim.run_until_idle();
        w.sim.node_ref::<ActionSender>(sender).status
    }

    #[test]
    fn hue_turn_on_action_reaches_lamp_through_proxy() {
        let mut w = world();
        assert_eq!(
            send_action(&mut w, "hue_turn_on", FieldMap::new()),
            Some(200)
        );
        assert!(w.sim.node_ref::<HueLamp>(w.lamp).state.on);
        assert_eq!(w.sim.node_ref::<OurService>(w.svc).actions_done, 1);
    }

    #[test]
    fn add_row_action_reaches_google() {
        let mut w = world();
        let mut fields = FieldMap::new();
        fields.insert("spreadsheet".into(), "log".into());
        fields.insert("row".into(), "a|||b".into());
        assert_eq!(send_action(&mut w, "add_row", fields), Some(200));
        let sheet = w
            .sim
            .node_ref::<GoogleCloud>(w.google)
            .sheet("author", "log")
            .unwrap();
        assert_eq!(sheet.rows.len(), 1);
    }

    #[test]
    fn gmail_backend_polling_discovers_new_mail() {
        let mut w = world();
        let ti: TriggerIdentity = w.sim.with_node::<OurService, _>(w.svc, |s, _| {
            s.watch_gmail("author");
            s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("any_new_email"),
                FieldMap::new(),
            )
        });
        // Restart the polling timer (service already started without watch).
        w.sim.with_node::<OurService, _>(w.svc, |s, ctx| {
            ctx.set_timer(s.backend_poll, TIMER_GMAIL_POLL);
        });
        w.sim.with_node::<GoogleCloud, _>(w.google, |g, ctx| {
            g.deliver_email(ctx, "author", "x@y", "hello", "", None);
        });
        // One backend poll interval (5 s) plus slack.
        w.sim.run_until(SimTime::from_secs(12));
        let s = w.sim.node_ref::<OurService>(w.svc);
        assert_eq!(s.core.buffer.len(&ti), 1);
        let events = s.core.buffer.latest(&ti, 10);
        assert_eq!(events[0].ingredients["subject"], "hello");
    }

    #[test]
    fn gmail_cursor_prevents_duplicate_events() {
        let mut w = world();
        let ti = w.sim.with_node::<OurService, _>(w.svc, |s, _| {
            s.watch_gmail("author");
            s.core.subscribe(
                UserId::new("author"),
                TriggerSlug::new("any_new_email"),
                FieldMap::new(),
            )
        });
        w.sim.with_node::<OurService, _>(w.svc, |s, ctx| {
            ctx.set_timer(s.backend_poll, TIMER_GMAIL_POLL);
        });
        w.sim.with_node::<GoogleCloud, _>(w.google, |g, ctx| {
            g.deliver_email(ctx, "author", "x@y", "one", "", None);
        });
        // Let several poll rounds pass: the single email must appear once.
        w.sim.run_until(SimTime::from_secs(30));
        assert_eq!(w.sim.node_ref::<OurService>(w.svc).core.buffer.len(&ti), 1);
    }

    #[test]
    fn action_without_proxy_is_503() {
        let mut w = world();
        w.sim.node_mut::<OurService>(w.svc).proxy = None;
        assert_eq!(
            send_action(&mut w, "hue_turn_on", FieldMap::new()),
            Some(503)
        );
    }
}
