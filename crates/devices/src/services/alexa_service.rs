//! The Amazon Alexa partner service.
//!
//! Receives utterance uploads from Echo devices, classifies them into the
//! triggers the paper's applets A5–A7 use (say a phrase, song played, item
//! added to todo/shopping list), and — crucially — uses the **realtime
//! API**: the paper finds A5–A7 have low T2A latency because "IFTTT …
//! processes the real-time API hints for some services (such as Alexa)".

use crate::echo::UTTERANCE_PATH;
use crate::service_core::{Processed, ServiceCore};
use serde::Deserialize;
use simnet::prelude::*;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

/// How an utterance was classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// `"alexa trigger <phrase>"` or any unrecognized phrase.
    Phrase(String),
    /// `"play <song>"`.
    PlaySong(String),
    /// `"add <item> to my todo list"`.
    TodoAdd(String),
    /// `"add <item> to my shopping list"`.
    ShoppingAdd(String),
    /// `"what's on my shopping list"`.
    AskShoppingList,
}

/// Classify an utterance the way the Alexa skills the paper uses would.
pub fn classify(utterance: &str) -> Intent {
    let u = utterance.trim().to_ascii_lowercase();
    if let Some(song) = u.strip_prefix("play ") {
        return Intent::PlaySong(song.to_owned());
    }
    if let Some(rest) = u.strip_prefix("add ") {
        if let Some(item) = rest.strip_suffix(" to my todo list") {
            return Intent::TodoAdd(item.to_owned());
        }
        if let Some(item) = rest.strip_suffix(" to my shopping list") {
            return Intent::ShoppingAdd(item.to_owned());
        }
    }
    if u.contains("what's on my shopping list") || u.contains("whats on my shopping list") {
        return Intent::AskShoppingList;
    }
    let phrase = u.strip_prefix("alexa trigger ").unwrap_or(&u);
    Intent::Phrase(phrase.to_owned())
}

/// The Alexa cloud service node.
#[derive(Debug)]
pub struct AlexaService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Per-user todo list (state the `ask_*` skills read back).
    pub todo: std::collections::HashMap<UserId, Vec<String>>,
    /// Per-user shopping list.
    pub shopping: std::collections::HashMap<UserId, Vec<String>>,
    /// Utterances processed (for tests/metrics).
    pub utterances: u64,
}

impl AlexaService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "amazon_alexa";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("say_a_phrase")
            .with_trigger("song_played")
            .with_trigger("todo_item_added")
            .with_trigger("shopping_item_added")
            .with_trigger("ask_whats_on_shopping_list");
        AlexaService {
            core: ServiceCore::new(endpoint),
            todo: Default::default(),
            shopping: Default::default(),
            utterances: 0,
        }
    }

    fn feed(
        &mut self,
        ctx: &mut Context<'_>,
        user: &UserId,
        trigger: &str,
        ingredients: &[(&str, &str)],
        phrase_filter: Option<&str>,
    ) {
        let id = self.core.next_event_id();
        let mut event = TriggerEvent::new(id, ctx.now().as_secs_f64() as u64);
        for (k, v) in ingredients {
            event = event.with_ingredient(*k, *v);
        }
        let trigger = TriggerSlug::new(trigger);
        let filter = phrase_filter.map(str::to_owned);
        self.core
            .record_event(ctx, &trigger, user, event, move |fields| {
                match (&filter, fields.get("phrase")) {
                    // A say_a_phrase subscription only matches its configured phrase.
                    (Some(said), Some(want)) => said.eq_ignore_ascii_case(want),
                    (Some(_), None) => true, // subscription with no phrase field: match all
                    (None, _) => true,
                }
            });
    }

    /// Process one recognized utterance for `user`.
    pub fn handle_utterance(&mut self, ctx: &mut Context<'_>, user: &UserId, utterance: &str) {
        self.utterances += 1;
        ctx.trace("alexa.utterance", utterance.to_owned());
        match classify(utterance) {
            Intent::Phrase(p) => self.feed(ctx, user, "say_a_phrase", &[("phrase", &p)], Some(&p)),
            Intent::PlaySong(song) => self.feed(ctx, user, "song_played", &[("song", &song)], None),
            Intent::TodoAdd(item) => {
                self.todo
                    .entry(user.clone())
                    .or_default()
                    .push(item.clone());
                self.feed(ctx, user, "todo_item_added", &[("item", &item)], None)
            }
            Intent::ShoppingAdd(item) => {
                self.shopping
                    .entry(user.clone())
                    .or_default()
                    .push(item.clone());
                self.feed(ctx, user, "shopping_item_added", &[("item", &item)], None)
            }
            Intent::AskShoppingList => {
                self.feed(ctx, user, "ask_whats_on_shopping_list", &[], None)
            }
        }
    }
}

impl Node for AlexaService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if req.path == UTTERANCE_PATH && req.method == Method::Post {
            #[derive(Deserialize)]
            struct Upload {
                user: String,
                utterance: String,
            }
            let Ok(u) = serde_json::from_slice::<Upload>(&req.body) else {
                return HandlerResult::Reply(Response::bad_request());
            };
            let user = UserId::new(u.user);
            self.handle_utterance(ctx, &user, &u.utterance);
            return HandlerResult::Reply(Response::ok());
        }
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            // Alexa exposes no actions on IFTTT; reaching here means the
            // endpoint config and this handler disagree.
            Processed::Action { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            // No queries on this service (the endpoint rejects undeclared
            // query slugs before we get here).
            Processed::Query { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tap_protocol::FieldMap;

    #[test]
    fn classify_covers_the_paper_top_triggers() {
        assert_eq!(
            classify("play Bohemian Rhapsody"),
            Intent::PlaySong("bohemian rhapsody".into())
        );
        assert_eq!(
            classify("add milk to my todo list"),
            Intent::TodoAdd("milk".into())
        );
        assert_eq!(
            classify("add eggs to my shopping list"),
            Intent::ShoppingAdd("eggs".into())
        );
        assert_eq!(
            classify("What's on my shopping list"),
            Intent::AskShoppingList
        );
        assert_eq!(
            classify("alexa trigger movie time"),
            Intent::Phrase("movie time".into())
        );
        assert_eq!(
            classify("turn on the light"),
            Intent::Phrase("turn on the light".into())
        );
    }

    fn service_with_sub(
        trigger: &str,
        fields: FieldMap,
    ) -> (Sim, NodeId, tap_protocol::TriggerIdentity) {
        let mut sim = Sim::new(81);
        let svc = sim.add_node("alexa", AlexaService::new(ServiceKey("sk_a".into())));
        let ti = sim.with_node::<AlexaService, _>(svc, |s, _| {
            s.core
                .subscribe(UserId::new("author"), TriggerSlug::new(trigger), fields)
        });
        (sim, svc, ti)
    }

    #[test]
    fn phrase_subscription_matches_only_its_phrase() {
        let mut fields = FieldMap::new();
        fields.insert("phrase".into(), "movie time".into());
        let (mut sim, svc, ti) = service_with_sub("say_a_phrase", fields);
        sim.with_node::<AlexaService, _>(svc, |s, ctx| {
            s.handle_utterance(ctx, &UserId::new("author"), "alexa trigger movie time");
            s.handle_utterance(ctx, &UserId::new("author"), "alexa trigger bedtime");
        });
        let s = sim.node_ref::<AlexaService>(svc);
        assert_eq!(s.core.buffer.len(&ti), 1);
        assert_eq!(s.utterances, 2);
    }

    #[test]
    fn song_event_carries_the_song_ingredient() {
        let (mut sim, svc, ti) = service_with_sub("song_played", FieldMap::new());
        sim.with_node::<AlexaService, _>(svc, |s, ctx| {
            s.handle_utterance(ctx, &UserId::new("author"), "play Yesterday");
        });
        let s = sim.node_ref::<AlexaService>(svc);
        let events = s.core.buffer.latest(&ti, 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ingredients["song"], "yesterday");
    }

    #[test]
    fn todo_add_updates_the_list_and_the_trigger() {
        let (mut sim, svc, ti) = service_with_sub("todo_item_added", FieldMap::new());
        sim.with_node::<AlexaService, _>(svc, |s, ctx| {
            s.handle_utterance(ctx, &UserId::new("author"), "add buy eggs to my todo list");
        });
        let s = sim.node_ref::<AlexaService>(svc);
        assert_eq!(s.todo[&UserId::new("author")], vec!["buy eggs"]);
        assert_eq!(s.core.buffer.len(&ti), 1);
    }

    #[test]
    fn other_users_events_do_not_cross() {
        let (mut sim, svc, ti) = service_with_sub("song_played", FieldMap::new());
        sim.with_node::<AlexaService, _>(svc, |s, ctx| {
            s.handle_utterance(ctx, &UserId::new("intruder"), "play Yesterday");
        });
        assert!(sim.node_ref::<AlexaService>(svc).core.buffer.is_empty(&ti));
    }
}
