//! The weather partner service — the paper's §2 motivating applet:
//! "automatically turn your hue lights blue whenever it starts to rain. In
//! this applet, the trigger (raining) is from the weather service…".
//!
//! Backed by a [`crate::weather::WeatherStation`] whose condition changes
//! are pushed to this node (the station must `observe` it).

use crate::events::DeviceEvent;
use crate::service_core::{Processed, ServiceCore};
use bytes::Bytes;
use simnet::prelude::*;
use tap_protocol::auth::ServiceKey;
use tap_protocol::service::ServiceEndpoint;
use tap_protocol::wire::TriggerEvent;
use tap_protocol::{ServiceSlug, TriggerSlug, UserId};

/// The weather partner-service node.
#[derive(Debug)]
pub struct WeatherService {
    /// Shared protocol front.
    pub core: ServiceCore,
    /// Users subscribed to this weather location (weather is broadcast:
    /// one station event feeds every registered user's subscriptions).
    pub users: Vec<UserId>,
    /// Last condition pushed by the station (served by the
    /// `current_condition` query).
    pub current: String,
}

impl WeatherService {
    /// The service slug as listed on IFTTT.
    pub const SLUG: &'static str = "weather_underground";

    /// Create the service with its engine-issued key.
    pub fn new(key: ServiceKey) -> Self {
        let endpoint = ServiceEndpoint::new(ServiceSlug::new(Self::SLUG), key)
            .with_trigger("forecast_rain")
            .with_trigger("forecast_snow")
            .with_trigger("forecast_clear")
            .with_query("current_condition");
        WeatherService {
            core: ServiceCore::new(endpoint),
            users: Vec::new(),
            current: "clear".into(),
        }
    }

    /// Register a user interested in this location's weather.
    pub fn add_user(&mut self, user: UserId) {
        self.users.push(user);
    }
}

impl Node for WeatherService {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        match self.core.process(ctx, req) {
            Processed::Done(resp) => HandlerResult::Reply(resp),
            // Weather exposes no actions.
            Processed::Action { req_id, .. } => {
                ctx.reply(req_id, Response::not_found());
                HandlerResult::Deferred
            }
            // The `current_condition` query: read back the latest state.
            Processed::Query { req_id, .. } => {
                let mut data = tap_protocol::FieldMap::new();
                data.insert("condition".into(), self.current.clone());
                ctx.reply(req_id, ServiceEndpoint::query_ok(data));
                HandlerResult::Deferred
            }
            Processed::NoReply => HandlerResult::Deferred,
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Some(ev) = DeviceEvent::from_bytes(&payload) else {
            return;
        };
        let trigger = match ev.kind.as_str() {
            "weather_rain" => "forecast_rain",
            "weather_snow" => "forecast_snow",
            "weather_clear" => "forecast_clear",
            _ => return,
        };
        self.current = ev.kind.trim_start_matches("weather_").to_owned();
        // Broadcast: one station change fires every user's subscription.
        for user in self.users.clone() {
            let id = self.core.next_event_id();
            let event = TriggerEvent::new(id, ev.at_secs)
                .with_ingredient("condition", ev.kind.trim_start_matches("weather_"));
            self.core
                .record_event(ctx, &TriggerSlug::new(trigger), &user, event, |_| true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weather::{Condition, WeatherStation};
    use tap_protocol::FieldMap;

    #[test]
    fn rain_feeds_every_subscribed_user() {
        let mut sim = Sim::new(1);
        let station = sim.add_node("weather", WeatherStation::new());
        let svc = sim.add_node(
            "weather_svc",
            WeatherService::new(ServiceKey("sk_w".into())),
        );
        sim.link(station, svc, LinkSpec::wan());
        sim.node_mut::<WeatherStation>(station).observe(svc);
        let (ti_a, ti_b) = sim.with_node::<WeatherService, _>(svc, |s, _| {
            s.add_user(UserId::new("alice"));
            s.add_user(UserId::new("bob"));
            (
                s.core.subscribe(
                    UserId::new("alice"),
                    TriggerSlug::new("forecast_rain"),
                    FieldMap::new(),
                ),
                s.core.subscribe(
                    UserId::new("bob"),
                    TriggerSlug::new("forecast_rain"),
                    FieldMap::new(),
                ),
            )
        });
        sim.with_node::<WeatherStation, _>(station, |w, ctx| {
            w.set_condition(ctx, Condition::Rain);
        });
        sim.run_until_idle();
        let s = sim.node_ref::<WeatherService>(svc);
        assert_eq!(s.core.buffer.len(&ti_a), 1);
        assert_eq!(s.core.buffer.len(&ti_b), 1);
        let ev = &s.core.buffer.latest(&ti_a, 1)[0];
        assert_eq!(ev.ingredients["condition"], "rain");
    }

    #[test]
    fn clearing_up_feeds_the_clear_trigger_only() {
        let mut sim = Sim::new(2);
        let station = sim.add_node("weather", WeatherStation::new());
        let svc = sim.add_node(
            "weather_svc",
            WeatherService::new(ServiceKey("sk_w".into())),
        );
        sim.link(station, svc, LinkSpec::wan());
        sim.node_mut::<WeatherStation>(station).observe(svc);
        let (rain_ti, clear_ti) = sim.with_node::<WeatherService, _>(svc, |s, _| {
            s.add_user(UserId::new("alice"));
            (
                s.core.subscribe(
                    UserId::new("alice"),
                    TriggerSlug::new("forecast_rain"),
                    FieldMap::new(),
                ),
                s.core.subscribe(
                    UserId::new("alice"),
                    TriggerSlug::new("forecast_clear"),
                    FieldMap::new(),
                ),
            )
        });
        sim.with_node::<WeatherStation, _>(station, |w, ctx| {
            w.set_condition(ctx, Condition::Rain);
        });
        sim.run_until_idle();
        sim.with_node::<WeatherStation, _>(station, |w, ctx| {
            w.set_condition(ctx, Condition::Clear);
        });
        sim.run_until_idle();
        let s = sim.node_ref::<WeatherService>(svc);
        assert_eq!(s.core.buffer.len(&rain_ti), 1);
        assert_eq!(s.core.buffer.len(&clear_ti), 1);
    }
}
