//! Belkin WeMo Light Switch, speaking UPnP/SOAP.
//!
//! The testbed drives the real switch over UPnP (§2.1). We model the
//! `basicevent1` control endpoint with its `SetBinaryState` /
//! `GetBinaryState` SOAP actions, plus the physical toggle (someone presses
//! the switch), which is what activates the triggers of applets A1/A2.

use crate::events::DeviceEvent;
use bytes::Bytes;
use simnet::prelude::*;

/// SOAP control path of the basic-event service.
pub const CONTROL_PATH: &str = "/upnp/control/basicevent1";
/// SOAPACTION header name.
pub const SOAPACTION: &str = "SOAPACTION";
/// SOAPACTION value for setting the state.
pub const SET_BINARY_STATE: &str = "\"urn:Belkin:service:basicevent:1#SetBinaryState\"";
/// SOAPACTION value for reading the state.
pub const GET_BINARY_STATE: &str = "\"urn:Belkin:service:basicevent:1#GetBinaryState\"";

/// Render a `SetBinaryState` SOAP request body.
pub fn set_state_body(on: bool) -> String {
    format!(
        "<?xml version=\"1.0\"?><s:Envelope><s:Body>\
         <u:SetBinaryState xmlns:u=\"urn:Belkin:service:basicevent:1\">\
         <BinaryState>{}</BinaryState></u:SetBinaryState></s:Body></s:Envelope>",
        if on { 1 } else { 0 }
    )
}

fn parse_binary_state(body: &[u8]) -> Option<bool> {
    let text = std::str::from_utf8(body).ok()?;
    let start = text.find("<BinaryState>")? + "<BinaryState>".len();
    let end = text[start..].find("</BinaryState>")? + start;
    match text[start..end].trim() {
        "1" => Some(true),
        "0" => Some(false),
        _ => None,
    }
}

/// The smart switch node.
#[derive(Debug)]
pub struct WemoSwitch {
    /// Device identifier, e.g. `"wemo_switch_1"`.
    pub device_id: String,
    /// Owning user account.
    pub user: String,
    /// Relay state.
    pub on: bool,
    /// Hosts allowed to use the SOAP API (`None` = open).
    pub allowed: Option<Vec<NodeId>>,
    /// Observers notified on every state change (physical or remote).
    pub observers: Vec<NodeId>,
    /// Count of physical presses (for tests).
    pub presses: u64,
}

impl WemoSwitch {
    /// Create a switch owned by `user`, initially off.
    pub fn new(device_id: impl Into<String>, user: impl Into<String>) -> Self {
        WemoSwitch {
            device_id: device_id.into(),
            user: user.into(),
            on: false,
            allowed: None,
            observers: Vec::new(),
            presses: 0,
        }
    }

    /// Restrict API access to these hosts.
    pub fn allow_only(&mut self, hosts: Vec<NodeId>) {
        self.allowed = Some(hosts);
    }

    /// Register an observer for state-change events.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    /// Someone physically toggles the switch. Used by the test controller
    /// to activate the trigger of A1/A2.
    pub fn press(&mut self, ctx: &mut Context<'_>) {
        self.presses += 1;
        self.set(ctx, !self.on, "physical");
    }

    fn set(&mut self, ctx: &mut Context<'_>, on: bool, source: &str) {
        if self.on == on && source != "physical" {
            return; // idempotent remote set
        }
        self.on = on;
        let kind = if on { "switched_on" } else { "switched_off" };
        ctx.trace(
            "wemo.state",
            format!("{} {kind} ({source})", self.device_id),
        );
        let ev = DeviceEvent::new(
            self.device_id.clone(),
            kind,
            self.user.clone(),
            ctx.now().as_secs_f64() as u64,
        )
        .with_data("source", source);
        for obs in self.observers.clone() {
            ctx.signal(obs, ev.to_bytes());
        }
    }
}

impl Node for WemoSwitch {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(&req.src) {
                return HandlerResult::Reply(Response::with_status(403));
            }
        }
        if req.path != CONTROL_PATH || req.method != Method::Post {
            return HandlerResult::Reply(Response::not_found());
        }
        match req.header(SOAPACTION) {
            Some(a) if a == SET_BINARY_STATE => {
                let Some(on) = parse_binary_state(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                self.set(ctx, on, "upnp");
                HandlerResult::Reply(Response::ok().with_body(
                    "<s:Envelope><s:Body><u:SetBinaryStateResponse/></s:Body></s:Envelope>",
                ))
            }
            Some(a) if a == GET_BINARY_STATE => {
                HandlerResult::Reply(Response::ok().with_body(format!(
                    "<s:Envelope><s:Body><u:GetBinaryStateResponse>\
                     <BinaryState>{}</BinaryState>\
                     </u:GetBinaryStateResponse></s:Body></s:Envelope>",
                    if self.on { 1 } else { 0 }
                )))
            }
            _ => HandlerResult::Reply(Response::bad_request()),
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        // A "press" signal models the physical toggle arriving from the
        // test controller's finger.
        if payload.as_ref() == b"press" {
            self.press(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SoapClient {
        switch: NodeId,
        action: &'static str,
        body: String,
        response: Option<Response>,
    }
    impl Node for SoapClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let req = Request::post(CONTROL_PATH)
                .with_header(SOAPACTION, self.action)
                .with_body(self.body.clone());
            ctx.send_request(self.switch, req, Token(0), RequestOpts::default());
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            self.response = Some(resp);
        }
    }

    #[test]
    fn set_binary_state_turns_switch_on() {
        let mut sim = Sim::new(1);
        let sw = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        let client = sim.add_node(
            "client",
            SoapClient {
                switch: sw,
                action: SET_BINARY_STATE,
                body: set_state_body(true),
                response: None,
            },
        );
        sim.link(client, sw, LinkSpec::lan());
        sim.run_until_idle();
        assert!(sim.node_ref::<WemoSwitch>(sw).on);
        assert_eq!(
            sim.node_ref::<SoapClient>(client)
                .response
                .as_ref()
                .unwrap()
                .status,
            200
        );
    }

    #[test]
    fn get_binary_state_reports_state() {
        let mut sim = Sim::new(2);
        let sw = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        sim.node_mut::<WemoSwitch>(sw).on = true;
        let client = sim.add_node(
            "client",
            SoapClient {
                switch: sw,
                action: GET_BINARY_STATE,
                body: String::new(),
                response: None,
            },
        );
        sim.link(client, sw, LinkSpec::lan());
        sim.run_until_idle();
        let resp = sim.node_ref::<SoapClient>(client).response.clone().unwrap();
        assert!(String::from_utf8_lossy(&resp.body).contains("<BinaryState>1</BinaryState>"));
    }

    #[test]
    fn press_toggles_and_notifies_observers() {
        #[derive(Default)]
        struct Obs {
            kinds: Vec<String>,
        }
        impl Node for Obs {
            fn on_signal(&mut self, _c: &mut Context<'_>, _f: NodeId, p: Bytes) {
                if let Some(e) = DeviceEvent::from_bytes(&p) {
                    self.kinds.push(e.kind);
                }
            }
        }
        let mut sim = Sim::new(3);
        let sw = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        let obs = sim.add_node("obs", Obs::default());
        sim.link(sw, obs, LinkSpec::lan());
        sim.node_mut::<WemoSwitch>(sw).observe(obs);
        sim.with_node::<WemoSwitch, _>(sw, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        sim.with_node::<WemoSwitch, _>(sw, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<Obs>(obs).kinds,
            vec!["switched_on", "switched_off"]
        );
        assert_eq!(sim.node_ref::<WemoSwitch>(sw).presses, 2);
    }

    #[test]
    fn allowlist_blocks_remote_control() {
        let mut sim = Sim::new(4);
        let sw = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        sim.node_mut::<WemoSwitch>(sw).allow_only(vec![]);
        let client = sim.add_node(
            "client",
            SoapClient {
                switch: sw,
                action: SET_BINARY_STATE,
                body: set_state_body(true),
                response: None,
            },
        );
        sim.link(client, sw, LinkSpec::lan());
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<SoapClient>(client)
                .response
                .as_ref()
                .unwrap()
                .status,
            403
        );
        assert!(!sim.node_ref::<WemoSwitch>(sw).on);
    }

    #[test]
    fn malformed_soap_is_rejected() {
        let mut sim = Sim::new(5);
        let sw = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        let client = sim.add_node(
            "client",
            SoapClient {
                switch: sw,
                action: SET_BINARY_STATE,
                body: "<Envelope>garbage</Envelope>".into(),
                response: None,
            },
        );
        sim.link(client, sw, LinkSpec::lan());
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<SoapClient>(client)
                .response
                .as_ref()
                .unwrap()
                .status,
            400
        );
    }

    #[test]
    fn parse_binary_state_accepts_0_and_1_only() {
        assert_eq!(
            parse_binary_state(set_state_body(true).as_bytes()),
            Some(true)
        );
        assert_eq!(
            parse_binary_state(set_state_body(false).as_bytes()),
            Some(false)
        );
        assert_eq!(parse_binary_state(b"<BinaryState>2</BinaryState>"), None);
        assert_eq!(parse_binary_state(b"no tags"), None);
    }
}
