//! Samsung SmartThings hub with attached virtual sensors and appliances.
//!
//! The testbed's fourth device (§2.1): a hub "controlling various home
//! appliances". We model a hub holding a set of attached devices (motion
//! sensor, contact sensor, smart plug), a REST-ish API to list devices and
//! send commands, and observer pushes on every attribute change.

use crate::events::DeviceEvent;
use serde::{Deserialize, Serialize};
use simnet::prelude::*;
use std::collections::BTreeMap;

/// Kinds of devices a hub can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorKind {
    Motion,
    Contact,
    Plug,
}

/// One attached device and its current attribute value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attached {
    pub kind: SensorKind,
    /// `"active"/"inactive"`, `"open"/"closed"`, `"on"/"off"`.
    pub value: String,
}

/// The SmartThings hub node.
#[derive(Debug, Default)]
pub struct SmartThingsHub {
    /// Owning user account.
    pub user: String,
    devices: BTreeMap<String, Attached>,
    /// Hosts allowed to use the API (`None` = open).
    pub allowed: Option<Vec<NodeId>>,
    /// Observers notified on every attribute change.
    pub observers: Vec<NodeId>,
}

impl SmartThingsHub {
    /// Create a hub owned by `user`.
    pub fn new(user: impl Into<String>) -> Self {
        SmartThingsHub {
            user: user.into(),
            ..Default::default()
        }
    }

    /// Attach a device with its initial value.
    pub fn attach(&mut self, id: impl Into<String>, kind: SensorKind) {
        let value = match kind {
            SensorKind::Motion => "inactive",
            SensorKind::Contact => "closed",
            SensorKind::Plug => "off",
        };
        self.devices.insert(
            id.into(),
            Attached {
                kind,
                value: value.into(),
            },
        );
    }

    /// Register an observer for attribute changes.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    /// Current value of a device attribute.
    pub fn value(&self, id: &str) -> Option<&str> {
        self.devices.get(id).map(|a| a.value.as_str())
    }

    /// A sensor fires (motion detected, door opened); pushes to observers.
    pub fn sensor_event(&mut self, ctx: &mut Context<'_>, id: &str, value: &str) {
        let Some(att) = self.devices.get_mut(id) else {
            return;
        };
        att.value = value.to_owned();
        let kind = format!("st_{value}");
        ctx.trace("smartthings.event", format!("{id} -> {value}"));
        let ev = DeviceEvent::new(id, kind, self.user.clone(), ctx.now().as_secs_f64() as u64);
        for obs in self.observers.clone() {
            ctx.signal(obs, ev.to_bytes());
        }
    }
}

impl Node for SmartThingsHub {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(&req.src) {
                return HandlerResult::Reply(Response::with_status(403));
            }
        }
        let segs = req.path_segments();
        match segs.as_slice() {
            ["st", "devices"] if req.method == Method::Get => HandlerResult::Reply(
                Response::ok().with_body(serde_json::to_vec(&self.devices).expect("serializes")),
            ),
            ["st", "devices", id, "command"] if req.method == Method::Post => {
                #[derive(Deserialize)]
                struct Cmd {
                    value: String,
                }
                let Ok(cmd) = serde_json::from_slice::<Cmd>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                let id = id.to_string();
                if !self.devices.contains_key(&id) {
                    return HandlerResult::Reply(Response::not_found());
                }
                self.sensor_event(ctx, &id, &cmd.value);
                HandlerResult::Reply(Response::ok())
            }
            _ => HandlerResult::Reply(Response::not_found()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[derive(Default)]
    struct Obs {
        events: Vec<DeviceEvent>,
    }
    impl Node for Obs {
        fn on_signal(&mut self, _c: &mut Context<'_>, _f: NodeId, p: Bytes) {
            if let Some(e) = DeviceEvent::from_bytes(&p) {
                self.events.push(e);
            }
        }
    }

    #[test]
    fn sensor_events_update_value_and_notify() {
        let mut sim = Sim::new(1);
        let hub = sim.add_node("st_hub", SmartThingsHub::new("author"));
        sim.node_mut::<SmartThingsHub>(hub)
            .attach("motion_1", SensorKind::Motion);
        let obs = sim.add_node("obs", Obs::default());
        sim.link(hub, obs, LinkSpec::lan());
        sim.node_mut::<SmartThingsHub>(hub).observe(obs);
        sim.with_node::<SmartThingsHub, _>(hub, |h, ctx| h.sensor_event(ctx, "motion_1", "active"));
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<SmartThingsHub>(hub).value("motion_1"),
            Some("active")
        );
        let events = &sim.node_ref::<Obs>(obs).events;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "st_active");
    }

    struct Commander {
        hub: NodeId,
        path: String,
        body: String,
        status: Option<u16>,
    }
    impl Node for Commander {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let req = Request::post(self.path.clone()).with_body(self.body.clone());
            ctx.send_request(self.hub, req, Token(0), RequestOpts::default());
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            self.status = Some(resp.status);
        }
    }

    #[test]
    fn command_api_drives_attached_plug() {
        let mut sim = Sim::new(2);
        let hub = sim.add_node("st_hub", SmartThingsHub::new("author"));
        sim.node_mut::<SmartThingsHub>(hub)
            .attach("plug_1", SensorKind::Plug);
        let c = sim.add_node(
            "c",
            Commander {
                hub,
                path: "/st/devices/plug_1/command".into(),
                body: r#"{"value":"on"}"#.into(),
                status: None,
            },
        );
        sim.link(c, hub, LinkSpec::lan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Commander>(c).status, Some(200));
        assert_eq!(
            sim.node_ref::<SmartThingsHub>(hub).value("plug_1"),
            Some("on")
        );
    }

    #[test]
    fn unknown_device_404_and_unknown_value_400() {
        let mut sim = Sim::new(3);
        let hub = sim.add_node("st_hub", SmartThingsHub::new("author"));
        let c404 = sim.add_node(
            "c404",
            Commander {
                hub,
                path: "/st/devices/ghost/command".into(),
                body: r#"{"value":"on"}"#.into(),
                status: None,
            },
        );
        sim.link(c404, hub, LinkSpec::lan());
        let c400 = sim.add_node(
            "c400",
            Commander {
                hub,
                path: "/st/devices/ghost/command".into(),
                body: "junk".into(),
                status: None,
            },
        );
        sim.link(c400, hub, LinkSpec::lan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Commander>(c404).status, Some(404));
        assert_eq!(sim.node_ref::<Commander>(c400).status, Some(400));
    }
}
