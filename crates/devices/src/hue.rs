//! Philips Hue: a bridge ("hub") plus smart lamps.
//!
//! The hub exposes a REST API modeled on the real Hue bridge
//! (`PUT /api/<username>/lights/<id>/state`, `GET /api/<username>/lights`)
//! and relays commands to lamps over a low-power radio hop. Command
//! requests are answered only after the lamp acknowledges the state change,
//! so an observer at the lamp and a client at the hub agree on timing.
//!
//! Like the real device, the hub only accepts API calls from hosts on an
//! allowlist (the home LAN rule of §2.1) — the official Hue cloud service is
//! explicitly paired and therefore allowed from outside.

use crate::events::{DeviceCommand, DeviceEvent};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use simnet::prelude::*;
use std::collections::HashMap;

/// Current state of one lamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LampState {
    pub on: bool,
    /// Brightness 0–254 (Hue convention).
    pub bri: u8,
    /// Hue angle 0–65535 (Hue convention).
    pub hue: u16,
}

impl Default for LampState {
    fn default() -> Self {
        LampState {
            on: false,
            bri: 254,
            hue: 8418,
        }
    }
}

/// Timer keys used by [`HueLamp`].
const TIMER_APPLY: TimerKey = 1;
const TIMER_BLINK_STEP: TimerKey = 2;

/// A Hue lamp: applies commands arriving from its hub over radio, then
/// acknowledges. State changes are pushed to observers (e.g. the test
/// controller confirming that an action physically executed).
#[derive(Debug)]
pub struct HueLamp {
    /// Device identifier, e.g. `"hue_lamp_1"`.
    pub device_id: String,
    /// Owning user account.
    pub user: String,
    /// Live lamp state.
    pub state: LampState,
    /// Nodes that receive a [`DeviceEvent`] on every state change.
    pub observers: Vec<NodeId>,
    /// Commands waiting out their apply delay.
    queue: Vec<DeviceCommand>,
    /// Hub to acknowledge to (learned from the first command's source).
    hub: Option<NodeId>,
    /// Remaining blink toggles.
    blink_left: u8,
    /// Total state changes applied (for tests/metrics).
    pub changes_applied: u64,
}

impl HueLamp {
    /// Create a lamp owned by `user`.
    pub fn new(device_id: impl Into<String>, user: impl Into<String>) -> Self {
        HueLamp {
            device_id: device_id.into(),
            user: user.into(),
            state: LampState::default(),
            observers: Vec::new(),
            queue: Vec::new(),
            hub: None,
            blink_left: 0,
            changes_applied: 0,
        }
    }

    /// Register an observer for state-change events.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    fn notify(&mut self, ctx: &mut Context<'_>, kind: &str) {
        self.changes_applied += 1;
        let ev = DeviceEvent::new(
            self.device_id.clone(),
            kind,
            self.user.clone(),
            ctx.now().as_secs_f64() as u64,
        )
        .with_data("on", self.state.on.to_string())
        .with_data("bri", self.state.bri.to_string())
        .with_data("hue", self.state.hue.to_string());
        ctx.trace("lamp.state", format!("{} {kind}", self.device_id));
        for obs in self.observers.clone() {
            ctx.signal(obs, ev.to_bytes());
        }
    }

    fn apply(&mut self, ctx: &mut Context<'_>, cmd: &DeviceCommand) {
        match cmd.op.as_str() {
            "turn_on" => {
                self.state.on = true;
                self.notify(ctx, "light_on");
            }
            "turn_off" => {
                self.state.on = false;
                self.notify(ctx, "light_off");
            }
            "set_color" => {
                if let Some(h) = cmd.args.get("hue").and_then(|v| v.parse().ok()) {
                    self.state.hue = h;
                }
                if let Some(b) = cmd.args.get("bri").and_then(|v| v.parse().ok()) {
                    self.state.bri = b;
                }
                self.state.on = true;
                self.notify(ctx, "color_changed");
            }
            "blink" => {
                // Toggle 4 times (off-on-off-on) at 250 ms steps.
                self.blink_left = 4;
                ctx.set_timer(SimDuration::from_millis(1), TIMER_BLINK_STEP);
            }
            other => {
                ctx.trace("lamp.error", format!("unknown op {other}"));
            }
        }
        // Acknowledge to the hub with the command correlation id.
        if let (Some(hub), Some(cmd_id)) = (self.hub, cmd.args.get("cmd_id")) {
            let ack = DeviceEvent::new(
                self.device_id.clone(),
                "ack",
                self.user.clone(),
                ctx.now().as_secs_f64() as u64,
            )
            .with_data("cmd_id", cmd_id.clone())
            .with_data("op", cmd.op.clone());
            ctx.signal(hub, ack.to_bytes());
        }
    }
}

impl Node for HueLamp {
    fn on_signal(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        let Some(cmd) = DeviceCommand::from_bytes(&payload) else {
            ctx.trace("lamp.error", "unparseable radio frame".to_string());
            return;
        };
        self.hub.get_or_insert(from);
        self.queue.push(cmd);
        // Zigbee radio processing + LED driver latency: 10–30 ms.
        let delay_us = 10_000 + (ctx.rng().gen_range(0..20_000u64));
        ctx.set_timer(SimDuration::from_micros(delay_us), TIMER_APPLY);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        match key {
            TIMER_APPLY if !self.queue.is_empty() => {
                let cmd = self.queue.remove(0);
                self.apply(ctx, &cmd);
            }
            TIMER_BLINK_STEP => {
                if self.blink_left == 0 {
                    return;
                }
                self.blink_left -= 1;
                self.state.on = !self.state.on;
                self.notify(
                    ctx,
                    if self.state.on {
                        "light_on"
                    } else {
                        "light_off"
                    },
                );
                if self.blink_left > 0 {
                    ctx.set_timer(SimDuration::from_millis(250), TIMER_BLINK_STEP);
                }
            }
            _ => {}
        }
    }
}

use rand::Rng;

/// The Hue bridge: REST front, radio relay to lamps, observer pushes.
#[derive(Debug)]
pub struct HueHub {
    /// API username (the Hue "whitelist" entry).
    pub username: String,
    /// Registered lamps: device id → (node, cached state).
    lamps: HashMap<String, (NodeId, LampState)>,
    /// Hosts allowed to call the REST API (`None` = open, for tests).
    pub allowed: Option<Vec<NodeId>>,
    /// Observers notified of every lamp state change the hub learns of.
    pub observers: Vec<NodeId>,
    /// Replies waiting for a lamp ack: cmd_id → (request, lamp device id, op).
    pending: HashMap<u64, (RequestId, String, String)>,
    next_cmd: u64,
}

impl HueHub {
    /// Create a hub with the given API username.
    pub fn new(username: impl Into<String>) -> Self {
        HueHub {
            username: username.into(),
            lamps: HashMap::new(),
            allowed: None,
            observers: Vec::new(),
            pending: HashMap::new(),
            next_cmd: 1,
        }
    }

    /// Pair a lamp with the hub.
    pub fn register_lamp(&mut self, device_id: impl Into<String>, node: NodeId) {
        self.lamps
            .insert(device_id.into(), (node, LampState::default()));
    }

    /// Restrict API access to these hosts (the home-LAN rule).
    pub fn allow_only(&mut self, hosts: Vec<NodeId>) {
        self.allowed = Some(hosts);
    }

    /// Register an observer for lamp state changes.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    /// Cached state of a lamp, if registered.
    pub fn lamp_state(&self, device_id: &str) -> Option<LampState> {
        self.lamps.get(device_id).map(|(_, s)| *s)
    }

    fn authorized(&self, src: NodeId) -> bool {
        self.allowed.as_ref().is_none_or(|a| a.contains(&src))
    }

    /// Route `PUT /api/<username>/lights/<id>/state`.
    fn handle_put_state(
        &mut self,
        ctx: &mut Context<'_>,
        req: &Request,
        device_id: &str,
    ) -> HandlerResult {
        let Some(&(lamp_node, _)) = self.lamps.get(device_id) else {
            return HandlerResult::Reply(Response::not_found());
        };
        #[derive(Deserialize)]
        struct StateBody {
            #[serde(default)]
            on: Option<bool>,
            #[serde(default)]
            bri: Option<u8>,
            #[serde(default)]
            hue: Option<u16>,
            #[serde(default)]
            alert: Option<String>,
        }
        let Ok(body) = serde_json::from_slice::<StateBody>(&req.body) else {
            return HandlerResult::Reply(Response::bad_request());
        };
        let cmd_id = self.next_cmd;
        self.next_cmd += 1;
        let op;
        let mut cmd = if body.alert.as_deref() == Some("lselect") {
            op = "blink";
            DeviceCommand::new(device_id, "blink")
        } else if body.hue.is_some() || body.bri.is_some() {
            op = "set_color";
            let mut c = DeviceCommand::new(device_id, "set_color");
            if let Some(h) = body.hue {
                c = c.with_arg("hue", h.to_string());
            }
            if let Some(b) = body.bri {
                c = c.with_arg("bri", b.to_string());
            }
            c
        } else if body.on == Some(true) {
            op = "turn_on";
            DeviceCommand::new(device_id, "turn_on")
        } else if body.on == Some(false) {
            op = "turn_off";
            DeviceCommand::new(device_id, "turn_off")
        } else {
            return HandlerResult::Reply(Response::bad_request());
        };
        cmd = cmd.with_arg("cmd_id", cmd_id.to_string());
        self.pending
            .insert(cmd_id, (req.id, device_id.to_string(), op.to_string()));
        ctx.trace("hub.command", format!("{device_id} {op}"));
        ctx.signal(lamp_node, cmd.to_bytes());
        HandlerResult::Deferred
    }
}

impl Node for HueHub {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if !self.authorized(req.src) {
            return HandlerResult::Reply(Response::with_status(403));
        }
        let segs = req.path_segments();
        match segs.as_slice() {
            // GET /api/<username>/lights
            ["api", user, "lights"] if req.method == Method::Get => {
                if *user != self.username {
                    return HandlerResult::Reply(Response::unauthorized());
                }
                let states: HashMap<&String, &LampState> =
                    self.lamps.iter().map(|(id, (_, s))| (id, s)).collect();
                HandlerResult::Reply(
                    Response::ok().with_body(serde_json::to_vec(&states).expect("serializes")),
                )
            }
            // PUT /api/<username>/lights/<id>/state
            ["api", user, "lights", id, "state"] if req.method == Method::Put => {
                if *user != self.username {
                    return HandlerResult::Reply(Response::unauthorized());
                }
                let id = id.to_string();
                self.handle_put_state(ctx, req, &id)
            }
            _ => HandlerResult::Reply(Response::not_found()),
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Some(ev) = DeviceEvent::from_bytes(&payload) else {
            return;
        };
        if ev.kind == "ack" {
            let Some(cmd_id) = ev.data.get("cmd_id").and_then(|v| v.parse::<u64>().ok()) else {
                return;
            };
            if let Some((req_id, device_id, _op)) = self.pending.remove(&cmd_id) {
                // Refresh the cached state from the ack payload if present.
                if let Some((_, st)) = self.lamps.get_mut(&device_id) {
                    if let Some(on) = ev.data.get("on").and_then(|v| v.parse().ok()) {
                        st.on = on;
                    }
                }
                ctx.reply(req_id, Response::ok().with_body(r#"[{"success":{}}]"#));
            }
        } else {
            // A lamp state change: refresh cache, fan out to observers.
            if let Some((_, st)) = self.lamps.get_mut(&ev.device) {
                if let Some(on) = ev.data.get("on").and_then(|v| v.parse().ok()) {
                    st.on = on;
                }
                if let Some(bri) = ev.data.get("bri").and_then(|v| v.parse().ok()) {
                    st.bri = bri;
                }
                if let Some(hue) = ev.data.get("hue").and_then(|v| v.parse().ok()) {
                    st.hue = hue;
                }
            }
            for obs in self.observers.clone() {
                ctx.signal(obs, payload.clone());
            }
        }
    }
}

/// Assemble a hub with `n` lamps in a simulation: creates the nodes, links
/// lamps to the hub over radio, registers them, and makes lamps report
/// state changes to the hub. Returns `(hub, lamps)`.
pub fn install_hue(sim: &mut Sim, username: &str, user: &str, n: usize) -> (NodeId, Vec<NodeId>) {
    let hub = sim.add_node("hue_hub", HueHub::new(username));
    let mut lamps = Vec::new();
    for i in 1..=n {
        let device_id = format!("hue_lamp_{i}");
        let lamp = sim.add_node(device_id.clone(), HueLamp::new(device_id.clone(), user));
        sim.link(hub, lamp, LinkSpec::radio());
        sim.node_mut::<HueHub>(hub).register_lamp(device_id, lamp);
        sim.node_mut::<HueLamp>(lamp).observe(hub);
        lamps.push(lamp);
    }
    (hub, lamps)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one PUT against the hub and reports the response.
    struct Driver {
        hub: NodeId,
        path: String,
        body: String,
        response: Option<(u16, SimTime)>,
    }
    impl Node for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let req = Request::put(self.path.clone()).with_body(self.body.clone());
            ctx.send_request(self.hub, req, Token(1), RequestOpts::timeout_secs(10));
        }
        fn on_response(&mut self, ctx: &mut Context<'_>, _t: Token, resp: Response) {
            self.response = Some((resp.status, ctx.now()));
        }
    }

    fn setup(body: &str) -> (Sim, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(77);
        let (hub, lamps) = install_hue(&mut sim, "hueuser", "author", 1);
        let driver = sim.add_node(
            "driver",
            Driver {
                hub,
                path: "/api/hueuser/lights/hue_lamp_1/state".into(),
                body: body.into(),
                response: None,
            },
        );
        sim.link(driver, hub, LinkSpec::lan());
        (sim, hub, lamps[0], driver)
    }

    #[test]
    fn turn_on_roundtrip_updates_lamp_and_cache() {
        let (mut sim, hub, lamp, driver) = setup(r#"{"on":true}"#);
        sim.run_until_idle();
        assert!(sim.node_ref::<HueLamp>(lamp).state.on);
        assert!(
            sim.node_ref::<HueHub>(hub)
                .lamp_state("hue_lamp_1")
                .unwrap()
                .on
        );
        let (status, at) = sim.node_ref::<Driver>(driver).response.unwrap();
        assert_eq!(status, 200);
        // LAN + radio + apply delay: response well under a second but not zero.
        assert!(at > SimTime::ZERO && at < SimTime::from_secs(1));
    }

    #[test]
    fn set_color_applies_hue_and_bri() {
        let (mut sim, _, lamp, driver) = setup(r#"{"hue":46920,"bri":100}"#);
        sim.run_until_idle();
        let s = sim.node_ref::<HueLamp>(lamp).state;
        assert_eq!(s.hue, 46920);
        assert_eq!(s.bri, 100);
        assert!(s.on);
        assert_eq!(sim.node_ref::<Driver>(driver).response.unwrap().0, 200);
    }

    #[test]
    fn blink_toggles_lamp_multiple_times() {
        let (mut sim, _, lamp, _) = setup(r#"{"alert":"lselect"}"#);
        sim.run_until_idle();
        // 4 toggles → 4 state-change notifications (plus none from setup).
        assert_eq!(sim.node_ref::<HueLamp>(lamp).changes_applied, 4);
        // Ends in the state it started from (even number of toggles).
        assert!(!sim.node_ref::<HueLamp>(lamp).state.on);
    }

    #[test]
    fn unknown_lamp_is_404_and_bad_body_is_400() {
        let (mut sim, hub, _, _) = setup(r#"{"on":true}"#);
        let d2 = sim.add_node(
            "d2",
            Driver {
                hub,
                path: "/api/hueuser/lights/nope/state".into(),
                body: r#"{"on":true}"#.into(),
                response: None,
            },
        );
        sim.link(d2, hub, LinkSpec::lan());
        let d3 = sim.add_node(
            "d3",
            Driver {
                hub,
                path: "/api/hueuser/lights/hue_lamp_1/state".into(),
                body: "not json".into(),
                response: None,
            },
        );
        sim.link(d3, hub, LinkSpec::lan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Driver>(d2).response.unwrap().0, 404);
        assert_eq!(sim.node_ref::<Driver>(d3).response.unwrap().0, 400);
    }

    #[test]
    fn wrong_username_is_401() {
        let (mut sim, hub, _, _) = setup("{}");
        let d = sim.add_node(
            "d",
            Driver {
                hub,
                path: "/api/intruder/lights/hue_lamp_1/state".into(),
                body: r#"{"on":true}"#.into(),
                response: None,
            },
        );
        sim.link(d, hub, LinkSpec::lan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Driver>(d).response.unwrap().0, 401);
    }

    #[test]
    fn allowlist_rejects_strangers_with_403() {
        let (mut sim, hub, _, driver) = setup(r#"{"on":true}"#);
        // Allow nobody: even the driver is rejected.
        sim.node_mut::<HueHub>(hub).allow_only(vec![]);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Driver>(driver).response.unwrap().0, 403);
        // Allowing the driver makes it work again.
        sim.node_mut::<HueHub>(hub).allow_only(vec![driver]);
        let d2 = sim.add_node(
            "d2",
            Driver {
                hub,
                path: "/api/hueuser/lights/hue_lamp_1/state".into(),
                body: r#"{"on":true}"#.into(),
                response: None,
            },
        );
        sim.link(d2, hub, LinkSpec::lan());
        sim.run_until_idle();
        // d2 is not on the allowlist either.
        assert_eq!(sim.node_ref::<Driver>(d2).response.unwrap().0, 403);
    }

    #[test]
    fn observers_receive_state_changes() {
        #[derive(Default)]
        struct Obs {
            events: Vec<DeviceEvent>,
        }
        impl Node for Obs {
            fn on_signal(&mut self, _ctx: &mut Context<'_>, _f: NodeId, p: Bytes) {
                if let Some(e) = DeviceEvent::from_bytes(&p) {
                    self.events.push(e);
                }
            }
        }
        let (mut sim, hub, _, _) = setup(r#"{"on":true}"#);
        let obs = sim.add_node("obs", Obs::default());
        sim.link(obs, hub, LinkSpec::lan());
        sim.node_mut::<HueHub>(hub).observe(obs);
        sim.run_until_idle();
        let events = &sim.node_ref::<Obs>(obs).events;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "light_on");
        assert_eq!(events[0].device, "hue_lamp_1");
    }

    #[test]
    fn get_lights_lists_cached_state() {
        struct Getter {
            hub: NodeId,
            body: Option<String>,
        }
        impl Node for Getter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_request(
                    self.hub,
                    Request::get("/api/hueuser/lights"),
                    Token(0),
                    RequestOpts::default(),
                );
            }
            fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
                self.body = Some(String::from_utf8_lossy(&resp.body).into_owned());
            }
        }
        let mut sim = Sim::new(3);
        let (hub, _) = install_hue(&mut sim, "hueuser", "author", 2);
        let getter = sim.add_node("getter", Getter { hub, body: None });
        sim.link(getter, hub, LinkSpec::lan());
        sim.run_until_idle();
        let body = sim.node_ref::<Getter>(getter).body.clone().unwrap();
        assert!(body.contains("hue_lamp_1") && body.contains("hue_lamp_2"));
    }
}
