//! Amazon Echo Dot.
//!
//! The test controller "plays pre-recorded voice commands" at the Echo
//! (§4). We model the device as a speech front-end: a `voice:` signal
//! arrives (sound), the Echo spends a recognition delay, then uploads the
//! utterance to the Alexa cloud over the WAN. Everything trigger-related
//! (phrase matching, todo/shopping lists) lives in the Alexa cloud service
//! (`services::alexa`).

use bytes::Bytes;
use simnet::prelude::*;

const TIMER_RECOGNIZED: TimerKey = 1;

/// Path on the Alexa cloud accepting utterance uploads.
pub const UTTERANCE_PATH: &str = "/alexa/v1/utterances";

/// The smart speaker node.
#[derive(Debug)]
pub struct EchoDot {
    /// Device identifier.
    pub device_id: String,
    /// The Amazon account the device is registered to.
    pub user: String,
    /// The Alexa cloud node utterances are uploaded to.
    pub cloud: NodeId,
    /// Utterances waiting out the recognition delay.
    queue: Vec<String>,
    /// Count of utterances uploaded (for tests).
    pub uploaded: u64,
}

impl EchoDot {
    /// Create an Echo Dot bound to an Alexa cloud node.
    pub fn new(device_id: impl Into<String>, user: impl Into<String>, cloud: NodeId) -> Self {
        EchoDot {
            device_id: device_id.into(),
            user: user.into(),
            cloud,
            queue: Vec::new(),
            uploaded: 0,
        }
    }

    /// Hear a voice command (the test controller's speaker).
    pub fn hear(&mut self, ctx: &mut Context<'_>, utterance: &str) {
        self.queue.push(utterance.to_owned());
        // On-device wake-word detection + end-of-speech: 300–700 ms.
        let delay_us = 300_000 + ctx.rng().gen_range(0..400_000u64);
        ctx.set_timer(SimDuration::from_micros(delay_us), TIMER_RECOGNIZED);
        ctx.trace("echo.heard", utterance.to_owned());
    }
}

use rand::Rng;

impl Node for EchoDot {
    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        if let Some(text) = payload.strip_prefix(b"voice:".as_slice()) {
            let utterance = String::from_utf8_lossy(text).into_owned();
            self.hear(ctx, &utterance);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, key: TimerKey) {
        if key != TIMER_RECOGNIZED || self.queue.is_empty() {
            return;
        }
        let utterance = self.queue.remove(0);
        let body = serde_json::json!({
            "device": self.device_id,
            "user": self.user,
            "utterance": utterance,
        });
        self.uploaded += 1;
        ctx.trace("echo.upload", utterance.clone());
        let req = Request::post(UTTERANCE_PATH).with_body(body.to_string());
        ctx.send_request(self.cloud, req, Token(0), RequestOpts::timeout_secs(10));
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, _token: Token, resp: Response) {
        if !resp.is_success() {
            ctx.trace("echo.error", format!("cloud status {}", resp.status));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stand-in Alexa cloud that records utterance uploads.
    #[derive(Default)]
    struct FakeCloud {
        utterances: Vec<String>,
        arrival: Vec<SimTime>,
    }
    impl Node for FakeCloud {
        fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
            assert_eq!(req.path, UTTERANCE_PATH);
            let v: serde_json::Value = serde_json::from_slice(&req.body).unwrap();
            self.utterances
                .push(v["utterance"].as_str().unwrap().to_owned());
            self.arrival.push(ctx.now());
            HandlerResult::Reply(Response::ok())
        }
    }

    #[test]
    fn voice_signal_is_recognized_and_uploaded() {
        let mut sim = Sim::new(9);
        let cloud = sim.add_node("alexa_cloud", FakeCloud::default());
        let echo = sim.add_node("echo", EchoDot::new("echo_1", "author", cloud));
        sim.link(echo, cloud, LinkSpec::wan());
        let speaker = sim.add_node("speaker", Speaker { echo });
        sim.link(speaker, echo, LinkSpec::lan());
        sim.run_until_idle();
        let c = sim.node_ref::<FakeCloud>(cloud);
        assert_eq!(c.utterances, vec!["turn on the light"]);
        // Recognition delay ≥ 300 ms.
        assert!(c.arrival[0] >= SimTime::from_micros(300_000));
        assert_eq!(sim.node_ref::<EchoDot>(echo).uploaded, 1);
    }

    struct Speaker {
        echo: NodeId,
    }
    impl Node for Speaker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.signal(self.echo, &b"voice:turn on the light"[..]);
        }
    }

    #[test]
    fn non_voice_signals_are_ignored() {
        let mut sim = Sim::new(10);
        let cloud = sim.add_node("alexa_cloud", FakeCloud::default());
        let echo = sim.add_node("echo", EchoDot::new("echo_1", "author", cloud));
        sim.link(echo, cloud, LinkSpec::wan());
        sim.with_node::<EchoDot, _>(echo, |_, _ctx| {
            let peer = NodeId(0);
            let _ = peer; // silence-only: send garbage to the echo
        });
        let speaker = sim.add_node("noise", Noise { echo });
        sim.link(speaker, echo, LinkSpec::lan());
        sim.run_until_idle();
        assert!(sim.node_ref::<FakeCloud>(cloud).utterances.is_empty());
    }

    struct Noise {
        echo: NodeId,
    }
    impl Node for Noise {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.signal(self.echo, &b"thunderclap"[..]);
        }
    }

    #[test]
    fn sequential_commands_upload_in_order() {
        let mut sim = Sim::new(11);
        let cloud = sim.add_node("alexa_cloud", FakeCloud::default());
        let echo = sim.add_node("echo", EchoDot::new("echo_1", "author", cloud));
        sim.link(echo, cloud, LinkSpec::wan());
        for (i, phrase) in ["first", "second", "third"].iter().enumerate() {
            sim.run_until(SimTime::from_secs(i as u64 * 5));
            sim.with_node::<EchoDot, _>(echo, |e, ctx| e.hear(ctx, phrase));
        }
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<FakeCloud>(cloud).utterances,
            vec!["first", "second", "third"]
        );
    }
}
