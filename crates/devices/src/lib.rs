//! # devices — simulated smart-home devices, web apps, and their services
//!
//! Everything the paper's testbed (its Figure 1) deploys, as `simnet` nodes:
//!
//! * **IoT devices in the home LAN**: a Philips Hue hub + lamps speaking a
//!   REST API modeled on the Hue bridge ([`hue`]), a WeMo light switch
//!   speaking UPnP/SOAP ([`wemo`]), an Amazon Echo Dot that forwards
//!   recognized voice commands to the Alexa cloud ([`echo`]), and a Samsung
//!   SmartThings hub with attached sensors ([`smartthings`]).
//! * **Web applications**: a Google cloud node hosting Gmail, Drive and
//!   Sheets — including the spreadsheet *email-notification feature* that
//!   the paper uses to demonstrate implicit infinite loops ([`google`]) —
//!   and a weather backend ([`weather`]).
//! * **The local proxy** ❸ that bridges the home LAN to a lab service
//!   server, since "most home deployed devices only accept access from a
//!   3rd-party host in the same LAN" ([`proxy`]).
//! * **IFTTT partner services**: the official vendor clouds (Hue, WeMo,
//!   Alexa, Google) and the authors' own "Our Service", all built on the
//!   shared [`service_core::ServiceCore`] protocol front.
//!
//! Devices enforce the LAN-only access rule with per-node allowlists, push
//! state changes to registered observers, and add realistic processing
//! delays, so end-to-end trigger-to-action latencies decompose exactly the
//! way Table 5 of the paper does.

pub mod echo;
pub mod events;
pub mod google;
pub mod hue;
pub mod nest;
pub mod proxy;
pub mod service_core;
pub mod services;
pub mod smartthings;
pub mod weather;
pub mod wemo;

pub use events::{DeviceCommand, DeviceEvent};
pub use proxy::LocalProxy;
pub use service_core::ServiceCore;
