//! Nest Learning Thermostat.
//!
//! A Table 3 anchor on both sides: `temperature_rises_above` /
//! `temperature_drops_below` triggers and the `set_temperature` action.
//! Unlike the event-shaped triggers elsewhere, Nest's triggers are
//! *threshold crossings* over a continuous ambient signal — which is what
//! exercises per-subscription trigger *fields* (each applet carries its
//! own threshold).

use crate::events::DeviceEvent;
use serde::Deserialize;
use simnet::prelude::*;

/// The thermostat node.
#[derive(Debug)]
pub struct NestThermostat {
    /// Device identifier.
    pub device_id: String,
    /// Owning user account.
    pub user: String,
    /// Current ambient temperature (°C).
    pub ambient_c: f64,
    /// Current setpoint (°C).
    pub target_c: f64,
    /// Hosts allowed to use the API (`None` = open).
    pub allowed: Option<Vec<NodeId>>,
    /// Observers notified of ambient changes and setpoint changes.
    pub observers: Vec<NodeId>,
    /// Setpoint changes applied (for tests/metrics).
    pub setpoint_changes: u64,
}

impl NestThermostat {
    /// Create a thermostat at 21 °C ambient, 20 °C setpoint.
    pub fn new(device_id: impl Into<String>, user: impl Into<String>) -> Self {
        NestThermostat {
            device_id: device_id.into(),
            user: user.into(),
            ambient_c: 21.0,
            target_c: 20.0,
            allowed: None,
            observers: Vec::new(),
            setpoint_changes: 0,
        }
    }

    /// Register an observer.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    /// The room temperature changes (harness plays the environment).
    /// Pushes a `temp_changed` event carrying the old and new readings so
    /// services can detect threshold *crossings*, not just levels.
    pub fn set_ambient(&mut self, ctx: &mut Context<'_>, temp_c: f64) {
        let prev = self.ambient_c;
        if (prev - temp_c).abs() < f64::EPSILON {
            return;
        }
        self.ambient_c = temp_c;
        ctx.trace(
            "nest.ambient",
            format!("{} {prev:.1} -> {temp_c:.1}", self.device_id),
        );
        let ev = DeviceEvent::new(
            self.device_id.clone(),
            "temp_changed",
            self.user.clone(),
            ctx.now().as_secs_f64() as u64,
        )
        .with_data("prev_c", format!("{prev:.2}"))
        .with_data("temp_c", format!("{temp_c:.2}"));
        for obs in self.observers.clone() {
            ctx.signal(obs, ev.to_bytes());
        }
    }
}

impl Node for NestThermostat {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(&req.src) {
                return HandlerResult::Reply(Response::with_status(403));
            }
        }
        match (req.method, req.path.as_str()) {
            (Method::Get, "/nest/state") => HandlerResult::Reply(
                Response::ok().with_body(
                    serde_json::json!({
                        "ambient_c": self.ambient_c,
                        "target_c": self.target_c,
                    })
                    .to_string(),
                ),
            ),
            (Method::Put, "/nest/target") => {
                #[derive(Deserialize)]
                struct Target {
                    temp_c: f64,
                }
                let Ok(t) = serde_json::from_slice::<Target>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                if !(9.0..=32.0).contains(&t.temp_c) {
                    // The real device clamps to its supported range; we
                    // reject so misconfigured applets are visible.
                    return HandlerResult::Reply(Response::bad_request());
                }
                self.target_c = t.temp_c;
                self.setpoint_changes += 1;
                ctx.trace(
                    "nest.setpoint",
                    format!("{} -> {:.1}C", self.device_id, t.temp_c),
                );
                let ev = DeviceEvent::new(
                    self.device_id.clone(),
                    "setpoint_changed",
                    self.user.clone(),
                    ctx.now().as_secs_f64() as u64,
                )
                .with_data("target_c", format!("{:.2}", t.temp_c));
                for obs in self.observers.clone() {
                    ctx.signal(obs, ev.to_bytes());
                }
                HandlerResult::Reply(Response::ok())
            }
            _ => HandlerResult::Reply(Response::not_found()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[derive(Default)]
    struct Obs {
        events: Vec<DeviceEvent>,
    }
    impl Node for Obs {
        fn on_signal(&mut self, _c: &mut Context<'_>, _f: NodeId, p: Bytes) {
            if let Some(e) = DeviceEvent::from_bytes(&p) {
                self.events.push(e);
            }
        }
    }

    #[test]
    fn ambient_changes_notify_with_prev_and_new() {
        let mut sim = Sim::new(1);
        let nest = sim.add_node("nest", NestThermostat::new("nest_1", "author"));
        let obs = sim.add_node("obs", Obs::default());
        sim.link(nest, obs, LinkSpec::wan());
        sim.node_mut::<NestThermostat>(nest).observe(obs);
        sim.with_node::<NestThermostat, _>(nest, |n, ctx| {
            n.set_ambient(ctx, 26.5);
            n.set_ambient(ctx, 26.5); // no-op duplicate
        });
        sim.run_until_idle();
        let events = &sim.node_ref::<Obs>(obs).events;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].data["prev_c"], "21.00");
        assert_eq!(events[0].data["temp_c"], "26.50");
    }

    struct Setter {
        nest: NodeId,
        body: String,
        status: Option<u16>,
    }
    impl Node for Setter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let req = Request::put("/nest/target").with_body(self.body.clone());
            ctx.send_request(self.nest, req, Token(0), RequestOpts::default());
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            self.status = Some(resp.status);
        }
    }

    #[test]
    fn setpoint_api_applies_in_range_and_rejects_out_of_range() {
        let mut sim = Sim::new(2);
        let nest = sim.add_node("nest", NestThermostat::new("nest_1", "author"));
        let ok = sim.add_node(
            "ok",
            Setter {
                nest,
                body: r#"{"temp_c": 22.5}"#.into(),
                status: None,
            },
        );
        sim.link(ok, nest, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Setter>(ok).status, Some(200));
        assert_eq!(sim.node_ref::<NestThermostat>(nest).target_c, 22.5);
        let bad = sim.add_node(
            "bad",
            Setter {
                nest,
                body: r#"{"temp_c": 60.0}"#.into(),
                status: None,
            },
        );
        sim.link(bad, nest, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Setter>(bad).status, Some(400));
        assert_eq!(sim.node_ref::<NestThermostat>(nest).target_c, 22.5);
    }
}
