//! The home local proxy (❸ in the paper's Figure 1).
//!
//! "For security, most home deployed devices only accept access from a
//! 3rd-party host in the same LAN so we deployed in the home LAN a local
//! proxy which acts as a bridge for communication between our service
//! server and local devices" (§2.1).
//!
//! Southbound, the proxy speaks each device's native protocol (Hue REST,
//! WeMo SOAP, SmartThings REST). Northbound, it speaks the custom
//! proxy protocol with the lab service server:
//!
//! * device events are forwarded as `POST /proxy/v1/events` (push);
//! * the server drives devices with `POST /proxy/v1/command`, answered
//!   after the device acknowledges.

use crate::events::{DeviceCommand, DeviceEvent};
use crate::wemo;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use simnet::prelude::*;
use std::collections::HashMap;

/// Northbound path for event forwarding.
pub const EVENTS_PATH: &str = "/proxy/v1/events";
/// Northbound path for command execution.
pub const COMMAND_PATH: &str = "/proxy/v1/command";

/// How the proxy reaches one device.
#[derive(Debug, Clone)]
pub enum DeviceRoute {
    /// A Hue lamp behind a Hue bridge (`username` is the bridge API user).
    HueLamp { hub: NodeId, username: String },
    /// A WeMo switch reachable directly over UPnP.
    Wemo { node: NodeId },
    /// A device attached to a SmartThings hub.
    SmartThings { hub: NodeId },
}

/// Northbound command envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxyCommand {
    pub command: DeviceCommand,
}

/// The proxy node.
#[derive(Debug)]
pub struct LocalProxy {
    /// The lab service server events are forwarded to (set after both nodes
    /// exist, via [`LocalProxy::set_upstream`]).
    upstream: Option<NodeId>,
    /// Device registry: device id → route.
    routes: HashMap<String, DeviceRoute>,
    /// Southbound requests in flight: token → northbound request to answer.
    pending: HashMap<u64, RequestId>,
    next_token: u64,
    /// Forwarded events confirmed by the upstream (for tests / Table 5).
    pub events_confirmed: u64,
    /// Commands executed end-to-end.
    pub commands_done: u64,
}

impl Default for LocalProxy {
    fn default() -> Self {
        LocalProxy {
            upstream: None,
            routes: HashMap::new(),
            pending: HashMap::new(),
            next_token: 1,
            events_confirmed: 0,
            commands_done: 0,
        }
    }
}

impl LocalProxy {
    /// Create a proxy with no upstream and no devices.
    pub fn new() -> Self {
        LocalProxy::default()
    }

    /// Point the proxy at the lab service server.
    pub fn set_upstream(&mut self, upstream: NodeId) {
        self.upstream = Some(upstream);
    }

    /// Register a device route.
    pub fn register(&mut self, device_id: impl Into<String>, route: DeviceRoute) {
        self.routes.insert(device_id.into(), route);
    }

    fn forward_event(&mut self, ctx: &mut Context<'_>, ev: &DeviceEvent) {
        let Some(upstream) = self.upstream else {
            return;
        };
        ctx.trace("proxy.event", format!("{} {}", ev.device, ev.kind));
        let req = Request::post(EVENTS_PATH).with_body(ev.to_bytes());
        let token = Token(0); // token 0 marks event-forward confirmations
        ctx.send_request(upstream, req, token, RequestOpts::timeout_secs(30));
    }

    fn execute(&mut self, ctx: &mut Context<'_>, cmd: &DeviceCommand, northbound: RequestId) {
        let Some(route) = self.routes.get(&cmd.device).cloned() else {
            ctx.reply(northbound, Response::not_found());
            return;
        };
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, northbound);
        ctx.trace("proxy.command", format!("{} {}", cmd.device, cmd.op));
        match route {
            DeviceRoute::HueLamp { hub, username } => {
                let body = match cmd.op.as_str() {
                    "turn_on" => serde_json::json!({"on": true}),
                    "turn_off" => serde_json::json!({"on": false}),
                    "blink" => serde_json::json!({"alert": "lselect"}),
                    "set_color" => {
                        let hue: u16 = cmd
                            .args
                            .get("hue")
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(46920);
                        serde_json::json!({"hue": hue, "bri": 254})
                    }
                    _ => {
                        self.pending.remove(&token);
                        ctx.reply(northbound, Response::bad_request());
                        return;
                    }
                };
                let req = Request::put(format!("/api/{username}/lights/{}/state", cmd.device))
                    .with_body(body.to_string());
                ctx.send_request(hub, req, Token(token), RequestOpts::timeout_secs(10));
            }
            DeviceRoute::Wemo { node } => {
                let on = match cmd.op.as_str() {
                    "turn_on" => true,
                    "turn_off" => false,
                    _ => {
                        self.pending.remove(&token);
                        ctx.reply(northbound, Response::bad_request());
                        return;
                    }
                };
                let req = Request::post(wemo::CONTROL_PATH)
                    .with_header(wemo::SOAPACTION, wemo::SET_BINARY_STATE)
                    .with_body(wemo::set_state_body(on));
                ctx.send_request(node, req, Token(token), RequestOpts::timeout_secs(10));
            }
            DeviceRoute::SmartThings { hub } => {
                let value = cmd
                    .args
                    .get("value")
                    .cloned()
                    .unwrap_or_else(|| "on".into());
                let req = Request::post(format!("/st/devices/{}/command", cmd.device))
                    .with_body(serde_json::json!({ "value": value }).to_string());
                ctx.send_request(hub, req, Token(token), RequestOpts::timeout_secs(10));
            }
        }
    }
}

impl Node for LocalProxy {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if req.path == COMMAND_PATH && req.method == Method::Post {
            let Ok(pc) = serde_json::from_slice::<ProxyCommand>(&req.body) else {
                return HandlerResult::Reply(Response::bad_request());
            };
            self.execute(ctx, &pc.command, req.id);
            HandlerResult::Deferred
        } else {
            HandlerResult::Reply(Response::not_found())
        }
    }

    fn on_response(&mut self, ctx: &mut Context<'_>, token: Token, resp: Response) {
        if token == Token(0) {
            // Event-forward confirmation from the upstream service.
            if resp.is_success() {
                self.events_confirmed += 1;
                ctx.trace("proxy.event_confirmed", String::new());
            } else {
                ctx.trace("proxy.event_failed", format!("status {}", resp.status));
            }
            return;
        }
        if let Some(northbound) = self.pending.remove(&token.0) {
            if resp.is_success() {
                self.commands_done += 1;
            }
            let status = if resp.is_timeout() { 504 } else { resp.status };
            ctx.reply(northbound, Response::with_status(status));
        }
    }

    fn on_signal(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        // Device state-change push: forward upstream.
        if let Some(ev) = DeviceEvent::from_bytes(&payload) {
            self.forward_event(ctx, &ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hue::{install_hue, HueLamp};
    use crate::wemo::WemoSwitch;

    /// A stand-in lab server that records forwarded events and can issue
    /// one command at start.
    #[derive(Default)]
    struct LabServer {
        proxy: Option<NodeId>,
        command: Option<DeviceCommand>,
        received: Vec<DeviceEvent>,
        command_status: Option<u16>,
    }
    impl Node for LabServer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if let (Some(proxy), Some(cmd)) = (self.proxy, self.command.clone()) {
                let req = Request::post(COMMAND_PATH)
                    .with_body(serde_json::to_vec(&ProxyCommand { command: cmd }).unwrap());
                ctx.send_request(proxy, req, Token(1), RequestOpts::timeout_secs(60));
            }
        }
        fn on_request(&mut self, _ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
            if req.path == EVENTS_PATH {
                if let Some(ev) = DeviceEvent::from_bytes(&req.body) {
                    self.received.push(ev);
                }
                HandlerResult::Reply(Response::ok())
            } else {
                HandlerResult::Reply(Response::not_found())
            }
        }
        fn on_response(&mut self, _ctx: &mut Context<'_>, _t: Token, resp: Response) {
            self.command_status = Some(resp.status);
        }
    }

    /// Home topology: lamp—hub—proxy—router—server, switch—proxy.
    fn home() -> (Sim, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(31);
        let (hub, lamps) = install_hue(&mut sim, "hueuser", "author", 1);
        let lamp = lamps[0];
        let switch = sim.add_node("wemo", WemoSwitch::new("wemo_switch_1", "author"));
        let proxy = sim.add_node("proxy", LocalProxy::new());
        let router = sim.add_node("router", RouterStub);
        let server = sim.add_node("server", LabServer::default());
        sim.link(hub, proxy, LinkSpec::lan());
        sim.link(switch, proxy, LinkSpec::lan());
        sim.link(proxy, router, LinkSpec::lan());
        sim.link(router, server, LinkSpec::wan());
        // LAN rule: devices accept the proxy only.
        sim.node_mut::<crate::hue::HueHub>(hub)
            .allow_only(vec![proxy]);
        sim.node_mut::<WemoSwitch>(switch).allow_only(vec![proxy]);
        // Device pushes go to the proxy.
        sim.node_mut::<crate::hue::HueHub>(hub).observe(proxy);
        sim.node_mut::<WemoSwitch>(switch).observe(proxy);
        let p = sim.node_mut::<LocalProxy>(proxy);
        p.set_upstream(server);
        p.register(
            "hue_lamp_1",
            DeviceRoute::HueLamp {
                hub,
                username: "hueuser".into(),
            },
        );
        p.register("wemo_switch_1", DeviceRoute::Wemo { node: switch });
        (sim, hub, lamp, switch, proxy, server)
    }

    /// A pure pass-through node standing in for the gateway router.
    struct RouterStub;
    impl Node for RouterStub {}

    #[test]
    fn switch_press_reaches_lab_server_through_proxy() {
        let (mut sim, _, _, switch, proxy, server) = home();
        sim.with_node::<WemoSwitch, _>(switch, |s, ctx| s.press(ctx));
        sim.run_until_idle();
        let lab = sim.node_ref::<LabServer>(server);
        assert_eq!(lab.received.len(), 1);
        assert_eq!(lab.received[0].kind, "switched_on");
        assert_eq!(sim.node_ref::<LocalProxy>(proxy).events_confirmed, 1);
    }

    #[test]
    fn server_command_turns_on_lamp_via_proxy_and_hub() {
        let (mut sim, _, lamp, _, proxy, server) = home();
        sim.with_node::<LabServer, _>(server, |_, ctx| {
            let cmd = DeviceCommand::new("hue_lamp_1", "turn_on");
            let req = Request::post(COMMAND_PATH)
                .with_body(serde_json::to_vec(&ProxyCommand { command: cmd }).unwrap());
            ctx.send_request(proxy, req, Token(1), RequestOpts::timeout_secs(60));
        });
        sim.run_until_idle();
        assert!(sim.node_ref::<HueLamp>(lamp).state.on);
        assert_eq!(sim.node_ref::<LabServer>(server).command_status, Some(200));
        assert_eq!(sim.node_ref::<LocalProxy>(proxy).commands_done, 1);
    }

    #[test]
    fn command_for_unregistered_device_is_404() {
        let (mut sim, _, _, _, proxy, server) = home();
        sim.with_node::<LabServer, _>(server, |_, ctx| {
            let req = Request::post(COMMAND_PATH).with_body(
                serde_json::to_vec(&ProxyCommand {
                    command: DeviceCommand::new("ghost", "turn_on"),
                })
                .unwrap(),
            );
            ctx.send_request(proxy, req, Token(1), RequestOpts::timeout_secs(60));
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<LabServer>(server).command_status, Some(404));
    }

    #[test]
    fn unknown_op_is_400() {
        let (mut sim, _, _, _, proxy, server) = home();
        sim.with_node::<LabServer, _>(server, |_, ctx| {
            let req = Request::post(COMMAND_PATH).with_body(
                serde_json::to_vec(&ProxyCommand {
                    command: DeviceCommand::new("wemo_switch_1", "levitate"),
                })
                .unwrap(),
            );
            ctx.send_request(proxy, req, Token(1), RequestOpts::timeout_secs(60));
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<LabServer>(server).command_status, Some(400));
    }

    #[test]
    fn direct_device_access_from_outside_lan_is_refused() {
        // Sanity-check the security rule the proxy exists for: the lab
        // server cannot drive the hub directly even if routed.
        let (mut sim, hub, _, _, _proxy, server) = home();
        sim.with_node::<LabServer, _>(server, |_, ctx| {
            let req =
                Request::put("/api/hueuser/lights/hue_lamp_1/state").with_body(r#"{"on":true}"#);
            ctx.send_request(hub, req, Token(2), RequestOpts::timeout_secs(60));
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<LabServer>(server).command_status, Some(403));
    }
}
