//! A Google cloud backend hosting Gmail, Drive, and Sheets.
//!
//! The testbed "directly talks with Google using its App API" (§2.1). One
//! node hosts the three apps so that their *internal couplings* are
//! faithful — most importantly the spreadsheet **notification feature**
//! ("sends her an email if the spreadsheet is modified") that the paper
//! combines with an applet to demonstrate an *implicit infinite loop* (§4):
//! appending a row can itself generate a new-email trigger event.
//!
//! API surface (JSON over HTTP):
//!
//! | Method & path                            | Effect                          |
//! |------------------------------------------|---------------------------------|
//! | `POST /gmail/<user>/inject`              | external mail arrives           |
//! | `POST /gmail/<user>/send`                | user sends mail (delivered internally if the recipient is local) |
//! | `GET  /gmail/<user>/messages/<since>`    | inbox messages with `seq > since` |
//! | `POST /drive/<user>/files`               | save a file                     |
//! | `GET  /drive/<user>/files`               | list file names                 |
//! | `POST /sheets/<user>/<sheet>/rows`       | append a row                    |
//! | `POST /sheets/<user>/<sheet>/notify`     | toggle the notification feature |

use crate::events::DeviceEvent;
use serde::{Deserialize, Serialize};
use simnet::prelude::*;
use std::collections::HashMap;

/// One email in an inbox.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Email {
    /// Monotonic per-user sequence number.
    pub seq: u64,
    pub from: String,
    pub subject: String,
    pub body: String,
    /// Optional attachment as (name, content).
    #[serde(default)]
    pub attachment: Option<(String, String)>,
}

/// A named spreadsheet.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sheet {
    pub rows: Vec<Vec<String>>,
    /// The notification feature: email the owner on modification.
    pub notify: bool,
}

/// Per-user application state.
#[derive(Debug, Default)]
struct UserState {
    inbox: Vec<Email>,
    next_seq: u64,
    files: Vec<(String, String)>,
    sheets: HashMap<String, Sheet>,
}

/// The Google cloud node.
#[derive(Debug, Default)]
pub struct GoogleCloud {
    users: HashMap<String, UserState>,
    /// Observers notified of every app event (vendor-internal push the
    /// official Google services subscribe to).
    pub observers: Vec<NodeId>,
    /// Total emails delivered (for tests/metrics).
    pub emails_delivered: u64,
}

/// Sender address used by the Sheets notification feature.
pub const SHEETS_NOTIFY_FROM: &str = "sheets-noreply@google";

impl GoogleCloud {
    /// Create an empty cloud.
    pub fn new() -> Self {
        GoogleCloud::default()
    }

    /// Register an observer for app events.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    fn user(&mut self, user: &str) -> &mut UserState {
        self.users.entry(user.to_owned()).or_default()
    }

    /// Deliver an email into `user`'s inbox and emit events. Internal
    /// entry point shared by `inject`, `send`, and the Sheets notifier.
    pub fn deliver_email(
        &mut self,
        ctx: &mut Context<'_>,
        user: &str,
        from: &str,
        subject: &str,
        body: &str,
        attachment: Option<(String, String)>,
    ) -> u64 {
        let st = self.user(user);
        st.next_seq += 1;
        let seq = st.next_seq;
        let has_attachment = attachment.is_some();
        st.inbox.push(Email {
            seq,
            from: from.to_owned(),
            subject: subject.to_owned(),
            body: body.to_owned(),
            attachment,
        });
        self.emails_delivered += 1;
        ctx.trace("gmail.delivered", format!("{user} #{seq} from {from}"));
        let at = ctx.now().as_secs_f64() as u64;
        let mut events = vec![DeviceEvent::new("gmail", "new_email", user, at)
            .with_data("seq", seq.to_string())
            .with_data("from", from)
            .with_data("subject", subject)];
        if has_attachment {
            events.push(
                DeviceEvent::new("gmail", "new_attachment", user, at)
                    .with_data("seq", seq.to_string())
                    .with_data("subject", subject),
            );
        }
        for ev in events {
            for obs in self.observers.clone() {
                ctx.signal(obs, ev.to_bytes());
            }
        }
        seq
    }

    /// Inbox messages of `user` with `seq > since`.
    pub fn messages_since(&self, user: &str, since: u64) -> Vec<&Email> {
        self.users
            .get(user)
            .map(|st| st.inbox.iter().filter(|e| e.seq > since).collect())
            .unwrap_or_default()
    }

    /// All rows of a sheet.
    pub fn sheet(&self, user: &str, sheet: &str) -> Option<&Sheet> {
        self.users.get(user).and_then(|st| st.sheets.get(sheet))
    }

    /// Saved file names of a user.
    pub fn files(&self, user: &str) -> Vec<&str> {
        self.users
            .get(user)
            .map(|st| st.files.iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default()
    }

    /// Toggle the notification feature of a sheet out of band (what the
    /// user does in the spreadsheet UI per \[12\] of the paper).
    pub fn set_sheet_notify(&mut self, user: &str, sheet: &str, enabled: bool) {
        self.user(user)
            .sheets
            .entry(sheet.to_owned())
            .or_default()
            .notify = enabled;
    }

    /// Append a row; runs the notification feature if enabled.
    pub fn append_row(
        &mut self,
        ctx: &mut Context<'_>,
        user: &str,
        sheet_name: &str,
        cells: Vec<String>,
    ) -> usize {
        let st = self.user(user);
        let sheet = st.sheets.entry(sheet_name.to_owned()).or_default();
        sheet.rows.push(cells);
        let row_count = sheet.rows.len();
        let notify = sheet.notify;
        ctx.trace("sheets.row", format!("{user}/{sheet_name} row {row_count}"));
        let at = ctx.now().as_secs_f64() as u64;
        let ev = DeviceEvent::new("sheets", "row_added", user, at)
            .with_data("sheet", sheet_name)
            .with_data("rows", row_count.to_string());
        for obs in self.observers.clone() {
            ctx.signal(obs, ev.to_bytes());
        }
        if notify {
            // The documented notification feature: modification → email to
            // the owner. This is the hidden half of the implicit loop.
            self.deliver_email(
                ctx,
                user,
                SHEETS_NOTIFY_FROM,
                &format!("Changes in \"{sheet_name}\""),
                &format!("Row {row_count} was added to {sheet_name}."),
                None,
            );
        }
        row_count
    }
}

#[derive(Deserialize)]
struct InjectBody {
    from: String,
    subject: String,
    #[serde(default)]
    body: String,
    #[serde(default)]
    attachment: Option<(String, String)>,
}

#[derive(Deserialize)]
struct SendBody {
    to: String,
    subject: String,
    #[serde(default)]
    body: String,
}

#[derive(Deserialize)]
struct FileBody {
    name: String,
    #[serde(default)]
    content: String,
}

#[derive(Deserialize)]
struct RowBody {
    cells: Vec<String>,
}

#[derive(Deserialize)]
struct NotifyBody {
    enabled: bool,
}

impl Node for GoogleCloud {
    fn on_request(&mut self, ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        let segs: Vec<String> = req.path_segments().iter().map(|s| s.to_string()).collect();
        let segs_ref: Vec<&str> = segs.iter().map(String::as_str).collect();
        let reply = |status: u16, body: serde_json::Value| {
            HandlerResult::Reply(Response::with_status(status).with_body(body.to_string()))
        };
        match (req.method, segs_ref.as_slice()) {
            (Method::Post, ["gmail", user, "inject"]) => {
                let Ok(b) = serde_json::from_slice::<InjectBody>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                let seq = self.deliver_email(ctx, user, &b.from, &b.subject, &b.body, b.attachment);
                reply(200, serde_json::json!({ "seq": seq }))
            }
            (Method::Post, ["gmail", user, "send"]) => {
                let Ok(b) = serde_json::from_slice::<SendBody>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                // Local delivery when the recipient is on this cloud.
                let from = format!("{user}@gmail");
                let seq = self.deliver_email(ctx, &b.to, &from, &b.subject, &b.body, None);
                reply(200, serde_json::json!({ "seq": seq }))
            }
            (Method::Get, ["gmail", user, "messages", since]) => {
                let Ok(since) = since.parse::<u64>() else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                let msgs = self.messages_since(user, since);
                reply(200, serde_json::json!({ "messages": msgs }))
            }
            (Method::Post, ["drive", user, "files"]) => {
                let Ok(b) = serde_json::from_slice::<FileBody>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                let st = self.user(user);
                st.files.push((b.name.clone(), b.content));
                let count = st.files.len();
                ctx.trace("drive.saved", format!("{user}/{}", b.name));
                let at = ctx.now().as_secs_f64() as u64;
                let ev =
                    DeviceEvent::new("drive", "file_saved", *user, at).with_data("name", b.name);
                for obs in self.observers.clone() {
                    ctx.signal(obs, ev.to_bytes());
                }
                reply(200, serde_json::json!({ "count": count }))
            }
            (Method::Get, ["drive", user, "files"]) => {
                reply(200, serde_json::json!({ "files": self.files(user) }))
            }
            (Method::Post, ["sheets", user, sheet, "rows"]) => {
                let Ok(b) = serde_json::from_slice::<RowBody>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                let (user, sheet) = (user.to_string(), sheet.to_string());
                let rows = self.append_row(ctx, &user, &sheet, b.cells);
                reply(200, serde_json::json!({ "rows": rows }))
            }
            (Method::Post, ["sheets", user, sheet, "notify"]) => {
                let Ok(b) = serde_json::from_slice::<NotifyBody>(&req.body) else {
                    return HandlerResult::Reply(Response::bad_request());
                };
                let st = self.user(user);
                st.sheets.entry(sheet.to_string()).or_default().notify = b.enabled;
                reply(200, serde_json::json!({ "enabled": b.enabled }))
            }
            _ => HandlerResult::Reply(Response::not_found()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn cloud_sim() -> (Sim, NodeId) {
        let mut sim = Sim::new(21);
        let g = sim.add_node("google", GoogleCloud::new());
        (sim, g)
    }

    #[test]
    fn inject_and_query_messages() {
        let (mut sim, g) = cloud_sim();
        sim.with_node::<GoogleCloud, _>(g, |gc, ctx| {
            gc.deliver_email(ctx, "author", "a@x", "hello", "body", None);
            gc.deliver_email(ctx, "author", "b@y", "world", "body", None);
        });
        let gc = sim.node_ref::<GoogleCloud>(g);
        assert_eq!(gc.messages_since("author", 0).len(), 2);
        assert_eq!(gc.messages_since("author", 1).len(), 1);
        assert_eq!(gc.messages_since("author", 2).len(), 0);
        assert_eq!(gc.messages_since("stranger", 0).len(), 0);
    }

    #[test]
    fn attachment_emits_second_event() {
        #[derive(Default)]
        struct Obs {
            kinds: Vec<String>,
        }
        impl Node for Obs {
            fn on_signal(&mut self, _c: &mut Context<'_>, _f: NodeId, p: Bytes) {
                if let Some(e) = DeviceEvent::from_bytes(&p) {
                    self.kinds.push(e.kind);
                }
            }
        }
        let (mut sim, g) = cloud_sim();
        let obs = sim.add_node("obs", Obs::default());
        sim.link(g, obs, LinkSpec::datacenter());
        sim.node_mut::<GoogleCloud>(g).observe(obs);
        sim.with_node::<GoogleCloud, _>(g, |gc, ctx| {
            gc.deliver_email(
                ctx,
                "author",
                "a@x",
                "report",
                "see attached",
                Some(("report.pdf".into(), "PDFDATA".into())),
            );
        });
        sim.run_until_idle();
        assert_eq!(
            sim.node_ref::<Obs>(obs).kinds,
            vec!["new_email", "new_attachment"]
        );
    }

    #[test]
    fn sheet_rows_append_and_count() {
        let (mut sim, g) = cloud_sim();
        sim.with_node::<GoogleCloud, _>(g, |gc, ctx| {
            assert_eq!(gc.append_row(ctx, "author", "songs", vec!["a".into()]), 1);
            assert_eq!(gc.append_row(ctx, "author", "songs", vec!["b".into()]), 2);
        });
        let sheet = sim
            .node_ref::<GoogleCloud>(g)
            .sheet("author", "songs")
            .unwrap();
        assert_eq!(sheet.rows.len(), 2);
    }

    #[test]
    fn notification_feature_emails_the_owner() {
        let (mut sim, g) = cloud_sim();
        sim.with_node::<GoogleCloud, _>(g, |gc, ctx| {
            gc.user("author")
                .sheets
                .entry("log".into())
                .or_default()
                .notify = true;
            gc.append_row(ctx, "author", "log", vec!["x".into()]);
        });
        let gc = sim.node_ref::<GoogleCloud>(g);
        let msgs = gc.messages_since("author", 0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].from, SHEETS_NOTIFY_FROM);
        assert!(msgs[0].subject.contains("log"));
    }

    #[test]
    fn notification_disabled_sends_nothing() {
        let (mut sim, g) = cloud_sim();
        sim.with_node::<GoogleCloud, _>(g, |gc, ctx| {
            gc.append_row(ctx, "author", "log", vec!["x".into()]);
        });
        assert_eq!(
            sim.node_ref::<GoogleCloud>(g)
                .messages_since("author", 0)
                .len(),
            0
        );
    }

    struct Poster {
        target: NodeId,
        path: String,
        body: String,
        status: Option<u16>,
    }
    impl Node for Poster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let req = Request::post(self.path.clone()).with_body(self.body.clone());
            ctx.send_request(self.target, req, Token(0), RequestOpts::default());
        }
        fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
            self.status = Some(resp.status);
        }
    }

    #[test]
    fn http_api_inject_send_drive_sheets() {
        let (mut sim, g) = cloud_sim();
        for (i, (path, body)) in [
            ("/gmail/author/inject", r#"{"from":"x@y","subject":"s"}"#),
            ("/gmail/author/send", r#"{"to":"friend","subject":"fwd"}"#),
            ("/drive/author/files", r#"{"name":"f.txt","content":"c"}"#),
            ("/sheets/author/songs/rows", r#"{"cells":["t"]}"#),
            ("/sheets/author/songs/notify", r#"{"enabled":true}"#),
        ]
        .iter()
        .enumerate()
        {
            let p = sim.add_node(
                format!("p{i}"),
                Poster {
                    target: g,
                    path: path.to_string(),
                    body: body.to_string(),
                    status: None,
                },
            );
            sim.link(p, g, LinkSpec::wan());
            sim.run_until_idle();
            assert_eq!(sim.node_ref::<Poster>(p).status, Some(200), "path {path}");
        }
        let gc = sim.node_ref::<GoogleCloud>(g);
        assert_eq!(gc.messages_since("author", 0).len(), 1);
        assert_eq!(gc.messages_since("friend", 0).len(), 1);
        assert_eq!(gc.files("author"), vec!["f.txt"]);
        assert!(gc.sheet("author", "songs").unwrap().notify);
    }

    #[test]
    fn bad_bodies_are_400() {
        let (mut sim, g) = cloud_sim();
        let p = sim.add_node(
            "p",
            Poster {
                target: g,
                path: "/gmail/author/inject".into(),
                body: "not json".into(),
                status: None,
            },
        );
        sim.link(p, g, LinkSpec::wan());
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Poster>(p).status, Some(400));
    }
}
