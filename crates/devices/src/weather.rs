//! A weather backend.
//!
//! Powers the classic IFTTT applet of §2 ("automatically turn your hue
//! lights blue whenever it starts to rain"): holds the current condition,
//! answers REST queries, and pushes condition changes to observers.

use crate::events::DeviceEvent;
use serde::{Deserialize, Serialize};
use simnet::prelude::*;

/// Weather conditions the backend reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Condition {
    Clear,
    Cloudy,
    Rain,
    Snow,
}

impl Condition {
    /// Stable textual name (matches the serde rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            Condition::Clear => "clear",
            Condition::Cloudy => "cloudy",
            Condition::Rain => "rain",
            Condition::Snow => "snow",
        }
    }
}

/// The weather service backend node.
#[derive(Debug)]
pub struct WeatherStation {
    /// Current condition.
    pub condition: Condition,
    /// Observers notified on every change.
    pub observers: Vec<NodeId>,
    /// Number of condition changes (for tests).
    pub changes: u64,
}

impl Default for WeatherStation {
    fn default() -> Self {
        WeatherStation {
            condition: Condition::Clear,
            observers: Vec::new(),
            changes: 0,
        }
    }
}

impl WeatherStation {
    /// Create a station reporting clear weather.
    pub fn new() -> Self {
        WeatherStation::default()
    }

    /// Register an observer for condition changes.
    pub fn observe(&mut self, node: NodeId) {
        self.observers.push(node);
    }

    /// Change the weather (the experiment harness plays god).
    pub fn set_condition(&mut self, ctx: &mut Context<'_>, c: Condition) {
        if self.condition == c {
            return;
        }
        self.condition = c;
        self.changes += 1;
        ctx.trace("weather.change", c.as_str().to_string());
        let ev = DeviceEvent::new(
            "weather",
            format!("weather_{}", c.as_str()),
            "*",
            ctx.now().as_secs_f64() as u64,
        );
        for obs in self.observers.clone() {
            ctx.signal(obs, ev.to_bytes());
        }
    }
}

impl Node for WeatherStation {
    fn on_request(&mut self, _ctx: &mut Context<'_>, req: &Request) -> HandlerResult {
        if req.path == "/v1/current" && req.method == Method::Get {
            let body = serde_json::json!({ "condition": self.condition });
            HandlerResult::Reply(Response::ok().with_body(body.to_string()))
        } else {
            HandlerResult::Reply(Response::not_found())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn set_condition_dedups_and_counts() {
        let mut sim = Sim::new(1);
        let w = sim.add_node("weather", WeatherStation::new());
        sim.with_node::<WeatherStation, _>(w, |s, ctx| {
            s.set_condition(ctx, Condition::Rain);
            s.set_condition(ctx, Condition::Rain);
            s.set_condition(ctx, Condition::Clear);
        });
        assert_eq!(sim.node_ref::<WeatherStation>(w).changes, 2);
    }

    #[test]
    fn observers_learn_of_rain() {
        #[derive(Default)]
        struct Obs {
            kinds: Vec<String>,
        }
        impl Node for Obs {
            fn on_signal(&mut self, _c: &mut Context<'_>, _f: NodeId, p: Bytes) {
                if let Some(e) = DeviceEvent::from_bytes(&p) {
                    self.kinds.push(e.kind);
                }
            }
        }
        let mut sim = Sim::new(2);
        let w = sim.add_node("weather", WeatherStation::new());
        let obs = sim.add_node("obs", Obs::default());
        sim.link(w, obs, LinkSpec::wan());
        sim.node_mut::<WeatherStation>(w).observe(obs);
        sim.with_node::<WeatherStation, _>(w, |s, ctx| s.set_condition(ctx, Condition::Rain));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Obs>(obs).kinds, vec!["weather_rain"]);
    }

    #[test]
    fn rest_api_reports_condition() {
        struct Getter {
            target: NodeId,
            body: Option<String>,
        }
        impl Node for Getter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_request(
                    self.target,
                    Request::get("/v1/current"),
                    Token(0),
                    RequestOpts::default(),
                );
            }
            fn on_response(&mut self, _c: &mut Context<'_>, _t: Token, resp: Response) {
                self.body = Some(String::from_utf8_lossy(&resp.body).into_owned());
            }
        }
        let mut sim = Sim::new(3);
        let w = sim.add_node("weather", WeatherStation::new());
        let g = sim.add_node(
            "g",
            Getter {
                target: w,
                body: None,
            },
        );
        sim.link(g, w, LinkSpec::wan());
        sim.run_until_idle();
        assert!(sim
            .node_ref::<Getter>(g)
            .body
            .as_ref()
            .unwrap()
            .contains("clear"));
    }
}
