//! Typed payloads for every [`FrameType`], with allocation-free
//! encoding and **apply-style** decoding.
//!
//! The hot-path frames (`MetricsDelta`, `AttributionDelta`) never build
//! an intermediate message object: the worker encodes straight out of
//! its per-cell [`FleetMetrics`] accumulator via the canonical
//! `wire_counters()` / `wire_histograms()` arrays, and the coordinator
//! decodes straight *into* its merge targets with
//! [`apply_metrics_delta`] / [`apply_attribution_delta`]. Both
//! directions walk the same accessor arrays, so the layout cannot drift
//! between encoder and decoder.
//!
//! Apply functions are **transactional**: every payload is fully
//! validated (bounds, ordering, summary consistency) before the first
//! merge touches the target. A malformed frame therefore leaves the
//! coordinator's accumulators untouched — which matters because the
//! rejoin path re-runs uncommitted cells, and a half-applied delta
//! would double-count.

use crate::frame::{FrameBuf, FrameType, PayloadReader, WireError};
use fleet::shard::CellSpec;
use fleet::{AttributionStages, FleetConfig, FleetMetrics, Histogram};

/// Fixed width of the counter section — must equal
/// `FleetMetrics::wire_counters().len()` (a unit test pins this). Both
/// sides validate counter indices against it, so a frame from a build
/// with a *newer* counter set fails loudly instead of merging into the
/// wrong instrument.
const N_COUNTERS: usize = 35;

/// `worker_id` + `cell`: the routing prefix shared by both delta frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHead {
    pub worker_id: u32,
    pub cell: u64,
}

/// Worker → coordinator, first frame on every connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    pub worker_id: u32,
    /// OS process id, for crash diagnostics only.
    pub pid: u32,
}

/// Coordinator → worker: the resolved configuration (JSON — control
/// plane, sent once) and the worker's contiguous cell range.
#[derive(Debug)]
pub struct ConfigPush {
    pub config: FleetConfig,
    pub cells: Vec<CellSpec>,
}

/// Worker → coordinator progress beat / heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressBeat {
    pub worker_id: u32,
    pub cells_done: u32,
    pub cells_total: u32,
    pub users_done: u64,
}

/// Worker → coordinator, after `Drain`: execution facts plus the digest
/// handshake value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalReport {
    pub worker_id: u32,
    pub cells: u64,
    pub users: u64,
    pub sim_events: u64,
    pub wall_micros: u64,
    /// Heap allocations in *this worker process* (0 unless built with
    /// `alloc-count`); the coordinator sums these instead of measuring
    /// its own process, so the distributed alloc gate reflects
    /// simulation work.
    pub allocs: u64,
    pub alloc_bytes: u64,
    /// FNV-1a of the worker-local merged metrics JSON
    /// ([`fleet::fnv1a`]); the coordinator recomputes it from the deltas
    /// it committed for this worker and refuses the run on mismatch.
    pub digest: u64,
}

/// A fully-decoded frame. Production paths use the `apply_*` functions
/// directly; this owned form exists for tests and tooling, and decodes
/// through the same `apply_*` code, so exercising it exercises the real
/// decoder.
#[derive(Debug)]
pub enum Frame {
    Hello(Hello),
    ConfigPush(ConfigPush),
    Progress(ProgressBeat),
    // Boxed: the accumulators dwarf every other variant, and this owned
    // form travels through test helpers by value.
    MetricsDelta {
        head: DeltaHead,
        metrics: Box<FleetMetrics>,
    },
    AttributionDelta {
        head: DeltaHead,
        stages: Box<AttributionStages>,
    },
    Drain,
    FinalReport(FinalReport),
}

impl Frame {
    /// Decode a received payload of known `ftype`. Never panics on
    /// arbitrary bytes.
    pub fn decode(ftype: FrameType, payload: &[u8]) -> Result<Frame, WireError> {
        Ok(match ftype {
            FrameType::Hello => Frame::Hello(decode_hello(payload)?),
            FrameType::ConfigPush => Frame::ConfigPush(decode_config_push(payload)?),
            FrameType::Progress => Frame::Progress(decode_progress(payload)?),
            FrameType::MetricsDelta => {
                let metrics = Box::new(FleetMetrics::default());
                let head = apply_metrics_delta(payload, &metrics)?;
                Frame::MetricsDelta { head, metrics }
            }
            FrameType::AttributionDelta => {
                let stages = Box::new(AttributionStages::default());
                let head = apply_attribution_delta(payload, &stages)?;
                Frame::AttributionDelta { head, stages }
            }
            FrameType::Drain => {
                if !payload.is_empty() {
                    return Err(WireError::BadPayload {
                        context: "drain carries no payload",
                    });
                }
                Frame::Drain
            }
            FrameType::FinalReport => Frame::FinalReport(decode_final_report(payload)?),
        })
    }
}

// ---------------------------------------------------------------- hello

pub fn encode_hello(fb: &mut FrameBuf, msg: &Hello) {
    fb.begin(FrameType::Hello);
    fb.put_u32(msg.worker_id);
    fb.put_u32(msg.pid);
}

pub fn decode_hello(payload: &[u8]) -> Result<Hello, WireError> {
    let mut r = PayloadReader::new(payload);
    let msg = Hello {
        worker_id: r.u32("hello worker_id")?,
        pid: r.u32("hello pid")?,
    };
    r.expect_end("trailing bytes after hello")?;
    Ok(msg)
}

// ---------------------------------------------------------- config push

pub fn encode_config_push(fb: &mut FrameBuf, config: &FleetConfig, cells: &[CellSpec]) {
    fb.begin(FrameType::ConfigPush);
    let json = serde_json::to_string(config).expect("fleet config serializes");
    fb.put_u32(json.len() as u32);
    fb.put_bytes(json.as_bytes());
    fb.put_u32(cells.len() as u32);
    for c in cells {
        fb.put_u64(c.cell);
        fb.put_u64(c.first_user);
        fb.put_u64(c.users);
    }
}

pub fn decode_config_push(payload: &[u8]) -> Result<ConfigPush, WireError> {
    let mut r = PayloadReader::new(payload);
    let json_len = r.u32("config json length")? as usize;
    let json = r.bytes(json_len, "config json")?;
    let json = std::str::from_utf8(json).map_err(|_| WireError::BadPayload {
        context: "config json is not utf-8",
    })?;
    let config: FleetConfig = serde_json::from_str(json).map_err(|_| WireError::BadPayload {
        context: "config json does not parse",
    })?;
    let n = r.u32("cell count")? as usize;
    // 24 bytes per cell must fit in what remains — checked implicitly by
    // the bounded reads below, so a huge count fails fast as Truncated.
    let mut cells = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        cells.push(CellSpec {
            cell: r.u64("cell id")?,
            first_user: r.u64("cell first_user")?,
            users: r.u64("cell users")?,
        });
    }
    r.expect_end("trailing bytes after config push")?;
    Ok(ConfigPush { config, cells })
}

// ------------------------------------------------------------- progress

pub fn encode_progress(fb: &mut FrameBuf, msg: &ProgressBeat) {
    fb.begin(FrameType::Progress);
    fb.put_u32(msg.worker_id);
    fb.put_u32(msg.cells_done);
    fb.put_u32(msg.cells_total);
    fb.put_u64(msg.users_done);
}

pub fn decode_progress(payload: &[u8]) -> Result<ProgressBeat, WireError> {
    let mut r = PayloadReader::new(payload);
    let msg = ProgressBeat {
        worker_id: r.u32("progress worker_id")?,
        cells_done: r.u32("progress cells_done")?,
        cells_total: r.u32("progress cells_total")?,
        users_done: r.u64("progress users_done")?,
    };
    r.expect_end("trailing bytes after progress")?;
    Ok(msg)
}

// ------------------------------------------------------------ histogram

/// Histogram wire form: `count:u64`, then — only when nonzero —
/// `sum:u64 min:u64 max:u64 nbuckets:u16 (index:u16 count:u64)*`, with
/// bucket indices strictly increasing and their counts summing to
/// `count`. Walked directly off the atomics; no snapshot allocation.
fn put_histogram(fb: &mut FrameBuf, h: &Histogram) {
    let count = h.count();
    fb.put_u64(count);
    if count == 0 {
        return;
    }
    fb.put_u64(h.sum());
    fb.put_u64(h.min());
    fb.put_u64(h.max());
    let mut nonzero = 0u16;
    h.for_each_bucket(|_, _| nonzero += 1);
    fb.put_u16(nonzero);
    h.for_each_bucket(|i, c| {
        fb.put_u16(i as u16);
        fb.put_u64(c);
    });
}

/// One validate-or-apply walk over a histogram section. With
/// `target: None` nothing is mutated (the validation pass); with a
/// target, buckets and summary merge into it. Both passes run the same
/// code, so what was validated is exactly what gets applied.
fn walk_histogram(r: &mut PayloadReader<'_>, target: Option<&Histogram>) -> Result<(), WireError> {
    let count = r.u64("histogram count")?;
    if count == 0 {
        return Ok(());
    }
    let sum = r.u64("histogram sum")?;
    let min = r.u64("histogram min")?;
    let max = r.u64("histogram max")?;
    if min > max {
        return Err(WireError::BadPayload {
            context: "histogram min exceeds max",
        });
    }
    let nbuckets = r.u16("histogram bucket count")?;
    let mut last: Option<u16> = None;
    let mut total = 0u64;
    for _ in 0..nbuckets {
        let idx = r.u16("bucket index")?;
        let n = r.u64("bucket count")?;
        if (idx as usize) >= fleet::metrics::BUCKETS {
            return Err(WireError::BadPayload {
                context: "bucket index out of range",
            });
        }
        if last.is_some_and(|l| idx <= l) {
            return Err(WireError::BadPayload {
                context: "bucket indices not strictly increasing",
            });
        }
        if n == 0 {
            return Err(WireError::BadPayload {
                context: "zero-count bucket entry",
            });
        }
        last = Some(idx);
        total = total.checked_add(n).ok_or(WireError::BadPayload {
            context: "bucket counts overflow",
        })?;
        if let Some(h) = target {
            let ok = h.merge_bucket(idx as usize, n);
            debug_assert!(ok, "validated index rejected by merge_bucket");
        }
    }
    if total != count {
        return Err(WireError::BadPayload {
            context: "bucket counts disagree with summary count",
        });
    }
    if let Some(h) = target {
        h.merge_summary(count, sum, min, max);
    }
    Ok(())
}

// -------------------------------------------------------- metrics delta

/// Encode one finished cell's metrics. Counter section: `n:u8`, then `n`
/// `(index:u8, value:u64)` pairs over the nonzero entries of
/// [`FleetMetrics::wire_counters`], indices strictly increasing; then
/// the two [`FleetMetrics::wire_histograms`] sections.
pub fn encode_metrics_delta(fb: &mut FrameBuf, head: DeltaHead, m: &FleetMetrics) {
    fb.begin(FrameType::MetricsDelta);
    fb.put_u32(head.worker_id);
    fb.put_u64(head.cell);
    let counters = m.wire_counters();
    let nonzero = counters.iter().filter(|c| c.get() > 0).count() as u8;
    fb.put_u8(nonzero);
    for (i, c) in counters.iter().enumerate() {
        let v = c.get();
        if v > 0 {
            fb.put_u8(i as u8);
            fb.put_u64(v);
        }
    }
    for h in m.wire_histograms() {
        put_histogram(fb, h);
    }
}

fn walk_metrics_delta(
    payload: &[u8],
    target: Option<&FleetMetrics>,
) -> Result<DeltaHead, WireError> {
    let mut r = PayloadReader::new(payload);
    let head = DeltaHead {
        worker_id: r.u32("delta worker_id")?,
        cell: r.u64("delta cell")?,
    };
    let n = r.u8("counter count")?;
    let mut last: Option<u8> = None;
    for _ in 0..n {
        let idx = r.u8("counter index")?;
        let v = r.u64("counter value")?;
        if (idx as usize) >= N_COUNTERS {
            return Err(WireError::BadPayload {
                context: "counter index out of range",
            });
        }
        if last.is_some_and(|l| idx <= l) {
            return Err(WireError::BadPayload {
                context: "counter indices not strictly increasing",
            });
        }
        if v == 0 {
            return Err(WireError::BadPayload {
                context: "zero-value counter entry",
            });
        }
        last = Some(idx);
        if let Some(m) = target {
            m.wire_counters()[idx as usize].add(v);
        }
    }
    let n_hists = target.map_or(2, |m| m.wire_histograms().len());
    for i in 0..n_hists {
        walk_histogram(&mut r, target.map(|m| m.wire_histograms()[i]))?;
    }
    r.expect_end("trailing bytes after metrics delta")?;
    Ok(head)
}

/// Validate `payload` completely, then merge it into `target`. On any
/// error the target is untouched.
pub fn apply_metrics_delta(payload: &[u8], target: &FleetMetrics) -> Result<DeltaHead, WireError> {
    walk_metrics_delta(payload, None)?;
    walk_metrics_delta(payload, Some(target))
}

/// Validate without applying — the coordinator's first look at a delta
/// whose commit is deferred (and the cheap path for duplicates).
pub fn validate_metrics_delta(payload: &[u8]) -> Result<DeltaHead, WireError> {
    walk_metrics_delta(payload, None)
}

// ---------------------------------------------------- attribution delta

/// Encode one finished cell's per-stage attribution: `unmatched:u64`,
/// then the six [`AttributionStages::wire_histograms`] sections.
pub fn encode_attribution_delta(fb: &mut FrameBuf, head: DeltaHead, a: &AttributionStages) {
    fb.begin(FrameType::AttributionDelta);
    fb.put_u32(head.worker_id);
    fb.put_u64(head.cell);
    fb.put_u64(a.unmatched.get());
    for h in a.wire_histograms() {
        put_histogram(fb, h);
    }
}

fn walk_attribution_delta(
    payload: &[u8],
    target: Option<&AttributionStages>,
) -> Result<DeltaHead, WireError> {
    let mut r = PayloadReader::new(payload);
    let head = DeltaHead {
        worker_id: r.u32("attr worker_id")?,
        cell: r.u64("attr cell")?,
    };
    let unmatched = r.u64("attr unmatched")?;
    if let Some(a) = target {
        a.unmatched.add(unmatched);
    }
    let n_hists = target.map_or(6, |a| a.wire_histograms().len());
    for i in 0..n_hists {
        walk_histogram(&mut r, target.map(|a| a.wire_histograms()[i]))?;
    }
    r.expect_end("trailing bytes after attribution delta")?;
    Ok(head)
}

/// Validate `payload` completely, then merge it into `target`. On any
/// error the target is untouched.
pub fn apply_attribution_delta(
    payload: &[u8],
    target: &AttributionStages,
) -> Result<DeltaHead, WireError> {
    walk_attribution_delta(payload, None)?;
    walk_attribution_delta(payload, Some(target))
}

/// Validate without applying — used when the coordinator stashes an
/// attribution payload until its cell's `MetricsDelta` commits.
pub fn validate_attribution_delta(payload: &[u8]) -> Result<DeltaHead, WireError> {
    walk_attribution_delta(payload, None)
}

// ---------------------------------------------------------------- drain

pub fn encode_drain(fb: &mut FrameBuf) {
    fb.begin(FrameType::Drain);
}

// --------------------------------------------------------- final report

pub fn encode_final_report(fb: &mut FrameBuf, msg: &FinalReport) {
    fb.begin(FrameType::FinalReport);
    fb.put_u32(msg.worker_id);
    fb.put_u64(msg.cells);
    fb.put_u64(msg.users);
    fb.put_u64(msg.sim_events);
    fb.put_u64(msg.wall_micros);
    fb.put_u64(msg.allocs);
    fb.put_u64(msg.alloc_bytes);
    fb.put_u64(msg.digest);
}

pub fn decode_final_report(payload: &[u8]) -> Result<FinalReport, WireError> {
    let mut r = PayloadReader::new(payload);
    let msg = FinalReport {
        worker_id: r.u32("final worker_id")?,
        cells: r.u64("final cells")?,
        users: r.u64("final users")?,
        sim_events: r.u64("final sim_events")?,
        wall_micros: r.u64("final wall_micros")?,
        allocs: r.u64("final allocs")?,
        alloc_bytes: r.u64("final alloc_bytes")?,
        digest: r.u64("final digest")?,
    };
    r.expect_end("trailing bytes after final report")?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_counter_width_matches_the_canonical_array() {
        // N_COUNTERS is the decoder's bounds check; it must track the
        // accessor array, or a newly added counter would be rejected.
        assert_eq!(FleetMetrics::default().wire_counters().len(), N_COUNTERS);
        assert!(N_COUNTERS <= u8::MAX as usize + 1, "indices fit in u8");
        assert_eq!(FleetMetrics::default().wire_histograms().len(), 2);
        assert_eq!(AttributionStages::default().wire_histograms().len(), 6);
    }

    #[test]
    fn a_failed_apply_leaves_the_target_untouched() {
        let m = FleetMetrics::default();
        m.polls_sent.add(3);
        m.t2a_micros.record(1234);
        let mut fb = FrameBuf::new();
        encode_metrics_delta(
            &mut fb,
            DeltaHead {
                worker_id: 1,
                cell: 9,
            },
            &m,
        );
        let frame = fb.finish().to_vec();
        // Corrupt the tail so validation fails after the counters parse.
        let mut bad = frame[crate::frame::HEADER_LEN..].to_vec();
        bad.truncate(bad.len() - 1);

        let target = FleetMetrics::default();
        assert!(apply_metrics_delta(&bad, &target).is_err());
        assert_eq!(target, FleetMetrics::default(), "partial apply leaked");
    }
}
