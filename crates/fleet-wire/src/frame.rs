//! The frame layer: a length-prefixed, version-tagged binary framing for
//! coordinator↔worker TCP streams (DESIGN.md §13).
//!
//! Every frame is an 8-byte header followed by `len` payload bytes:
//!
//! ```text
//! offset  size  field
//!      0     1  protocol version (PROTOCOL_VERSION)
//!      1     1  frame type       (FrameType as u8)
//!      2     2  flags, little-endian (must be zero in version 1)
//!      4     4  payload length, little-endian (≤ MAX_PAYLOAD)
//! ```
//!
//! Two properties matter more than the layout itself:
//!
//! * **Decoding never panics.** Every malformed input — truncated
//!   header or payload, oversized length prefix, unknown version or
//!   frame type, garbage payload bytes — surfaces as a typed
//!   [`WireError`]; a hostile or corrupt peer cannot take the
//!   coordinator down. `fleet-wire/tests/codec.rs` pins this.
//! * **The hot path does not allocate per frame.** [`FrameBuf`] encodes
//!   header and payload into one reusable `Vec<u8>` (recycled through
//!   the worker's buffer pool), and [`read_frame`] reads payloads into a
//!   caller-owned buffer that amortizes to its high-water mark.

use std::io::{self, Read, Write};

/// Protocol version tag carried in every frame header. Bumped whenever
/// any payload layout changes; peers reject mismatches outright rather
/// than guessing.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes in a frame header.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a payload. The largest legitimate frame is a
/// `ConfigPush` carrying the cell list — 24 bytes per cell, so ~480 KiB
/// for the million-user run's 20k cells. 16 MiB leaves two orders of
/// magnitude of headroom while making a corrupt length prefix (which
/// would otherwise demand up to 4 GiB) fail fast.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Every frame the protocol speaks. The discriminants are the on-wire
/// bytes — stable, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Worker → coordinator, once, on connect: who am I.
    Hello = 1,
    /// Coordinator → worker: the resolved run configuration plus the
    /// contiguous cell range this worker owns.
    ConfigPush = 2,
    /// Worker → coordinator: progress beat; doubles as the heartbeat
    /// that keeps crash detection from false-tripping on long cells.
    Progress = 3,
    /// Worker → coordinator: one finished cell's metrics, exactly
    /// mergeable. The coordinator's commit point for that cell.
    MetricsDelta = 4,
    /// Worker → coordinator: one finished cell's per-stage T2A
    /// attribution. Sent *before* the cell's `MetricsDelta` and stashed
    /// until it, so a cell commits atomically or not at all.
    AttributionDelta = 5,
    /// Coordinator → worker: all cells are committed; report and exit.
    Drain = 6,
    /// Worker → coordinator: execution facts plus the worker-local
    /// digest for the end-of-run handshake.
    FinalReport = 7,
}

impl FrameType {
    /// Decode a wire byte; `None` for unassigned values.
    pub fn from_u8(b: u8) -> Option<FrameType> {
        match b {
            1 => Some(FrameType::Hello),
            2 => Some(FrameType::ConfigPush),
            3 => Some(FrameType::Progress),
            4 => Some(FrameType::MetricsDelta),
            5 => Some(FrameType::AttributionDelta),
            6 => Some(FrameType::Drain),
            7 => Some(FrameType::FinalReport),
            _ => None,
        }
    }
}

/// Everything that can go wrong on the wire. Decoders return these —
/// they never panic on peer-controlled bytes.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes read timeouts, which the
    /// coordinator treats as a crashed worker).
    Io(io::Error),
    /// The stream ended inside a frame, or a payload declared more bytes
    /// than it contains.
    Truncated { context: &'static str },
    /// A length prefix exceeded [`MAX_PAYLOAD`].
    Oversized { len: u32 },
    /// The header's version byte is not [`PROTOCOL_VERSION`].
    BadVersion { got: u8 },
    /// The header's frame-type byte is unassigned.
    BadFrameType { got: u8 },
    /// The payload decoded but its contents are invalid (bad index,
    /// trailing bytes, malformed JSON, nonzero flags, …).
    BadPayload { context: &'static str },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Truncated { context } => write!(f, "truncated frame: {context}"),
            WireError::Oversized { len } => {
                write!(f, "length prefix {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "protocol version {got} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::BadFrameType { got } => write!(f, "unknown frame type {got}"),
            WireError::BadPayload { context } => write!(f, "malformed payload: {context}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // `read_exact` reports a mid-frame disconnect as UnexpectedEof;
        // that is a truncation fact, not a socket configuration problem.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                context: "stream ended mid-frame",
            }
        } else {
            WireError::Io(e)
        }
    }
}

/// A reusable encode buffer holding exactly one frame (header +
/// payload). `begin` → `put_*` → `finish` yields the bytes to write;
/// the buffer's capacity survives across frames, so steady-state
/// encoding performs zero allocations.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Wrap an existing vector (e.g. one recycled from the worker's
    /// buffer pool), keeping its capacity.
    pub fn from_vec(mut buf: Vec<u8>) -> FrameBuf {
        buf.clear();
        FrameBuf { buf }
    }

    /// Start a frame of `ftype`; the length field is patched by
    /// [`FrameBuf::finish`].
    pub fn begin(&mut self, ftype: FrameType) {
        self.buf.clear();
        self.buf.push(PROTOCOL_VERSION);
        self.buf.push(ftype as u8);
        self.buf.extend_from_slice(&0u16.to_le_bytes()); // flags
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // len placeholder
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Patch the length field and return the complete frame.
    ///
    /// # Panics
    /// Panics if the payload outgrew [`MAX_PAYLOAD`] — encoder-side
    /// frames are built from our own data, so that is a programming
    /// error, not a peer-input error.
    pub fn finish(&mut self) -> &[u8] {
        let len = self.buf.len() - HEADER_LEN;
        assert!(
            len <= MAX_PAYLOAD as usize,
            "encoded frame exceeds MAX_PAYLOAD"
        );
        self.buf[4..8].copy_from_slice(&(len as u32).to_le_bytes());
        &self.buf
    }

    /// Take the underlying vector (for handing a finished frame to the
    /// writer thread); the frame must be [`FrameBuf::finish`]ed first.
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

/// Read one frame into `payload` (cleared and reused). Returns the frame
/// type, or `Ok(None)` on a clean end-of-stream *between* frames — a
/// disconnect inside a frame is [`WireError::Truncated`].
pub fn read_frame(
    r: &mut impl Read,
    payload: &mut Vec<u8>,
) -> Result<Option<FrameType>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "peer hung up between frames" (clean, Ok(None)) from
    // "peer hung up inside a header" (truncation): probe one byte first.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r, payload);
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    r.read_exact(&mut header[1..])?;

    if header[0] != PROTOCOL_VERSION {
        return Err(WireError::BadVersion { got: header[0] });
    }
    let ftype = FrameType::from_u8(header[1]).ok_or(WireError::BadFrameType { got: header[1] })?;
    if u16::from_le_bytes([header[2], header[3]]) != 0 {
        return Err(WireError::BadPayload {
            context: "nonzero flags in version-1 frame",
        });
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)?;
    Ok(Some(ftype))
}

/// Write one finished frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), WireError> {
    w.write_all(frame).map_err(WireError::Io)
}

/// A bounds-checked cursor over a received payload; every getter returns
/// [`WireError::Truncated`] instead of panicking when the payload runs
/// short.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Truncated { context })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, context)
    }

    /// Assert the payload is fully consumed — trailing bytes mean the
    /// peer and we disagree about the layout, which must not pass
    /// silently.
    pub fn expect_end(&self, context: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload { context })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_types_round_trip_and_unknowns_are_rejected() {
        for t in [
            FrameType::Hello,
            FrameType::ConfigPush,
            FrameType::Progress,
            FrameType::MetricsDelta,
            FrameType::AttributionDelta,
            FrameType::Drain,
            FrameType::FinalReport,
        ] {
            assert_eq!(FrameType::from_u8(t as u8), Some(t));
        }
        assert_eq!(FrameType::from_u8(0), None);
        assert_eq!(FrameType::from_u8(8), None);
        assert_eq!(FrameType::from_u8(255), None);
    }

    #[test]
    fn encode_read_round_trip_reuses_buffers() {
        let mut fb = FrameBuf::new();
        fb.begin(FrameType::Progress);
        fb.put_u32(7);
        fb.put_u64(0xdead_beef);
        let frame = fb.finish().to_vec();

        let mut payload = Vec::new();
        let mut cursor = io::Cursor::new(&frame);
        let ftype = read_frame(&mut cursor, &mut payload).unwrap().unwrap();
        assert_eq!(ftype, FrameType::Progress);
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), 0xdead_beef);
        r.expect_end("tail").unwrap();

        // Clean EOF between frames is Ok(None), not an error.
        assert!(read_frame(&mut cursor, &mut payload).unwrap().is_none());
    }

    #[test]
    fn payload_reader_reports_truncation_not_panic() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u16("head").unwrap(), 0x0201);
        assert!(matches!(r.u64("tail"), Err(WireError::Truncated { .. })));
    }
}
