//! `fleet-shard` — one distributed fleet worker process.
//!
//! Spawned by the coordinator (`ifttt-lab fleet --distributed N`), never
//! run by hand:
//!
//! ```text
//! fleet-shard --connect 127.0.0.1:<port> --worker-id <n>
//!             [--io-timeout-secs <s>]
//!             [--heartbeat-millis <ms>]              # test hook: heartbeat storm
//!             [--chaos-exit-after-cells <n>]         # test hook: hard crash
//!             [--chaos-drop-socket-after-cells <n>]  # test hook: network drop
//! ```
//!
//! Everything that matters lives in [`fleet_wire::worker::run_worker`];
//! this file is argument parsing and exit codes (0 ok, 1 error, 2 bad
//! usage, 3 chaos-injected crash).

use fleet_wire::worker::{run_worker, WorkerOptions};
use std::time::Duration;

fn main() {
    let mut connect: Option<String> = None;
    let mut worker_id: Option<u32> = None;
    let mut io_timeout_secs = 600u64;
    let mut heartbeat_millis: Option<u64> = None;
    let mut chaos_exit: Option<u32> = None;
    let mut chaos_drop: Option<u32> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next(),
            "--worker-id" => worker_id = it.next().and_then(|v| v.parse().ok()),
            "--io-timeout-secs" => {
                io_timeout_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--io-timeout-secs needs a u64"))
            }
            "--heartbeat-millis" => {
                heartbeat_millis = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--heartbeat-millis needs a u64")),
                )
            }
            "--chaos-exit-after-cells" => {
                chaos_exit = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--chaos-exit-after-cells needs a u32")),
                )
            }
            "--chaos-drop-socket-after-cells" => {
                chaos_drop = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--chaos-drop-socket-after-cells needs a u32")),
                )
            }
            _ => usage("unknown argument"),
        }
    }
    let connect = connect.unwrap_or_else(|| usage("--connect is required"));
    let worker_id = worker_id.unwrap_or_else(|| usage("--worker-id is required"));

    let mut opts = WorkerOptions::new(connect, worker_id);
    opts.io_timeout = Duration::from_secs(io_timeout_secs.max(1));
    if let Some(ms) = heartbeat_millis {
        opts.heartbeat = Duration::from_millis(ms.max(1));
    }
    opts.chaos_exit_after_cells = chaos_exit;
    opts.chaos_drop_socket_after_cells = chaos_drop;

    if let Err(e) = run_worker(&opts) {
        eprintln!("fleet-shard {worker_id}: {e}");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    eprintln!("fleet-shard: {err}");
    eprintln!(
        "usage: fleet-shard --connect HOST:PORT --worker-id N [--io-timeout-secs S] \
         [--heartbeat-millis MS] [--chaos-exit-after-cells N] \
         [--chaos-drop-socket-after-cells N]"
    );
    std::process::exit(2)
}
