//! The `fleet-shard` worker runtime: own a contiguous cell range, stream
//! per-cell deltas back, report and exit on `Drain`.
//!
//! A worker is a *pure executor*. Cells are seed-pure — each derives its
//! RNG stream from `(master_seed, cell_id)` — so the worker regenerates
//! the identical catalog and sampler from the pushed [`fleet::FleetConfig`] and
//! produces cell outcomes byte-identical to any other process (or
//! thread) running the same cells. Nothing a worker does can influence
//! *what* is computed, only *where*.
//!
//! ## Threads
//!
//! * **cell loop** (this thread): simulate one cell at a time into a
//!   fresh per-cell accumulator, encode its delta frames, hand them to
//!   the writer over a **bounded** channel — when the coordinator reads
//!   slowly the channel fills and the loop blocks, so worker memory
//!   stays bounded no matter the backlog.
//! * **writer**: owns the socket's write half; writes frames in order
//!   and recycles their buffers through a pool, so steady-state framing
//!   allocates nothing.
//! * **heartbeat**: a `Progress` frame every couple of seconds for the
//!   coordinator's liveness check — it keeps long cells (and the long
//!   wait for `Drain` while a rejoined worker recomputes elsewhere) from
//!   reading as a crash. Heartbeats are dropped, not queued, when the
//!   channel is full: delta traffic already proves liveness.

use crate::frame::{read_frame, FrameBuf, FrameType, WireError};
use crate::messages::{
    decode_config_push, encode_final_report, encode_hello, encode_metrics_delta, encode_progress,
    DeltaHead, FinalReport, Hello, ProgressBeat,
};
use fleet::cell::run_cell;
use fleet::{fnv1a, population, FleetMetrics};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frames in flight between the cell loop and the writer. Small on
/// purpose: it bounds worker memory under coordinator backpressure while
/// still absorbing the per-cell burst (attribution + metrics + progress).
const FRAME_QUEUE: usize = 16;

/// Default heartbeat cadence; the coordinator's crash timeout is an
/// order of magnitude larger.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(2);

/// Everything the `fleet-shard` binary parses from its command line.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`127.0.0.1:<port>`).
    pub connect: String,
    /// Identity announced in `Hello` and stamped on every frame.
    pub worker_id: u32,
    /// How long to wait for the coordinator (config push, drain) before
    /// giving up. Generous: during a rejoin the coordinator legitimately
    /// goes quiet while lost cells recompute.
    pub io_timeout: Duration,
    /// Heartbeat cadence. Tests shrink this to force heartbeats to
    /// interleave with delta traffic on runs that finish in well under
    /// the default 2 s — the exact interleaving a short run never sees.
    pub heartbeat: Duration,
    /// Chaos hook: exit the process (code 3) after completing this many
    /// cells — a hard crash mid-run.
    pub chaos_exit_after_cells: Option<u32>,
    /// Chaos hook: shut the socket down after completing this many cells
    /// and exit cleanly — a network drop rather than a process death.
    pub chaos_drop_socket_after_cells: Option<u32>,
}

impl WorkerOptions {
    pub fn new(connect: String, worker_id: u32) -> WorkerOptions {
        WorkerOptions {
            connect,
            worker_id,
            io_timeout: Duration::from_secs(600),
            heartbeat: DEFAULT_HEARTBEAT,
            chaos_exit_after_cells: None,
            chaos_drop_socket_after_cells: None,
        }
    }
}

/// Worker-side failure.
#[derive(Debug)]
pub enum WorkerError {
    Wire(WireError),
    /// The coordinator broke the frame sequence (e.g. something other
    /// than `ConfigPush` after `Hello`).
    Protocol(&'static str),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Wire(e) => write!(f, "wire: {e}"),
            WorkerError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<WireError> for WorkerError {
    fn from(e: WireError) -> Self {
        WorkerError::Wire(e)
    }
}

/// Counters the heartbeat thread samples; written by the cell loop.
struct HbState {
    cells_done: AtomicU32,
    users_done: AtomicU64,
    cells_total: u32,
}

/// Get a recycled buffer if the writer has returned one, else allocate.
fn pooled(pool: &mpsc::Receiver<Vec<u8>>) -> Vec<u8> {
    pool.try_recv().unwrap_or_default()
}

/// Build one complete, *finished* `Progress` frame into `buf`. The
/// single construction path for both the per-cell progress frame and the
/// heartbeat thread — a frame handed to the writer must always have its
/// header length patched, and funneling both senders through here makes
/// an unfinished heartbeat frame unrepresentable.
fn progress_frame(buf: Vec<u8>, beat: &ProgressBeat) -> Vec<u8> {
    let mut fb = FrameBuf::from_vec(buf);
    encode_progress(&mut fb, beat);
    fb.finish();
    fb.take()
}

/// Queue a finished frame, blocking when the channel is full (the
/// backpressure path). `Err` means the writer thread died — its socket
/// error is the root cause the caller reports.
fn send_frame(tx: &SyncSender<Vec<u8>>, frame: Vec<u8>) -> Result<(), WorkerError> {
    tx.send(frame)
        .map_err(|_| WorkerError::Protocol("writer thread gone (socket closed?)"))
}

/// Run one worker to completion. Connects, announces itself, receives
/// its configuration and cell range, streams deltas, and exits after the
/// drain handshake.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), WorkerError> {
    let started = Instant::now();
    let alloc_start = mem::alloc_counts();

    let stream = TcpStream::connect(&opts.connect).map_err(WireError::Io)?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(opts.io_timeout))
        .map_err(WireError::Io)?;
    let mut read_half = stream.try_clone().map_err(WireError::Io)?;

    // Hello goes out synchronously, before the writer thread exists.
    let mut fb = FrameBuf::new();
    encode_hello(
        &mut fb,
        &Hello {
            worker_id: opts.worker_id,
            pid: std::process::id(),
        },
    );
    {
        let mut w = &stream;
        w.write_all(fb.finish()).map_err(WireError::Io)?;
    }

    let mut payload = Vec::new();
    let push = match read_frame(&mut read_half, &mut payload)? {
        Some(FrameType::ConfigPush) => decode_config_push(&payload)?,
        Some(_) => return Err(WorkerError::Protocol("expected config push after hello")),
        None => {
            return Err(WorkerError::Protocol(
                "coordinator hung up before config push",
            ))
        }
    };
    let cfg = push.config;
    let cells = push.cells;

    // Regenerate the catalog and sampler — pure in the config, so this
    // is byte-identical to the coordinator's (and every sibling's).
    let (sampler, _hot) = population(&cfg);

    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(FRAME_QUEUE);
    let (pool_tx, pool_rx) = mpsc::sync_channel::<Vec<u8>>(FRAME_QUEUE + 4);
    let write_half = stream.try_clone().map_err(WireError::Io)?;
    let writer = std::thread::spawn(move || -> Result<(), std::io::Error> {
        let mut w = write_half;
        for frame in rx {
            w.write_all(&frame)?;
            let _ = pool_tx.try_send(frame); // recycle; drop when pool is full
        }
        Ok(())
    });

    let hb = Arc::new(HbState {
        cells_done: AtomicU32::new(0),
        users_done: AtomicU64::new(0),
        cells_total: cells.len() as u32,
    });
    let (hb_stop, hb_stop_rx) = mpsc::channel::<()>();
    let hb_thread = {
        let hb = Arc::clone(&hb);
        let tx = tx.clone();
        let worker_id = opts.worker_id;
        let cadence = opts.heartbeat;
        std::thread::spawn(move || {
            loop {
                match hb_stop_rx.recv_timeout(cadence) {
                    Err(RecvTimeoutError::Timeout) => {}
                    _ => return,
                }
                let frame = progress_frame(
                    Vec::new(),
                    &ProgressBeat {
                        worker_id,
                        cells_done: hb.cells_done.load(Ordering::Relaxed),
                        cells_total: hb.cells_total,
                        users_done: hb.users_done.load(Ordering::Relaxed),
                    },
                );
                // try_send: a full queue means deltas are flowing, which
                // is better liveness evidence than any heartbeat.
                match tx.try_send(frame) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
        })
    };

    // ------------------------------------------------------- cell loop
    let local = FleetMetrics::default(); // worker-lifetime merge, for the digest
    let mut users_done = 0u64;
    let result = (|| -> Result<(), WorkerError> {
        for (i, cell) in cells.iter().enumerate() {
            let cell_metrics = Arc::new(FleetMetrics::default());
            run_cell(cell, &sampler, &cfg, &cell_metrics);

            let head = DeltaHead {
                worker_id: opts.worker_id,
                cell: cell.cell,
            };
            if cfg.attribution {
                let mut fb = FrameBuf::from_vec(pooled(&pool_rx));
                crate::messages::encode_attribution_delta(&mut fb, head, &cell_metrics.attribution);
                fb.finish();
                send_frame(&tx, fb.take())?;
            }
            let mut fb = FrameBuf::from_vec(pooled(&pool_rx));
            encode_metrics_delta(&mut fb, head, &cell_metrics);
            fb.finish();
            send_frame(&tx, fb.take())?;

            local.merge_from(&cell_metrics);
            users_done += cell.users;
            let done = (i + 1) as u32;
            hb.cells_done.store(done, Ordering::Relaxed);
            hb.users_done.store(users_done, Ordering::Relaxed);

            let frame = progress_frame(
                pooled(&pool_rx),
                &ProgressBeat {
                    worker_id: opts.worker_id,
                    cells_done: done,
                    cells_total: cells.len() as u32,
                    users_done,
                },
            );
            send_frame(&tx, frame)?;

            if opts.chaos_exit_after_cells == Some(done) {
                // A hard crash: no goodbye, frames possibly still queued.
                std::process::exit(3);
            }
            if opts.chaos_drop_socket_after_cells == Some(done) {
                // A network drop: the process survives briefly, but the
                // coordinator only ever sees a dead socket.
                stream.shutdown(Shutdown::Both).ok();
                std::thread::sleep(Duration::from_millis(50));
                std::process::exit(0);
            }
        }

        // Block for Drain; heartbeats keep flowing from the side thread.
        match read_frame(&mut read_half, &mut payload)? {
            Some(FrameType::Drain) => {}
            Some(_) => return Err(WorkerError::Protocol("expected drain after last cell")),
            None => return Err(WorkerError::Protocol("coordinator hung up before drain")),
        }

        let (allocs, alloc_bytes) = match (alloc_start, mem::alloc_counts()) {
            (Some((a0, b0)), Some((a1, b1))) => (a1 - a0, b1 - b0),
            _ => (0, 0),
        };
        let mut fb = FrameBuf::from_vec(pooled(&pool_rx));
        encode_final_report(
            &mut fb,
            &FinalReport {
                worker_id: opts.worker_id,
                cells: cells.len() as u64,
                users: users_done,
                sim_events: local.sim_events.get(),
                wall_micros: started.elapsed().as_micros() as u64,
                allocs,
                alloc_bytes,
                digest: fnv1a(local.to_json().as_bytes()),
            },
        );
        fb.finish();
        send_frame(&tx, fb.take())
    })();

    // Shut down the side threads in order: stop heartbeats, then close
    // the frame channel so the writer drains the queue (final report
    // included) and exits.
    let _ = hb_stop.send(());
    let _ = hb_thread.join();
    drop(tx);
    let writer_result = writer.join().unwrap_or(Ok(()));
    result?;
    writer_result.map_err(|e| WorkerError::Wire(WireError::Io(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::decode_progress;

    /// Regression: heartbeat frames once went out with the header's
    /// length field still at its placeholder (finish() was never
    /// called), desyncing the stream on every run longer than one
    /// heartbeat period. The shared constructor must hand back a frame
    /// the real reader parses cleanly — twice in a row, because the
    /// heartbeat thread loops.
    #[test]
    fn progress_frames_are_always_finished_and_decodable() {
        let beat = ProgressBeat {
            worker_id: 7,
            cells_done: 3,
            cells_total: 9,
            users_done: 150,
        };
        let one = progress_frame(Vec::new(), &beat);
        let two = progress_frame(Vec::with_capacity(64), &beat);
        for frame in [&one, &two] {
            let mut cursor: &[u8] = frame;
            let mut payload = Vec::new();
            let ftype = read_frame(&mut cursor, &mut payload)
                .expect("well-formed frame")
                .expect("one frame present");
            assert_eq!(ftype, FrameType::Progress);
            let got = decode_progress(&payload).expect("decodable payload");
            assert_eq!(got.worker_id, 7);
            assert_eq!(got.cells_done, 3);
            assert_eq!(got.cells_total, 9);
            assert_eq!(got.users_done, 150);
            assert!(cursor.is_empty(), "no trailing bytes after the frame");
        }
    }
}
