//! # fleet-wire — distributed fleet execution over a framed TCP protocol
//!
//! The fleet crate proves the repo's central determinism claim across
//! *threads*: merged metrics, and therefore the report digest, are
//! invariant to how cells are dealt across shards. This crate extends
//! the same claim across **processes**: `ifttt-lab fleet --distributed N`
//! spawns `fleet-shard` workers, hands each a contiguous cell range over
//! a version-tagged, length-prefixed TCP frame protocol, streams back
//! per-cell metric deltas, and assembles a [`fleet::FleetReport`] whose
//! digest is **byte-for-byte equal** to the in-process run's
//! (`fleet-wire/tests/distributed.rs` pins this against the golden
//! digests in `fleet::test_support`).
//!
//! The layering, bottom up:
//!
//! * [`frame`] — the 8-byte header (version, type, flags, length), the
//!   typed [`frame::WireError`], reusable encode/decode buffers. Never
//!   panics on peer bytes; never allocates per frame at steady state.
//! * [`messages`] — typed payloads. The hot frames encode straight from
//!   (and apply straight into) `FleetMetrics` via the canonical
//!   `wire_counters()` / `wire_histograms()` arrays, and applies are
//!   transactional: full validation before the first merge.
//! * [`worker`] — the `fleet-shard` runtime: bounded-channel
//!   backpressure, buffer recycling, heartbeats, chaos hooks.
//! * [`coordinator`] — spawn/accept/push, exactly-once cell commit,
//!   crash detection by read timeout, deterministic rejoin (a lost
//!   worker's uncommitted cells re-run on a replacement), the drain and
//!   per-worker digest handshake, and worker-summed alloc accounting.
//!
//! DESIGN.md §13 documents the protocol and the determinism argument.

pub mod coordinator;
pub mod frame;
pub mod messages;
pub mod worker;

pub use coordinator::{
    run_fleet_distributed, run_fleet_distributed_with_progress, DistributedConfig,
    DistributedError, DistributedOutcome, WorkerChaos,
};
pub use frame::{FrameBuf, FrameType, WireError, MAX_PAYLOAD, PROTOCOL_VERSION};
pub use messages::{FinalReport, Frame, Hello, ProgressBeat};
