//! The distributed coordinator: spawn `fleet-shard` workers, push each a
//! contiguous cell range, merge their streamed deltas, and assemble the
//! same [`FleetReport`] the in-process runner produces — byte-for-byte
//! the same digest.
//!
//! ## Why the digest survives the process boundary
//!
//! Cells are seed-pure and the instruments are exactly mergeable integer
//! state, so the merged metrics are a *sum over cells* that no
//! partitioning — threads, processes, or a mix — can perturb. The
//! coordinator's job reduces to guaranteeing **exactly-once commit** per
//! cell:
//!
//! * a cell commits atomically when its `MetricsDelta` frame is applied
//!   (any `AttributionDelta` for the cell is stashed and folded in at
//!   the same instant, under the same lock);
//! * a per-run `done` set drops duplicates, so a worker that died after
//!   sending a cell and a replacement that re-ran it cannot double-count;
//! * a dead worker's **uncommitted** cells are exactly its assigned
//!   range minus the `done` set — a suffix of its contiguous range —
//!   and re-running them on a fresh worker reproduces the lost results
//!   exactly, because nothing about a cell depends on which process runs
//!   it.
//!
//! Crash detection is read-driven: every worker heartbeats a `Progress`
//! frame every ~2 s, and each reader thread's socket carries a read
//! timeout an order of magnitude larger, so silence means a dead or
//! wedged worker, not a slow cell. The drain handshake then closes the
//! loop on integrity: each surviving worker reports the FNV-1a digest of
//! its local merged metrics, which must equal the digest of what the
//! coordinator committed on that worker's behalf.

use crate::frame::{read_frame, FrameBuf, FrameType, WireError};
use crate::messages::{
    apply_attribution_delta, apply_metrics_delta, decode_final_report, decode_hello,
    decode_progress, encode_config_push, encode_drain, validate_attribution_delta,
    validate_metrics_delta, FinalReport,
};
use fleet::shard::CellSpec;
use fleet::{
    assign_contiguous, fnv1a, plan_cells, population, FleetConfig, FleetMetrics, FleetReport,
    Progress, ShardSummary,
};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Chaos injection for one initial worker slot (test hook; replacement
/// workers always run clean so a chaotic run still terminates).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerChaos {
    pub exit_after_cells: Option<u32>,
    pub drop_socket_after_cells: Option<u32>,
}

impl WorkerChaos {
    pub fn none() -> WorkerChaos {
        WorkerChaos::default()
    }
}

/// How to run a distributed fleet.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Worker processes to spawn (clamped to the cell count).
    pub workers: usize,
    /// Path to the `fleet-shard` binary.
    pub shard_bin: PathBuf,
    /// Per-connection read timeout — the crash detector. Workers
    /// heartbeat every ~2 s, so silence this long means a dead worker.
    pub read_timeout: Duration,
    /// How long to wait for a spawned worker to connect and say hello.
    pub connect_timeout: Duration,
    /// Replacement-worker budget; exceeding it aborts the run instead of
    /// thrashing against a systemic failure.
    pub max_rejoins: usize,
    /// Heartbeat cadence override for every spawned worker. `None` keeps
    /// the worker default (~2 s); tests shrink it so heartbeats
    /// interleave densely with delta traffic even on sub-second runs.
    pub heartbeat: Option<Duration>,
    /// Per-initial-slot chaos injection (tests only; empty = clean).
    pub chaos: Vec<WorkerChaos>,
}

impl DistributedConfig {
    pub fn new(workers: usize, shard_bin: PathBuf) -> DistributedConfig {
        DistributedConfig {
            workers: workers.max(1),
            shard_bin,
            read_timeout: Duration::from_secs(60),
            connect_timeout: Duration::from_secs(30),
            max_rejoins: workers.max(1) * 2,
            heartbeat: None,
            chaos: Vec::new(),
        }
    }
}

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistributedError {
    Io(std::io::Error),
    Wire(WireError),
    /// Spawning or connecting a worker failed.
    Spawn(String),
    /// A surviving worker's self-reported digest disagrees with what the
    /// coordinator committed for it — a protocol or merge bug, never
    /// acceptable.
    DigestMismatch {
        worker_id: u32,
        reported: u64,
        committed: u64,
    },
    /// Workers kept dying past the replacement budget.
    RejoinBudgetExhausted {
        lost_cells: usize,
    },
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::Io(e) => write!(f, "io: {e}"),
            DistributedError::Wire(e) => write!(f, "wire: {e}"),
            DistributedError::Spawn(s) => write!(f, "worker spawn: {s}"),
            DistributedError::DigestMismatch { worker_id, reported, committed } => write!(
                f,
                "worker {worker_id} digest handshake failed: worker reported {reported:016x}, coordinator committed {committed:016x}"
            ),
            DistributedError::RejoinBudgetExhausted { lost_cells } => {
                write!(f, "rejoin budget exhausted with {lost_cells} cells unrecovered")
            }
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<std::io::Error> for DistributedError {
    fn from(e: std::io::Error) -> Self {
        DistributedError::Io(e)
    }
}

impl From<WireError> for DistributedError {
    fn from(e: WireError) -> Self {
        DistributedError::Wire(e)
    }
}

/// A successful distributed run: the report plus execution facts about
/// the distribution itself.
#[derive(Debug)]
pub struct DistributedOutcome {
    pub report: FleetReport,
    /// Replacement workers spawned after crashes/disconnects.
    pub rejoins: usize,
    /// Total worker processes spawned (initial + replacements).
    pub workers_spawned: usize,
}

/// Commit state shared between reader threads: which cells have been
/// folded into the merged metrics. Applies happen under this lock so a
/// rejoin's undone-scan can never observe a half-applied cell.
struct CommitState {
    done: HashSet<u64>,
}

/// What reader threads report to the main loop.
enum Event {
    /// A heartbeat arrived (liveness only; progress is driven by
    /// commits so replacements don't double-report).
    Heartbeat,
    CellCommitted {
        slot: usize,
        cell: u64,
    },
    Final {
        slot: usize,
        report: FinalReport,
        committed_digest: u64,
    },
    Down {
        slot: usize,
        reason: String,
    },
}

struct WorkerSlot {
    worker_id: u32,
    assigned: Vec<CellSpec>,
    write_half: TcpStream,
    alive: bool,
    /// Cells committed from this slot (progress callback bookkeeping).
    committed: usize,
    users_done: u64,
}

/// Kills any still-running children when the coordinator unwinds, so an
/// error path cannot leak worker processes.
struct ChildReaper(Vec<Child>);

impl Drop for ChildReaper {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Run the fleet across worker processes, discarding progress beats.
pub fn run_fleet_distributed(
    cfg: &FleetConfig,
    dcfg: &DistributedConfig,
) -> Result<FleetReport, DistributedError> {
    run_fleet_distributed_with_progress(cfg, dcfg, |_| {}).map(|o| o.report)
}

fn spawn_worker(
    dcfg: &DistributedConfig,
    port: u16,
    worker_id: u32,
    chaos: WorkerChaos,
) -> Result<Child, DistributedError> {
    let mut cmd = Command::new(&dcfg.shard_bin);
    cmd.arg("--connect")
        .arg(format!("127.0.0.1:{port}"))
        .arg("--worker-id")
        .arg(worker_id.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if let Some(hb) = dcfg.heartbeat {
        cmd.arg("--heartbeat-millis")
            .arg(hb.as_millis().max(1).to_string());
    }
    if let Some(n) = chaos.exit_after_cells {
        cmd.arg("--chaos-exit-after-cells").arg(n.to_string());
    }
    if let Some(n) = chaos.drop_socket_after_cells {
        cmd.arg("--chaos-drop-socket-after-cells")
            .arg(n.to_string());
    }
    cmd.spawn()
        .map_err(|e| DistributedError::Spawn(format!("{}: {e}", dcfg.shard_bin.display())))
}

/// Accept one worker connection and return its stream + announced id.
/// The listener is non-blocking so a worker that dies before connecting
/// turns into a timely `Spawn` error instead of a hang.
fn accept_hello(
    listener: &TcpListener,
    dcfg: &DistributedConfig,
) -> Result<(TcpStream, u32), DistributedError> {
    let deadline = Instant::now() + dcfg.connect_timeout;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(dcfg.read_timeout))?;
                let mut payload = Vec::new();
                let mut r = stream.try_clone()?;
                let hello = match read_frame(&mut r, &mut payload)? {
                    Some(FrameType::Hello) => decode_hello(&payload)?,
                    _ => {
                        return Err(DistributedError::Spawn(
                            "worker connected but did not say hello".into(),
                        ))
                    }
                };
                return Ok((stream, hello.worker_id));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(DistributedError::Spawn(format!(
                        "no worker connected within {:?}",
                        dcfg.connect_timeout
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Send a worker its configuration and cell range.
fn push_config(
    stream: &mut TcpStream,
    cfg: &FleetConfig,
    cells: &[CellSpec],
) -> Result<(), DistributedError> {
    let mut fb = FrameBuf::new();
    encode_config_push(&mut fb, cfg, cells);
    stream.write_all(fb.finish()).map_err(DistributedError::Io)
}

/// The per-connection reader: validates and commits frames until the
/// worker reports or dies. All exits funnel into exactly one terminal
/// event (`Final` or `Down`).
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    slot: usize,
    worker_id: u32,
    mut stream: TcpStream,
    commit: Arc<Mutex<CommitState>>,
    merged: Arc<FleetMetrics>,
    events: mpsc::Sender<Event>,
) {
    let acc = FleetMetrics::default(); // this worker's committed mirror
    let mut payload = Vec::new();
    let mut stash: Vec<u8> = Vec::new(); // pending attribution payload
    let mut stash_cell: Option<u64> = None;

    let down = |reason: String| Event::Down { slot, reason };
    let terminal = loop {
        match read_frame(&mut stream, &mut payload) {
            Ok(None) => break down("connection closed before final report".into()),
            Err(e) => break down(e.to_string()),
            Ok(Some(FrameType::Progress)) => match decode_progress(&payload) {
                Ok(p) if p.worker_id == worker_id => {
                    let _ = events.send(Event::Heartbeat);
                }
                Ok(_) => break down("progress frame with wrong worker id".into()),
                Err(e) => break down(e.to_string()),
            },
            Ok(Some(FrameType::AttributionDelta)) => match validate_attribution_delta(&payload) {
                Ok(head) if head.worker_id == worker_id => {
                    std::mem::swap(&mut stash, &mut payload);
                    stash_cell = Some(head.cell);
                }
                Ok(_) => break down("attribution delta with wrong worker id".into()),
                Err(e) => break down(e.to_string()),
            },
            Ok(Some(FrameType::MetricsDelta)) => {
                let head = match validate_metrics_delta(&payload) {
                    Ok(h) if h.worker_id == worker_id => h,
                    Ok(_) => break down("metrics delta with wrong worker id".into()),
                    Err(e) => break down(e.to_string()),
                };
                let fresh = {
                    let mut c = commit.lock().expect("commit lock");
                    if c.done.contains(&head.cell) {
                        false
                    } else {
                        // Validated above; apply cannot fail, and the
                        // attribution stash commits under the same lock,
                        // so the cell lands atomically.
                        apply_metrics_delta(&payload, &merged).expect("validated delta");
                        apply_metrics_delta(&payload, &acc).expect("validated delta");
                        if stash_cell == Some(head.cell) {
                            apply_attribution_delta(&stash, &merged.attribution)
                                .expect("validated attribution delta");
                            apply_attribution_delta(&stash, &acc.attribution)
                                .expect("validated attribution delta");
                        }
                        c.done.insert(head.cell);
                        true
                    }
                };
                stash_cell = None;
                if fresh {
                    let _ = events.send(Event::CellCommitted {
                        slot,
                        cell: head.cell,
                    });
                }
            }
            Ok(Some(FrameType::FinalReport)) => match decode_final_report(&payload) {
                Ok(report) if report.worker_id == worker_id => {
                    break Event::Final {
                        slot,
                        report,
                        committed_digest: fnv1a(acc.to_json().as_bytes()),
                    };
                }
                Ok(_) => break down("final report with wrong worker id".into()),
                Err(e) => break down(e.to_string()),
            },
            Ok(Some(t)) => break down(format!("unexpected frame type {t:?} from worker")),
        }
    };
    let _ = events.send(terminal);
}

/// Run the fleet across worker processes; `on_progress` fires once per
/// committed cell, mirroring the in-process runner's callback.
pub fn run_fleet_distributed_with_progress(
    cfg: &FleetConfig,
    dcfg: &DistributedConfig,
    mut on_progress: impl FnMut(&Progress),
) -> Result<DistributedOutcome, DistributedError> {
    let started = Instant::now();

    // Resolve the config exactly like the in-process runner: the hot
    // threshold is derived once, here, and shipped resolved so every
    // worker plans from identical inputs.
    let (_sampler, hot_threshold) = population(cfg);
    let cfg = FleetConfig {
        hot_threshold: Some(hot_threshold),
        ..cfg.clone()
    };

    let cells = plan_cells(cfg.users, cfg.cell_users);
    let users_by_cell: HashMap<u64, u64> = cells.iter().map(|c| (c.cell, c.users)).collect();
    let total_cells = cells.len();
    let workers = dcfg.workers.min(total_cells.max(1));
    let assignments = if total_cells == 0 {
        Vec::new()
    } else {
        assign_contiguous(&cells, workers)
    };

    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let port = listener.local_addr()?.port();

    let commit = Arc::new(Mutex::new(CommitState {
        done: HashSet::new(),
    }));
    let merged = Arc::new(FleetMetrics::default());
    let (events_tx, events_rx) = mpsc::channel::<Event>();

    let mut reaper = ChildReaper(Vec::new());
    let mut slots: Vec<WorkerSlot> = Vec::new();
    let mut next_worker_id: u32 = 0;

    // Spawn everyone first, then accept: workers connect in whatever
    // order the scheduler serves, and the hello frame tells us which
    // cell range each connection gets. Chaos flags are tied to the
    // *slot*, which the worker id identifies.
    let mut start_worker = |assigned: Vec<CellSpec>,
                            chaos: WorkerChaos,
                            slots: &mut Vec<WorkerSlot>,
                            reaper: &mut ChildReaper|
     -> Result<(), DistributedError> {
        let worker_id = next_worker_id;
        next_worker_id += 1;
        reaper.0.push(spawn_worker(dcfg, port, worker_id, chaos)?);
        let (mut stream, announced) = accept_hello(&listener, dcfg)?;
        if announced != worker_id {
            return Err(DistributedError::Spawn(format!(
                "worker announced id {announced}, expected {worker_id}"
            )));
        }
        push_config(&mut stream, &cfg, &assigned)?;
        let slot = slots.len();
        let read_half = stream.try_clone()?;
        slots.push(WorkerSlot {
            worker_id,
            assigned,
            write_half: stream,
            alive: true,
            committed: 0,
            users_done: 0,
        });
        let commit = Arc::clone(&commit);
        let merged = Arc::clone(&merged);
        let events = events_tx.clone();
        std::thread::spawn(move || reader_loop(slot, worker_id, read_half, commit, merged, events));
        Ok(())
    };

    for (i, assigned) in assignments.into_iter().enumerate() {
        let chaos = dcfg.chaos.get(i).copied().unwrap_or_default();
        start_worker(assigned, chaos, &mut slots, &mut reaper)?;
    }

    // ------------------------------------------------------- main loop
    let mut committed_cells = 0usize;
    let mut rejoins = 0usize;
    let mut drained = false;
    let mut outstanding = slots.len(); // reader threads yet to terminate
    let mut finals: Vec<FinalReport> = Vec::new();

    while committed_cells < total_cells || outstanding > 0 {
        if committed_cells == total_cells && !drained {
            drained = true;
            let mut fb = FrameBuf::new();
            encode_drain(&mut fb);
            let frame = fb.finish().to_vec();
            for s in slots.iter_mut().filter(|s| s.alive) {
                // A write failure here just means the reader is about to
                // observe the death; that path owns the bookkeeping.
                let _ = s.write_half.write_all(&frame);
            }
        }

        let ev = events_rx.recv().expect("reader threads outlive the run");
        match ev {
            Event::Heartbeat => {}
            Event::CellCommitted { slot, cell } => {
                committed_cells += 1;
                let s = &mut slots[slot];
                s.committed += 1;
                s.users_done += users_by_cell.get(&cell).copied().unwrap_or(0);
                on_progress(&Progress {
                    shard: s.worker_id as usize,
                    cells_done: s.committed,
                    cells_total: s.assigned.len(),
                    users_done: s.users_done,
                });
            }
            Event::Final {
                slot,
                report,
                committed_digest,
            } => {
                outstanding -= 1;
                slots[slot].alive = false;
                if report.digest != committed_digest {
                    return Err(DistributedError::DigestMismatch {
                        worker_id: report.worker_id,
                        reported: report.digest,
                        committed: committed_digest,
                    });
                }
                finals.push(report);
            }
            Event::Down { slot, reason } => {
                outstanding -= 1;
                slots[slot].alive = false;
                let undone: Vec<CellSpec> = {
                    let c = commit.lock().expect("commit lock");
                    slots[slot]
                        .assigned
                        .iter()
                        .filter(|cs| !c.done.contains(&cs.cell))
                        .copied()
                        .collect()
                };
                if undone.is_empty() {
                    // All its cells are committed; only its execution
                    // facts (and digest handshake) are lost. The merged
                    // metrics — and therefore the digest — are intact.
                    eprintln!(
                        "fleet-wire: worker {} lost after finishing its range ({reason})",
                        slots[slot].worker_id
                    );
                    continue;
                }
                if rejoins >= dcfg.max_rejoins {
                    return Err(DistributedError::RejoinBudgetExhausted {
                        lost_cells: undone.len(),
                    });
                }
                rejoins += 1;
                eprintln!(
                    "fleet-wire: worker {} died ({reason}); re-running {} lost cells on a replacement",
                    slots[slot].worker_id,
                    undone.len()
                );
                outstanding += 1;
                start_worker(undone, WorkerChaos::none(), &mut slots, &mut reaper)?;
            }
        }
    }

    // Workers exit after their final report; reap them so the reaper's
    // kill-on-drop is a no-op on the success path.
    for c in &mut reaper.0 {
        let _ = c.wait();
    }

    finals.sort_by_key(|f| f.worker_id);
    let report = assemble_report(
        &cfg,
        hot_threshold,
        workers,
        &merged,
        &finals,
        started.elapsed(),
    );
    Ok(DistributedOutcome {
        report,
        rejoins,
        workers_spawned: next_worker_id as usize,
    })
}

/// Fold worker final reports and the merged metrics into a
/// [`FleetReport`]. Allocation counts are the **sum of the workers'**
/// per-process counters — the coordinator's own allocations (framing,
/// merge bookkeeping) are not simulation work and are excluded, so the
/// distributed alloc gate measures the same thing the in-process one
/// does.
fn assemble_report(
    cfg: &FleetConfig,
    hot_threshold: u64,
    workers: usize,
    merged: &FleetMetrics,
    finals: &[FinalReport],
    wall: Duration,
) -> FleetReport {
    let per_shard = finals
        .iter()
        .map(|f| ShardSummary {
            shard: f.worker_id as usize,
            cells: f.cells as usize,
            users: f.users,
            sim_events: f.sim_events,
            wall_secs: f.wall_micros as f64 / 1e6,
        })
        .collect();
    FleetReport {
        users: cfg.users,
        shards: workers,
        policy: cfg.policy.name().to_string(),
        master_seed: cfg.master_seed,
        hot_threshold,
        merged: merged.clone(),
        per_shard,
        wall_secs: wall.as_secs_f64(),
        allocs: finals.iter().map(|f| f.allocs).sum(),
        alloc_bytes: finals.iter().map(|f| f.alloc_bytes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn final_report(worker_id: u32, allocs: u64, alloc_bytes: u64) -> FinalReport {
        FinalReport {
            worker_id,
            cells: 2,
            users: 100,
            sim_events: 1000,
            wall_micros: 2_500_000,
            allocs,
            alloc_bytes,
            digest: 0,
        }
    }

    #[test]
    fn report_allocs_are_the_sum_of_worker_counters() {
        // Satellite invariant: distributed alloc accounting merges the
        // *workers'* per-process counts; whatever the coordinator
        // process allocates is not part of the number.
        let cfg = FleetConfig::new(200, 2, fleet::FleetPolicy::Fast);
        let merged = FleetMetrics::default();
        merged.sim_events.add(2000);
        let finals = vec![
            final_report(0, 10_000, 800_000),
            final_report(1, 2_345, 120_000),
        ];
        let report = assemble_report(&cfg, 7, 2, &merged, &finals, Duration::from_secs(3));
        assert_eq!(report.allocs, 12_345);
        assert_eq!(report.alloc_bytes, 920_000);
        // Per-shard execution facts survive with worker identity.
        assert_eq!(report.per_shard.len(), 2);
        assert_eq!(report.per_shard[1].shard, 1);
        assert!((report.per_shard[1].wall_secs - 2.5).abs() < 1e-9);
        // And the digest tracks only the merged metrics, as in-process.
        assert_eq!(
            report.digest(),
            format!("{:016x}", fnv1a(merged.to_json().as_bytes()))
        );
    }
}
