//! The headline guarantee of the distributed fleet: running the same
//! configuration across `fleet-shard` worker *processes* produces a
//! report digest **byte-for-byte equal** to the in-process run — clean,
//! with attribution, with multi-step applets, under engine chaos, and
//! while workers are being killed and rejoined mid-run.
//!
//! Golden digests come from `fleet::test_support::goldens` — the same
//! constants the in-process determinism suite pins — so the two
//! execution modes can never drift apart silently.
//!
//! Crash tests parameterize the master seed over `CHAOS_SEED` (the CI
//! chaos matrix): at the default seed 2017 they assert the pinned
//! golden; at any other seed they assert distributed == in-process.

use fleet::test_support::{
    goldens, small_chaos_cfg, small_churn_cfg, small_fast_cfg, small_realtime_cfg,
};
use fleet::{run_fleet, FleetConfig};
use fleet_wire::coordinator::{
    run_fleet_distributed, run_fleet_distributed_with_progress, DistributedError,
};
use fleet_wire::{DistributedConfig, WorkerChaos};
use std::path::PathBuf;

fn shard_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet-shard"))
}

fn dcfg(workers: usize) -> DistributedConfig {
    DistributedConfig::new(workers, shard_bin())
}

/// Master seed under test: `CHAOS_SEED` from the CI chaos matrix, 2017
/// (the golden seed) by default.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2017)
}

/// The digest the current seed must produce for `cfg`: the pinned
/// golden at seed 2017, the freshly computed in-process digest
/// otherwise.
fn expected_digest(cfg: &FleetConfig, golden_at_2017: &str) -> String {
    if cfg.master_seed == 2017 {
        golden_at_2017.to_string()
    } else {
        run_fleet(cfg).digest()
    }
}

#[test]
fn distributed_clean_run_matches_the_pinned_golden() {
    let cfg = small_fast_cfg(1, 2017); // 4 cells
    let outcome = run_fleet_distributed_with_progress(&cfg, &dcfg(2), |_| {}).expect("clean run");
    assert_eq!(outcome.report.digest(), goldens::SMALL_FAST);
    assert_eq!(outcome.rejoins, 0);
    assert_eq!(outcome.workers_spawned, 2);
    assert_eq!(outcome.report.per_shard.len(), 2);
    assert_eq!(outcome.report.merged.users.get(), 200);
}

#[test]
fn distributed_digest_is_invariant_to_worker_count() {
    let seed = chaos_seed();
    let expected = expected_digest(&small_fast_cfg(1, seed), goldens::SMALL_FAST);
    // 8 > 4 cells exercises the worker-count clamp.
    for workers in [1usize, 3, 8] {
        let report = run_fleet_distributed(&small_fast_cfg(1, seed), &dcfg(workers)).expect("run");
        assert_eq!(report.digest(), expected, "{workers} workers, seed {seed}");
    }
}

#[test]
fn heartbeat_storm_does_not_corrupt_the_frame_stream() {
    // Regression: heartbeat Progress frames were once sent with an
    // unpatched (zero) header length, desyncing the stream on any run
    // longer than one heartbeat period — which no fast test ever was.
    // A 1 ms cadence forces thousands of heartbeats to interleave with
    // delta traffic inside this sub-second run; the digest and the
    // per-worker handshake must be completely unaffected.
    let cfg = small_fast_cfg(1, 2017);
    let mut d = dcfg(2);
    d.heartbeat = Some(std::time::Duration::from_millis(1));
    let outcome = run_fleet_distributed_with_progress(&cfg, &d, |_| {}).expect("clean run");
    assert_eq!(outcome.report.digest(), goldens::SMALL_FAST);
    assert_eq!(outcome.rejoins, 0);
}

#[test]
fn distributed_attribution_run_matches_in_process() {
    let cfg = small_fast_cfg(1, chaos_seed()).with_attribution(true);
    let in_process = run_fleet(&cfg);
    let distributed = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(distributed.digest(), in_process.digest());
    // The attribution path actually crossed the wire.
    assert!(distributed.merged.attribution.total.count() > 0);
    assert_eq!(
        distributed.merged.attribution.total.snapshot(),
        in_process.merged.attribution.total.snapshot(),
    );
}

#[test]
fn distributed_multi_step_run_matches_in_process() {
    let cfg = small_fast_cfg(1, chaos_seed()).with_multi_step_share(0.35);
    let in_process = run_fleet(&cfg);
    let distributed = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(distributed.digest(), in_process.digest());
    assert!(distributed.merged.dag_runs.get() > 0, "multi-step DAGs ran");
}

#[test]
fn distributed_realtime_run_matches_the_pinned_golden() {
    let cfg = small_realtime_cfg(1, 2017);
    let report = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(report.digest(), goldens::SMALL_REALTIME);
}

/// Churn crosses the wire as plain config: the coordinator's ConfigPush
/// carries the `churn` profile (and any scenario spec) verbatim, every
/// worker replans the same per-cell lifecycle timeline from the cell
/// seed stream, and the merged digest equals the pinned in-process
/// golden — including the churn counters, which ride the same delta
/// frames as every other counter.
#[test]
fn distributed_churn_run_matches_the_pinned_golden() {
    let seed = chaos_seed();
    let cfg = small_churn_cfg(1, seed);
    let expected = expected_digest(&cfg, goldens::SMALL_CHURN);
    let report = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(report.digest(), expected, "seed {seed}");
    // The lifecycle transitions really happened in the worker processes
    // and their counters really crossed the wire.
    assert!(report.merged.churn_installs.get() > 0);
    assert!(report.merged.churn_uninstalls.get() > 0);
    assert!(report.merged.churn_retirements.get() > 0);
}

/// A scenario file's spec rides ConfigPush verbatim: a distributed run
/// configured through `ScenarioSpec` matches the equivalent flag-built
/// in-process run byte for byte.
#[test]
fn distributed_scenario_run_matches_in_process() {
    let spec = fleet::ScenarioSpec::from_json(r#"{"churn": "accelerated", "realtime_share": 0.5}"#)
        .expect("spec parses");
    let cfg = small_fast_cfg(1, chaos_seed()).with_scenario(spec);
    let in_process = run_fleet(&cfg);
    let distributed = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(distributed.digest(), in_process.digest());
    assert!(distributed.merged.churn_installs.get() > 0);
    assert!(distributed.merged.realtime_notifications.get() > 0);
}

#[test]
fn distributed_engine_chaos_run_matches_the_golden() {
    let cfg = small_chaos_cfg(1, chaos_seed());
    let expected = expected_digest(&cfg, goldens::SMALL_CHAOS);
    let report = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(report.digest(), expected);
}

#[test]
fn killed_worker_is_detected_and_its_cells_rerun_deterministically() {
    let seed = chaos_seed();
    let cfg = small_fast_cfg(1, seed);
    let expected = expected_digest(&cfg, goldens::SMALL_FAST);
    // Worker 0 hard-exits (code 3, no goodbye) after its first cell; the
    // coordinator must detect the death, spawn a replacement for the
    // uncommitted remainder, and still produce the exact digest.
    let mut d = dcfg(2);
    d.chaos = vec![WorkerChaos {
        exit_after_cells: Some(1),
        ..Default::default()
    }];
    let outcome = run_fleet_distributed_with_progress(&cfg, &d, |_| {}).expect("recovers");
    assert_eq!(outcome.report.digest(), expected, "seed {seed}");
    assert!(outcome.rejoins >= 1, "a replacement was spawned");
    assert_eq!(outcome.workers_spawned, 2 + outcome.rejoins);
}

#[test]
fn dropped_socket_is_detected_and_its_cells_rerun_deterministically() {
    let seed = chaos_seed();
    let cfg = small_fast_cfg(1, seed);
    let expected = expected_digest(&cfg, goldens::SMALL_FAST);
    // Worker 1's link dies (socket shutdown, process lingers) after one
    // cell — the network-partition flavor of worker loss.
    let mut d = dcfg(2);
    d.chaos = vec![
        WorkerChaos::none(),
        WorkerChaos {
            drop_socket_after_cells: Some(1),
            ..Default::default()
        },
    ];
    let outcome = run_fleet_distributed_with_progress(&cfg, &d, |_| {}).expect("recovers");
    assert_eq!(outcome.report.digest(), expected, "seed {seed}");
    assert!(outcome.rejoins >= 1);
}

#[test]
fn crash_under_engine_chaos_and_attribution_still_matches() {
    // The adversarial composite: injected engine faults, attribution
    // recording, and a worker crash — the digest must still be exactly
    // the in-process one.
    let cfg = small_chaos_cfg(1, chaos_seed()).with_attribution(true);
    let in_process = run_fleet(&cfg);
    let mut d = dcfg(2);
    d.chaos = vec![WorkerChaos {
        exit_after_cells: Some(1),
        ..Default::default()
    }];
    let outcome = run_fleet_distributed_with_progress(&cfg, &d, |_| {}).expect("recovers");
    assert_eq!(outcome.report.digest(), in_process.digest());
    assert!(outcome.rejoins >= 1);
}

#[test]
fn rejoin_budget_exhaustion_is_a_typed_error_not_a_hang() {
    let cfg = small_fast_cfg(1, 2017);
    let mut d = dcfg(2);
    d.chaos = vec![WorkerChaos {
        exit_after_cells: Some(1),
        ..Default::default()
    }];
    d.max_rejoins = 0;
    match run_fleet_distributed(&cfg, &d) {
        Err(DistributedError::RejoinBudgetExhausted { lost_cells }) => {
            assert!(lost_cells >= 1)
        }
        other => panic!("expected RejoinBudgetExhausted, got {other:?}"),
    }
}

#[test]
fn progress_fires_exactly_once_per_cell_even_across_a_rejoin() {
    let cfg = small_fast_cfg(1, 2017); // 4 cells
    let mut d = dcfg(2);
    d.chaos = vec![WorkerChaos {
        exit_after_cells: Some(1),
        ..Default::default()
    }];
    let mut beats = 0usize;
    let outcome = run_fleet_distributed_with_progress(&cfg, &d, |_| beats += 1).expect("recovers");
    // Commit-driven progress: re-run cells don't double-report, lost
    // uncommitted cells report when the replacement lands them.
    assert_eq!(beats, 4);
    assert_eq!(outcome.report.digest(), goldens::SMALL_FAST);
}

#[test]
fn distributed_allocs_come_from_workers_not_the_coordinator() {
    let report = run_fleet_distributed(&small_fast_cfg(1, 2017), &dcfg(2)).expect("run");
    if cfg!(feature = "alloc-count") {
        // Workers count their own allocations and the coordinator sums
        // them; two workers simulating 2 cells each must report plenty.
        assert!(report.allocs > 0, "worker alloc counts merged");
        assert!(report.alloc_bytes > report.allocs);
    } else {
        // Default build: no counting allocator anywhere — the
        // coordinator must not smuggle in its own process numbers.
        assert_eq!(report.allocs, 0);
        assert_eq!(report.alloc_bytes, 0);
    }
}

/// The CLI-default 10k golden (`ifttt-lab fleet --users 10_000`) across
/// processes — the same constant the CI smoke job asserts.
#[test]
#[ignore = "minutes in debug; CI runs it in release via --ignored"]
fn distributed_cli_default_10k_matches_the_golden() {
    let cfg = fleet::test_support::cli_default_cfg(10_000, 4);
    let report = run_fleet_distributed(&cfg, &dcfg(2)).expect("run");
    assert_eq!(report.digest(), goldens::CLI_10K);
}

/// The CLI-default 100k golden across processes.
#[test]
#[ignore = "minutes in debug; CI runs it in release via --ignored"]
fn distributed_cli_default_100k_matches_the_golden() {
    let cfg = fleet::test_support::cli_default_cfg(100_000, 8);
    let report = run_fleet_distributed(&cfg, &dcfg(4)).expect("run");
    assert_eq!(report.digest(), goldens::CLI_100K);
}
